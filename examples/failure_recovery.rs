//! MapReduce failure recovery, demonstrated on a Dash-style indexing
//! job: tasks die mid-crawl, the scheduler retries them, the simulated
//! clock pays for every attempt — and the inverted index comes out
//! byte-identical.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use dash::mapreduce::{run_job_with_faults, ClusterConfig, FaultPlan, JobSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Index the running example's comment texts as (keyword, df) pairs.
    let db = dash::webapp::fooddb::database();
    let comments: Vec<String> = db.table("comment")?.iter().map(|r| r.render()).collect();
    let cluster = ClusterConfig {
        split_bytes: 64,   // tiny blocks so the toy corpus gets several map tasks
        byte_scale: 1.0e6, // model the corpus at cluster scale so retry costs show
        ..ClusterConfig::default()
    };

    let index_job = |plan: &FaultPlan| {
        run_job_with_faults(
            &cluster,
            JobSpec::new("index comments").reduce_tasks(4),
            &comments,
            |doc: &String, emit| {
                for token in dash::text::tokenize(doc) {
                    emit(token, 1u64);
                }
            },
            |word: &String, ones: Vec<u64>, emit| emit((word.clone(), ones.len() as u64)),
            plan,
        )
    };

    let clean = index_job(&FaultPlan::new())?;
    println!(
        "clean run:  {} map tasks, {} keywords, {:.2} simulated s",
        clean.stats.map_tasks,
        clean.output.len(),
        clean.stats.sim_total_secs(),
    );

    // A node dies during the map wave: every map task loses one attempt,
    // and reduce task 1 loses two.
    let plan = FaultPlan::new()
        .fail_first_map_attempts(clean.stats.map_tasks, 1)
        .fail_reduce(1, 0)
        .fail_reduce(1, 1);
    let faulty = index_job(&plan)?;
    println!(
        "faulty run: {} map attempts for {} tasks, {:.2} simulated s",
        faulty.stats.map_task_attempts,
        faulty.stats.map_tasks,
        faulty.stats.sim_total_secs(),
    );

    assert_eq!(clean.output, faulty.output);
    println!(
        "outputs identical: {} — recovery cost {:+.2} simulated s",
        clean.output == faulty.output,
        faulty.stats.sim_total_secs() - clean.stats.sim_total_secs(),
    );

    // A task that keeps dying aborts the job after max_attempts.
    let mut hopeless = FaultPlan::new();
    hopeless.max_attempts = 3;
    let hopeless = hopeless.fail_map(0, 0).fail_map(0, 1).fail_map(0, 2);
    match index_job(&hopeless) {
        Err(aborted) => println!("hopeless plan: {aborted}"),
        Ok(_) => unreachable!("job must abort"),
    }
    Ok(())
}
