//! Deep-web search over a database-driven storefront: the paper's
//! evaluation workload (TPC-H + query Q2) at example scale.
//!
//! Builds the Q2 application (customers ⋈ orders ⋈ lineitems), crawls it
//! with the integrated algorithm, and searches hot and cold keywords —
//! pages that no hyperlink-following crawler could ever reach, since every
//! db-page exists only behind the form's query string.
//!
//! ```text
//! cargo run --release --example deep_web_tpch
//! ```

use dash::core::{CrawlAlgorithm, DashConfig, DashEngine, SearchRequest};
use dash::tpch::{generate, Scale, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 200;
    let db = generate(&config);
    println!(
        "generated TPC-H-style store: {} customers, {} orders, {} lineitems",
        db.table("customer")?.len(),
        db.table("orders")?.len(),
        db.table("lineitem")?.len(),
    );

    let app = dash::tpch::q2_application(&db)?;
    println!("analyzed application: {}\n", app.sql);

    let engine = DashEngine::build(
        &app,
        &db,
        &DashConfig {
            algorithm: CrawlAlgorithm::Integrated,
            ..DashConfig::default()
        },
    )?;
    println!(
        "fragment index: {} fragments, {} keywords, {} graph edges",
        engine.fragment_count(),
        engine.index().inverted.keyword_count(),
        engine.index().graph.edge_count(),
    );
    println!(
        "crawl: {} MR jobs, {:.1} simulated s, {:.2} real s\n",
        engine.crawl_stats().jobs.len(),
        engine.crawl_stats().sim_total_secs(),
        engine.crawl_stats().wall_total_secs(),
    );

    // A hot keyword (appears in many fragments) and a cold one.
    let ranked = engine.index().inverted.keywords_by_df();
    let hot = ranked
        .first()
        .map(|(w, _)| w.to_string())
        .unwrap_or_default();
    let cold = ranked
        .last()
        .map(|(w, _)| w.to_string())
        .unwrap_or_default();

    for (label, kw) in [("hot", &hot), ("cold", &cold)] {
        let start = std::time::Instant::now();
        let hits = engine.search(&SearchRequest::new(&[kw.as_str()]).k(5).min_size(200));
        let elapsed = start.elapsed();
        println!(
            "{label} keyword {kw:?} (df={}): {} hits in {:.3} ms",
            engine.index().inverted.df(kw),
            hits.len(),
            elapsed.as_secs_f64() * 1000.0
        );
        for hit in hits.iter().take(3) {
            println!("    {}  score={:.5} size={}", hit.url, hit.score, hit.size);
        }
    }
    Ok(())
}
