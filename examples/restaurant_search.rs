//! A richer tour of the running example: multi-keyword search, size
//! thresholds, HTML rendering, and live index maintenance as the
//! database changes (the paper's first future-work item).
//!
//! ```text
//! cargo run --example restaurant_search
//! ```

use dash::prelude::*;
use dash::relation::{Record, Value};

fn show(hits: &[dash::core::SearchHit], title: &str) {
    println!("{title}");
    if hits.is_empty() {
        println!("  (no results)");
    }
    for hit in hits {
        println!("  {}  score={:.4} size={}", hit.url, hit.score, hit.size);
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = dash::webapp::fooddb::database();
    let app = dash::webapp::fooddb::search_application()?;
    let mut engine = DashEngine::build(&app, &db, &DashConfig::default())?;

    // Different size thresholds steer page assembly (Section VI-B): tiny
    // s returns keyword-dense single fragments; larger s merges
    // neighboring budget ranges into more substantial pages.
    show(
        &engine.search(&SearchRequest::new(&["burger"]).k(3).min_size(1)),
        "\"burger\", s=1 (dense slivers):",
    );
    show(
        &engine.search(&SearchRequest::new(&["burger"]).k(3).min_size(40)),
        "\"burger\", s=40 (coarser pages):",
    );
    show(
        &engine.search(&SearchRequest::new(&["burger", "fries"]).k(3).min_size(20)),
        "\"burger fries\" (multi-keyword):",
    );

    // Render a suggested page as the HTML the servlet would emit.
    let hits = engine.search(&SearchRequest::new(&["coffee"]).k(1).min_size(1));
    let qs = QueryString::parse(&hits[0].query_string)?;
    let page = app.execute(&db, &qs)?;
    println!("HTML for {}:\n{}", hits[0].url, page.render_html());

    // The database changes: a new Korean restaurant opens and gets a
    // rave comment. Dash refreshes only the affected fragments.
    let restaurant = Record::new(vec![
        Value::Int(8),
        Value::str("Seoul Kitchen"),
        Value::str("Korean"),
        Value::Int(14),
        Value::str("4.7"),
    ]);
    db.table_mut("restaurant")?.insert(restaurant.clone())?;
    let stats = engine.apply_insert(&db, "restaurant", &restaurant)?;
    println!(
        "inserted restaurant: {} fragment(s) refreshed ({} added)",
        stats.removed + stats.added,
        stats.added
    );

    let comment = Record::new(vec![
        Value::Int(207),
        Value::Int(8),
        Value::Int(120),
        Value::str("Amazing bulgogi"),
        Value::str("05/12"),
    ]);
    db.table_mut("comment")?.insert(comment.clone())?;
    engine.apply_insert(&db, "comment", &comment)?;

    show(
        &engine.search(&SearchRequest::new(&["bulgogi"]).k(1).min_size(1)),
        "\"bulgogi\" after incremental update:",
    );
    Ok(())
}
