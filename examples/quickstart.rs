//! Quickstart: the paper's running example, end to end.
//!
//! Builds the `fooddb` database (Figure 2), analyzes the `Search` servlet
//! (Figure 3), crawls the database into db-page fragments (Figure 5),
//! and answers Example 7's query: the top-2 db-pages for "burger".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The target: a web application and its backend database.
    let db = dash::webapp::fooddb::database();
    let app = dash::webapp::fooddb::search_application()?;
    println!("analyzed servlet `{}` at {}", app.name, app.base_uri);
    println!("recovered query: {}\n", app.sql);

    // 2. Build Dash: database crawling + fragment indexing (MapReduce).
    let engine = DashEngine::build(&app, &db, &DashConfig::default())?;
    println!(
        "crawled {} fragments in {} MapReduce jobs ({:.1} simulated s)\n",
        engine.fragment_count(),
        engine.crawl_stats().jobs.len(),
        engine.crawl_stats().sim_total_secs(),
    );

    // 3. Example 7: top-2 db-pages for "burger" with size threshold 20.
    let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
    println!("top-{} db-pages for \"burger\" (s = 20):", hits.len());
    for hit in &hits {
        println!(
            "  {}  score={:.4}  size={} keywords  ({} fragment{})",
            hit.url,
            hit.score,
            hit.size,
            hit.fragment_ids.len(),
            if hit.fragment_ids.len() == 1 { "" } else { "s" },
        );
    }

    // 4. Proof: feeding a suggested URL back to the application yields a
    //    real db-page containing the keyword.
    let first = &hits[0];
    let qs = QueryString::parse(&first.query_string)?;
    let page = app.execute(&db, &qs)?;
    println!("\nmaterialized {}:", first.url);
    print!("{}", page.render_text());
    Ok(())
}
