//! Sharded serving: partition the fragment handle space, answer
//! concurrent keyword traffic, and prove the answers identical to the
//! single-heap engine.
//!
//! ```text
//! cargo run --release --example sharded_search
//! DASH_SHARDS=4 cargo run --release --example sharded_search
//! ```
//!
//! The demo builds both engines over the paper's running example
//! (fooddb + the `Search` servlet), serves a batch of requests through
//! `search_many`, verifies byte-identical results shard count by shard
//! count, applies a live database update through the unified delta
//! write path (shard-local, no rebuild), and feeds a suggested URL
//! back through the web application — the full circle Dash promises:
//! the URLs it suggests regenerate real db-pages containing the
//! keywords.

use dash::core::env_shards;
use dash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = dash::webapp::fooddb::database();
    let app = dash::webapp::fooddb::search_application()?;

    let shards = env_shards().unwrap_or(2);
    let single = DashEngine::build(&app, &db, &DashConfig::default())?;
    let sharded = ShardedEngine::builder(app.clone())
        .shards(shards)
        .source(IngestSource::Crawl {
            db: &db,
            config: &DashConfig::default(),
        })
        .build()?;
    println!(
        "engine: {} fragments in {} shards (sizes {:?})",
        sharded.fragment_count(),
        sharded.shard_count(),
        sharded.shard_sizes(),
    );

    // A burst of concurrent-style traffic, answered in one batch.
    let requests = vec![
        SearchRequest::new(&["burger"]).k(2).min_size(20),
        SearchRequest::new(&["burger", "fries"]).k(3).min_size(1),
        SearchRequest::new(&["thai"]).k(2).min_size(5),
    ];
    let batch = sharded.search_many(&requests);
    for (request, hits) in requests.iter().zip(&batch) {
        println!("\nquery {:?} (k={}):", request.keywords, request.k);
        for hit in hits {
            println!("  {:.4}  {}", hit.score, hit.url);
        }
        // The shard layer's contract: byte-identical to the single heap.
        assert_eq!(hits, &single.search(request));
    }

    // Close the loop through the web application: the top suggestion's
    // query string regenerates a real db-page holding the keyword.
    let Some(top) = batch[0].first() else {
        println!("\nno hits for the first query — nothing to regenerate");
        return Ok(());
    };
    let qs = QueryString::parse(&top.query_string)?;
    let page = app.execute(&db, &qs)?;
    println!(
        "\nregenerated {} -> {} keywords, contains \"burger\": {}",
        top.url,
        page.keywords().len(),
        page.keywords().iter().any(|w| w == "burger"),
    );
    println!("sharded results verified identical to the single engine");

    // Live maintenance through the unified delta write path: a new
    // restaurant arrives, the delta routes to the one shard owning its
    // equality group (no rebuild, no O(total) work), and the sharded
    // engine keeps matching a from-scratch single-engine rebuild.
    let mut sharded = sharded;
    let mut db = db;
    let record = Record::new(vec![
        Value::Int(42),
        Value::str("Searing Wok"),
        Value::str("Sichuan"),
        Value::Int(13),
        Value::str("4.8"),
    ]);
    db.table_mut("restaurant")?.insert(record.clone())?;
    let stats = sharded.apply_insert(&db, "restaurant", &record)?;
    println!(
        "\nlive update: +{} fragment(s), -{} stale; shard sizes now {:?}",
        stats.added,
        stats.removed,
        sharded.shard_sizes(),
    );
    let request = SearchRequest::new(&["wok"]).k(1).min_size(1);
    let rebuilt = DashEngine::build(&app, &db, &DashConfig::default())?;
    let hits = sharded.search(&request);
    assert_eq!(hits, rebuilt.search(&request));
    println!(
        "updated engine finds {} — identical to a full rebuild, without one",
        hits.first().map(|h| h.url.as_str()).unwrap_or("nothing"),
    );
    Ok(())
}
