//! Closed-loop serving traffic: concurrent clients hammer a
//! [`DashServer`] with mixed search/update load while the snapshot
//! handle keeps searches lock-free across delta publications.
//!
//! ```text
//! cargo run --release --example serve_traffic
//! DASH_SHARDS=4 cargo run --release --example serve_traffic
//! DASH_BENCH_FAST=1 cargo run --release --example serve_traffic   # CI smoke sizing
//! cargo run --release --example serve_traffic -- --net           # same traffic over sockets
//! ```
//!
//! With `--net` the identical scripted traffic additionally runs over
//! real TCP connections — a `NetServer` on an ephemeral port, one
//! `NetClient` per closed-loop client — demoing parity between
//! in-process and socket serving (the reports print side by side and
//! a probe request is asserted byte-identical on both paths).
//!
//! The demo opens a server over the paper's running example, replays a
//! deterministic load profile (searches from every client, deltas from
//! client 0), prints the latency/throughput report plus the serving
//! counters, and closes the loop the paper promises: a suggested URL,
//! fed back through the web application, regenerates a real db-page
//! holding the keyword.

use std::net::TcpListener;
use std::sync::Arc;

use dash::core::crawl::reference;
use dash::prelude::*;
use dash::serve::loadgen::{self, LoadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let over_sockets = std::env::args().any(|arg| arg == "--net");
    let db = dash::webapp::fooddb::database();
    let app = dash::webapp::fooddb::search_application()?;
    let server = DashServer::build(&app, &db, &DashConfig::default(), ServeConfig::default())?;
    println!(
        "server: {} fragments, {} shard(s), epoch {}",
        server.fragment_count(),
        server.snapshot().engine.shard_count(),
        server.epoch(),
    );

    // Mixed traffic: the fooddb vocabulary for searches, the crawled
    // fragments as the update-churn pool (client 0 republishes them
    // with bumped counts or briefly removes them).
    let vocab: Vec<String> = ["burger", "fries", "coffee", "thai", "nice", "experts"]
        .iter()
        .map(|w| w.to_string())
        .collect();
    let update_pool = reference::fragments(&app, &db)?;
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let profile = LoadProfile {
        clients: 4,
        ops_per_client: if fast { 150 } else { 600 },
        update_every: 25,
        ..LoadProfile::default()
    };
    let report = loadgen::run(&server, &vocab, &update_pool, &profile);
    println!("\nload: {}", report.summary());
    let stats = report.stats;
    println!(
        "serve: {} batches for {} batched requests ({:.2}x batching), {} deltas published, \
         {} cache entries invalidated",
        stats.batches,
        stats.batched_requests,
        stats.batched_requests as f64 / stats.batches.max(1) as f64,
        stats.published,
        stats.cache.invalidated,
    );

    // --net: the same scripted traffic once more, over real sockets —
    // an HTTP front-end on an ephemeral port, one persistent
    // connection per client — and a parity probe between the
    // in-process and socket paths.
    if over_sockets {
        let server = Arc::new(server);
        let net = NetServer::serve_primary(
            Arc::clone(&server),
            db.clone(),
            TcpListener::bind("127.0.0.1:0")?,
            NetConfig::default(),
        )?;
        println!("\nnet: serving http://{}", net.addr());
        let report = dash::net::loadgen::run(net.addr(), &vocab, &update_pool, &profile);
        println!("net load: {}", report.summary());

        let probe = SearchRequest::new(&["burger"]).k(2).min_size(20);
        let mut client = NetClient::connect(net.addr())?;
        let socket_hits = client.search(&probe)?;
        let direct_hits = server.search(&probe);
        println!(
            "parity probe: socket and in-process hit lists identical: {}",
            socket_hits == direct_hits,
        );
        assert_eq!(socket_hits, direct_hits, "socket serving must be invisible");

        // Close the loop through the web application with the
        // socket-served URL.
        let Some(top) = socket_hits.first() else {
            println!("no burger page survived the churn — nothing to regenerate");
            return Ok(());
        };
        let qs = QueryString::parse(&top.query_string)?;
        let page = app.execute(&db, &qs)?;
        println!(
            "suggested {} regenerates a {}-keyword db-page (contains \"burger\": {})",
            top.url,
            page.keywords().len(),
            page.keywords().iter().any(|w| w == "burger"),
        );
        return Ok(());
    }

    // Close the loop through the web application: a served URL must
    // regenerate a page containing the keyword.
    let hits = server.search(&SearchRequest::new(&["burger"]).k(1).min_size(20));
    let Some(top) = hits.first() else {
        println!("\nno burger page survived the churn — nothing to regenerate");
        return Ok(());
    };
    let qs = QueryString::parse(&top.query_string)?;
    let page = app.execute(&db, &qs)?;
    println!(
        "\nsuggested {} regenerates a {}-keyword db-page (contains \"burger\": {})",
        top.url,
        page.keywords().len(),
        page.keywords().iter().any(|w| w == "burger"),
    );
    Ok(())
}
