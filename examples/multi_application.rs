//! Two web applications over one database — the paper's second
//! future-work extension: shared fragment contents are detected and
//! duplicate db-pages are eliminated from federated search results.
//!
//! ```text
//! cargo run --example multi_application
//! ```

use dash::core::multi::MultiDash;
use dash::core::{CrawlAlgorithm, SearchRequest};
use dash::mapreduce::ClusterConfig;
use dash::webapp::{fooddb, WebApplication};

/// A second storefront exposing the same restaurant data under different
/// URLs and form fields.
const MIRROR: &str = r#"
servlet DinerFinder at "www.diners.example/find" {
    String kind = q.getParameter("cuisine");
    String lo = q.getParameter("from");
    String hi = q.getParameter("to");
    Query = "SELECT name, budget, rate, comment, uname, date "
          + "FROM (restaurant LEFT JOIN comment) JOIN customer "
          + "WHERE (cuisine = \"" + kind + "\") "
          + "AND (budget BETWEEN " + lo + " AND " + hi + ")";
    output(execute(Query));
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = fooddb::database();
    let search = fooddb::search_application()?;
    let diner_finder = WebApplication::from_servlet_source(MIRROR, &db)?;

    let multi = MultiDash::build(
        &[search, diner_finder],
        &db,
        &ClusterConfig::default(),
        CrawlAlgorithm::Integrated,
    )?;

    let stats = multi.stats();
    println!(
        "fragments: {} total, {} distinct contents, {} shared across applications\n",
        stats.total_fragments, stats.distinct_contents, stats.shared_fragments,
    );

    println!("federated top-4 for \"burger\" (duplicates eliminated):");
    for hit in multi.search(&SearchRequest::new(&["burger"]).k(4).min_size(20)) {
        println!(
            "  [{}] {}  score={:.4}",
            hit.app_name, hit.hit.url, hit.hit.score
        );
    }

    println!("\nper-application results for the same query:");
    for engine in multi.engines() {
        for hit in engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20)) {
            println!("  [{}] {}", engine.app().name, hit.url);
        }
    }
    Ok(())
}
