//! Stepwise vs integrated crawling on the same application — a
//! single-query slice of Figure 10, printed with the full per-job
//! MapReduce meters.
//!
//! ```text
//! cargo run --release --example crawl_comparison
//! ```

use dash::core::crawl::{self, CrawlAlgorithm};
use dash::mapreduce::ClusterConfig;
use dash::tpch::{generate, Scale, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 200;
    let db = generate(&config);
    let app = dash::tpch::q1_application(&db)?;
    let cluster = ClusterConfig::default();

    println!("application: {}\n", app.sql);
    let mut totals = Vec::new();
    for (name, algorithm) in [
        ("STEPWISE (SW)", CrawlAlgorithm::Stepwise),
        ("INTEGRATED (INT)", CrawlAlgorithm::Integrated),
    ] {
        let out = crawl::run(&app, &db, &cluster, algorithm)?;
        println!("== {name}: {} fragments ==", out.fragments.len());
        println!("{}\n", out.stats);
        totals.push((name, out.stats.sim_total_secs(), out.stats.shuffle_bytes()));
    }

    let (sw, int) = (&totals[0], &totals[1]);
    println!(
        "shuffle volume: SW {:.1} KB vs INT {:.1} KB ({:.0}% less)",
        sw.2 as f64 / 1e3,
        int.2 as f64 / 1e3,
        100.0 * (1.0 - int.2 as f64 / sw.2 as f64),
    );
    println!("simulated elapsed: SW {:.1} s vs INT {:.1} s", sw.1, int.1);
    println!(
        "(on tiny operands the integrated algorithm's extra job startups can \
         outweigh its shuffle savings — exactly the paper's Q1 observation; \
         run the fig10 binary for the full grid)"
    );
    Ok(())
}
