//! Seeded text generation with realistic keyword skew.
//!
//! The paper samples *hot*, *warm* and *cold* query keywords from the top,
//! middle and bottom deciles of the document-frequency distribution —
//! which only works if the corpus has a heavy-tailed keyword distribution
//! in the first place. Comments here draw words Zipf-style from a fixed
//! vocabulary, so a small set of words ends up in most fragments (hot) and
//! a long tail appears rarely (cold), matching TPC-H's own
//! grammar-generated text in spirit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// TPC-H-flavored base vocabulary (nouns/verbs/adjectives/adverbs drawn
/// from the spec's text grammar, extended for volume).
const BASE_WORDS: &[&str] = &[
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
    "attainments",
    "somas",
    "braids",
    "grouches",
    "sheaves",
    "waters",
    "escapades",
    "sleep",
    "wake",
    "are",
    "run",
    "cajole",
    "haggle",
    "nag",
    "use",
    "boost",
    "affix",
    "detect",
    "integrate",
    "sublate",
    "solve",
    "was",
    "wait",
    "hinder",
    "print",
    "doze",
    "snooze",
    "engage",
    "promise",
    "furious",
    "sly",
    "careful",
    "blithe",
    "quick",
    "fluffy",
    "slow",
    "quiet",
    "ruthless",
    "thin",
    "close",
    "dogged",
    "daring",
    "bold",
    "stealthy",
    "permanent",
    "enticing",
    "idle",
    "busy",
    "regular",
    "final",
    "ironic",
    "even",
    "bold",
    "silent",
    "sometimes",
    "always",
    "never",
    "furiously",
    "slyly",
    "carefully",
    "blithely",
    "quickly",
    "fluffily",
    "slowly",
    "quietly",
    "ruthlessly",
    "thinly",
    "closely",
    "doggedly",
    "daringly",
    "boldly",
    "stealthily",
    "permanently",
    "enticingly",
    "idly",
    "busily",
    "regularly",
    "finally",
    "ironically",
    "evenly",
    "silently",
    "special",
    "pending",
    "unusual",
    "express",
    "ironic",
    "bold",
    "above",
    "across",
    "against",
    "along",
    "among",
    "around",
    "atop",
    "before",
    "behind",
    "beneath",
    "beside",
    "besides",
    "between",
    "beyond",
    "under",
    "unusual",
    "deposits",
    "theodolites",
    "gifts",
    "requests",
];

/// A seeded word sampler with Zipfian rank weighting.
#[derive(Debug)]
pub struct TextGen {
    rng: StdRng,
    vocab: Vec<String>,
    /// Cumulative Zipf weights for sampling.
    cumulative: Vec<f64>,
}

impl TextGen {
    /// Creates a generator over a vocabulary of `vocab_size` words (base
    /// words plus numbered synthetic tail words) with Zipf exponent ~1.
    pub fn new(seed: u64, vocab_size: usize) -> Self {
        let mut vocab: Vec<String> = BASE_WORDS.iter().map(|s| s.to_string()).collect();
        vocab.dedup();
        let mut i = 0usize;
        while vocab.len() < vocab_size {
            vocab.push(format!("lex{i:05}"));
            i += 1;
        }
        vocab.truncate(vocab_size);
        let mut cumulative = Vec::with_capacity(vocab.len());
        let mut acc = 0.0f64;
        for rank in 0..vocab.len() {
            acc += 1.0 / (rank as f64 + 1.0);
            cumulative.push(acc);
        }
        TextGen {
            rng: StdRng::seed_from_u64(seed),
            vocab,
            cumulative,
        }
    }

    /// The vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Samples one word, Zipf-weighted by rank.
    pub fn word(&mut self) -> &str {
        let total = *self.cumulative.last().expect("non-empty vocab");
        let x: f64 = self.rng.random_range(0.0..total);
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        &self.vocab[idx.min(self.vocab.len() - 1)]
    }

    /// Samples a sentence of `words` space-separated words.
    pub fn sentence(&mut self, words: usize) -> String {
        let mut out = String::new();
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            let w = self.word().to_string();
            out.push_str(&w);
        }
        out
    }

    /// Samples a sentence whose length is uniform in `lo..=hi`.
    pub fn sentence_between(&mut self, lo: usize, hi: usize) -> String {
        let n = self.rng.random_range(lo..=hi);
        self.sentence(n)
    }

    /// Uniform integer in `lo..=hi` from the generator's stream.
    pub fn int_between(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    /// Picks one element of `choices` uniformly.
    pub fn pick<'a>(&mut self, choices: &'a [&'a str]) -> &'a str {
        choices[self.rng.random_range(0..choices.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_seed() {
        let mut a = TextGen::new(7, 200);
        let mut b = TextGen::new(7, 200);
        assert_eq!(a.sentence(20), b.sentence(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TextGen::new(1, 200);
        let mut b = TextGen::new(2, 200);
        assert_ne!(a.sentence(30), b.sentence(30));
    }

    #[test]
    fn distribution_is_skewed() {
        // Hot words (low rank) should appear far more often than tail
        // words — the basis for hot/warm/cold keyword selection.
        let mut g = TextGen::new(42, 500);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.word().to_string()).or_insert(0) += 1;
        }
        let hot = counts.values().max().copied().unwrap_or(0);
        let distinct = counts.len();
        assert!(hot > 400, "hottest word should dominate, got {hot}");
        assert!(distinct > 100, "tail should be broad, got {distinct}");
    }

    #[test]
    fn vocab_padding() {
        let g = TextGen::new(1, 1000);
        assert_eq!(g.vocab_size(), 1000);
        let g2 = TextGen::new(1, 10);
        assert_eq!(g2.vocab_size(), 10);
    }

    #[test]
    fn sentence_lengths() {
        let mut g = TextGen::new(3, 100);
        let s = g.sentence(5);
        assert_eq!(s.split_whitespace().count(), 5);
        let s = g.sentence_between(2, 4);
        let n = s.split_whitespace().count();
        assert!((2..=4).contains(&n));
    }
}
