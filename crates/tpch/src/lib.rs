//! # dash-tpch
//!
//! A from-scratch TPC-H-style dataset generator, standing in for the TPC-H
//! `dbgen` datasets the Dash paper evaluates on (Section VII, Tables
//! II–III), plus the paper's three application queries Q1/Q2/Q3 packaged
//! as servlets so the *entire* Dash pipeline — servlet analysis included —
//! runs against them.
//!
//! The paper's experiments only depend on
//!
//! * the *relative* sizes of the operand relations (small : medium : large
//!   ≈ 1 : 5 : 10, with R and N tiny),
//! * the foreign-key topology (R←N←C←O←L→P), and
//! * realistic keyword frequency skew (for hot/warm/cold query terms),
//!
//! all of which this generator reproduces at laptop scale with seeded
//! determinism. Absolute byte counts are reported by
//! [`relation_sizes`] for the Table II regeneration.
//!
//! ```
//! use dash_tpch::{generate, Scale, TpchConfig};
//!
//! let db = generate(&TpchConfig::new(Scale::Small));
//! assert_eq!(db.table("region").unwrap().len(), 5);
//! assert!(db.table("lineitem").unwrap().len() > 10_000);
//! db.check_foreign_keys().unwrap();
//! ```

pub mod gen;
pub mod queries;
pub mod text;

pub use gen::{generate, relation_sizes, Scale, TpchConfig};
pub use queries::{
    q1_application, q2_application, q3_application, Q1_SERVLET, Q2_SERVLET, Q3_SERVLET,
};
pub use text::TextGen;
