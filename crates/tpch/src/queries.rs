//! The paper's three application queries (Table III), packaged as
//! servlets so Dash's full analysis pipeline runs against them.
//!
//! | Query | Operands | Selection |
//! |---|---|---|
//! | Q1 | (R ⋈ N) ⋈ C | `R.RID = $r`, `C.ACCBAL BETWEEN $min AND $max` |
//! | Q2 | (C ⋈ O) ⋈ L | `C.CID = $r`, `L.QTY BETWEEN $min AND $max` |
//! | Q3 | (C ⋈ O) ⋈ (L ⋈ P) | `C.CID = $r`, `L.QTY BETWEEN $min AND $max` |
//!
//! All three `SELECT *`, so every attribute's contents are collected as
//! keywords (Section VII).

use dash_relation::Database;
use dash_webapp::{WebAppError, WebApplication};

/// Servlet wrapping Q1: region/nation/customer.
pub const Q1_SERVLET: &str = r#"
servlet Q1 at "www.example.com/Q1" {
    String r = q.getParameter("r");
    String min = q.getParameter("min");
    String max = q.getParameter("max");
    Query = "SELECT * FROM (region JOIN nation) JOIN customer "
          + "WHERE (region.r_regionkey = " + r + ") "
          + "AND (customer.c_acctbal BETWEEN " + min + " AND " + max + ")";
    output(execute(Query));
}
"#;

/// Servlet wrapping Q2: customer/orders/lineitem.
pub const Q2_SERVLET: &str = r#"
servlet Q2 at "www.example.com/Q2" {
    String r = q.getParameter("r");
    String min = q.getParameter("min");
    String max = q.getParameter("max");
    Query = "SELECT * FROM (customer JOIN orders) JOIN lineitem "
          + "WHERE (customer.c_custkey = " + r + ") "
          + "AND (lineitem.l_quantity BETWEEN " + min + " AND " + max + ")";
    output(execute(Query));
}
"#;

/// Servlet wrapping Q3: customer/orders/lineitem/part.
pub const Q3_SERVLET: &str = r#"
servlet Q3 at "www.example.com/Q3" {
    String r = q.getParameter("r");
    String min = q.getParameter("min");
    String max = q.getParameter("max");
    Query = "SELECT * FROM (customer JOIN orders) JOIN (lineitem JOIN part) "
          + "WHERE (customer.c_custkey = " + r + ") "
          + "AND (lineitem.l_quantity BETWEEN " + min + " AND " + max + ")";
    output(execute(Query));
}
"#;

/// Analyzes the Q1 servlet against `db`.
///
/// # Errors
///
/// Propagates analysis/resolution failures (none for the bundled source
/// over a generated TPC-H database).
pub fn q1_application(db: &Database) -> Result<WebApplication, WebAppError> {
    WebApplication::from_servlet_source(Q1_SERVLET, db)
}

/// Analyzes the Q2 servlet against `db`.
///
/// # Errors
///
/// Propagates analysis/resolution failures.
pub fn q2_application(db: &Database) -> Result<WebApplication, WebAppError> {
    WebApplication::from_servlet_source(Q2_SERVLET, db)
}

/// Analyzes the Q3 servlet against `db`.
///
/// # Errors
///
/// Propagates analysis/resolution failures.
pub fn q3_application(db: &Database) -> Result<WebApplication, WebAppError> {
    WebApplication::from_servlet_source(Q3_SERVLET, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Scale, TpchConfig};
    use dash_relation::Value;
    use dash_webapp::QueryString;

    fn db() -> Database {
        generate(&TpchConfig::new(Scale::Small))
    }

    #[test]
    fn q1_resolves_and_executes() {
        let db = db();
        let app = q1_application(&db).unwrap();
        assert_eq!(app.query.relations, vec!["region", "nation", "customer"]);
        assert_eq!(app.query.selections.len(), 2);
        let page = app
            .execute(
                &db,
                &QueryString::parse("r=1&min=0.00&max=9999.99").unwrap(),
            )
            .unwrap();
        assert!(!page.is_empty());
        // All rows are AMERICA-region customers.
        assert!(page.render_text().contains("AMERICA"));
    }

    #[test]
    fn q2_resolves_and_executes() {
        let db = db();
        let app = q2_application(&db).unwrap();
        assert_eq!(app.query.relations, vec!["customer", "orders", "lineitem"]);
        let page = app
            .execute(&db, &QueryString::parse("r=3&min=1&max=50").unwrap())
            .unwrap();
        // Customer 3 has some orders with lineitems (statistically certain
        // with 10 orders/customer × 4 items).
        assert!(!page.is_empty());
        assert!(page.render_text().contains("Customer#000000003"));
    }

    #[test]
    fn q3_resolves_with_four_operands() {
        let db = db();
        let app = q3_application(&db).unwrap();
        assert_eq!(
            app.query.relations,
            vec!["customer", "orders", "lineitem", "part"]
        );
        let page = app
            .execute(&db, &QueryString::parse("r=3&min=1&max=50").unwrap())
            .unwrap();
        assert!(!page.is_empty());
        // Part attributes flow into the page (brand keyword present).
        assert!(page.render_text().contains("Brand#"));
    }

    #[test]
    fn q2_range_narrowing_shrinks_pages() {
        let db = db();
        let app = q2_application(&db).unwrap();
        let wide = app
            .execute(&db, &QueryString::parse("r=3&min=1&max=50").unwrap())
            .unwrap();
        let narrow = app
            .execute(&db, &QueryString::parse("r=3&min=10&max=12").unwrap())
            .unwrap();
        assert!(narrow.rows.len() <= wide.rows.len());
    }

    #[test]
    fn q1_field_types() {
        let db = db();
        let app = q1_application(&db).unwrap();
        let types = app.field_types().unwrap();
        assert_eq!(types[0].1, dash_relation::ColumnType::Int); // r_regionkey
        assert_eq!(types[1].1, dash_relation::ColumnType::Decimal); // c_acctbal
        let params = app
            .parse_query_string(&QueryString::parse("r=1&min=0.00&max=10.50").unwrap())
            .unwrap();
        assert_eq!(params.get("min"), Some(&Value::decimal(0)));
        assert_eq!(params.get("max"), Some(&Value::decimal(1050)));
    }
}
