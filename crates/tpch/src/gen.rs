//! The dataset generator: six TPC-H relations at three laptop scales.

use dash_relation::{Column, ColumnType, Database, Date, ForeignKey, Record, Schema, Table, Value};

use crate::text::TextGen;

/// Dataset scale, mirroring the paper's `small`/`medium`/`large` TPC-H
/// datasets at laptop-friendly row counts with the paper's ≈1:5:10 ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ≈1× base rows.
    Small,
    /// ≈5× base rows.
    Medium,
    /// ≈10× base rows.
    Large,
    /// Explicit multiplier over the base row counts (1 = Small).
    Custom(u32),
}

impl Scale {
    /// The row-count multiplier.
    pub fn multiplier(self) -> u32 {
        match self {
            Scale::Small => 1,
            Scale::Medium => 5,
            Scale::Large => 10,
            Scale::Custom(m) => m.max(1),
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Custom(_) => "custom",
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpchConfig {
    /// Dataset scale.
    pub scale: Scale,
    /// Master seed; every relation derives its own stream from it, so any
    /// single relation is stable under changes to the others.
    pub seed: u64,
    /// Base customer count at `Scale::Small`.
    pub base_customers: usize,
    /// Orders per customer (average).
    pub orders_per_customer: usize,
    /// Lineitems per order (average).
    pub lineitems_per_order: usize,
    /// Base part count at `Scale::Small`.
    pub base_parts: usize,
    /// Vocabulary size for comment text.
    pub vocab_size: usize,
}

impl TpchConfig {
    /// Defaults mirroring TPC-H shape: 10 orders per customer, 4 lineitems
    /// per order, parts ≈ 1.3 × customers.
    pub fn new(scale: Scale) -> Self {
        TpchConfig {
            scale,
            seed: 0xDA5B,
            base_customers: 500,
            orders_per_customer: 10,
            lineitems_per_order: 4,
            base_parts: 650,
            vocab_size: 1200,
        }
    }

    /// Overrides the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn customers(&self) -> usize {
        self.base_customers * self.scale.multiplier() as usize
    }

    fn parts(&self) -> usize {
        self.base_parts * self.scale.multiplier() as usize
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const STATUSES: [&str; 3] = ["O", "F", "P"];
const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const PART_TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BURNISHED",
    "ECONOMY BRUSHED",
    "PROMO LACQUERED",
];
const PART_MATERIALS: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const PART_COLORS: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "blanched",
    "blush",
    "burlywood",
    "chartreuse",
];

/// Generates the six-relation database at the configured scale.
///
/// Row counts scale linearly: `|C| = base_customers × m`,
/// `|O| = |C| × orders_per_customer`, `|L| = |O| × lineitems_per_order`,
/// `|P| = base_parts × m`, with `|R| = 5` and `|N| = 25` fixed — matching
/// Table II's shape where R and N are tiny and L dominates.
pub fn generate(config: &TpchConfig) -> Database {
    let mut db = Database::new(format!("tpch-{}", config.scale.name()));

    // region ---------------------------------------------------------
    let region_schema = Schema::builder("region")
        .column(Column::new("r_regionkey", ColumnType::Int))
        .column(Column::new("r_name", ColumnType::Str))
        .column(Column::new("r_comment", ColumnType::Str))
        .primary_key(&["r_regionkey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x01, config.vocab_size);
    let mut region = Table::new(region_schema);
    for (i, name) in REGIONS.iter().enumerate() {
        region
            .insert(Record::new(vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::str(text.sentence_between(6, 12)),
            ]))
            .expect("static data");
    }

    // nation ----------------------------------------------------------
    let nation_schema = Schema::builder("nation")
        .column(Column::new("n_nationkey", ColumnType::Int))
        .column(Column::new("n_name", ColumnType::Str))
        .column(Column::new("n_regionkey", ColumnType::Int))
        .column(Column::new("n_comment", ColumnType::Str))
        .primary_key(&["n_nationkey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x02, config.vocab_size);
    let mut nation = Table::new(nation_schema);
    for (i, (name, region_key)) in NATIONS.iter().enumerate() {
        nation
            .insert(Record::new(vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(*region_key),
                Value::str(text.sentence_between(8, 16)),
            ]))
            .expect("static data");
    }

    // customer ---------------------------------------------------------
    let customer_schema = Schema::builder("customer")
        .column(Column::new("c_custkey", ColumnType::Int))
        .column(Column::new("c_name", ColumnType::Str))
        .column(Column::new("c_address", ColumnType::Str))
        .column(Column::new("c_nationkey", ColumnType::Int))
        .column(Column::new("c_phone", ColumnType::Str))
        .column(Column::new("c_acctbal", ColumnType::Decimal))
        .column(Column::new("c_mktsegment", ColumnType::Str))
        .column(Column::new("c_comment", ColumnType::Str))
        .primary_key(&["c_custkey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x03, config.vocab_size);
    let n_customers = config.customers();
    let mut customer = Table::new(customer_schema);
    for key in 0..n_customers as i64 {
        let nation_key = text.int_between(0, 24);
        customer
            .insert(Record::new(vec![
                Value::Int(key),
                Value::str(format!("Customer#{key:09}")),
                Value::str(format!(
                    "{} {}",
                    text.int_between(1, 9999),
                    text.sentence(2)
                )),
                Value::Int(nation_key),
                Value::str(format!(
                    "{:02}-{:03}-{:03}-{:04}",
                    10 + nation_key,
                    text.int_between(100, 999),
                    text.int_between(100, 999),
                    text.int_between(1000, 9999)
                )),
                Value::decimal(text.int_between(-99_999, 999_999)),
                Value::str(text.pick(&SEGMENTS)),
                Value::str(text.sentence_between(18, 40)),
            ]))
            .expect("generated data is schema-valid");
    }

    // part --------------------------------------------------------------
    let part_schema = Schema::builder("part")
        .column(Column::new("p_partkey", ColumnType::Int))
        .column(Column::new("p_name", ColumnType::Str))
        .column(Column::new("p_mfgr", ColumnType::Str))
        .column(Column::new("p_brand", ColumnType::Str))
        .column(Column::new("p_type", ColumnType::Str))
        .column(Column::new("p_size", ColumnType::Int))
        .column(Column::new("p_retailprice", ColumnType::Decimal))
        .column(Column::new("p_comment", ColumnType::Str))
        .primary_key(&["p_partkey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x04, config.vocab_size);
    let n_parts = config.parts();
    let mut part = Table::new(part_schema);
    for key in 0..n_parts as i64 {
        let mfgr = text.int_between(1, 5);
        part.insert(Record::new(vec![
            Value::Int(key),
            Value::str(format!(
                "{} {} {}",
                text.pick(&PART_COLORS),
                text.pick(&PART_MATERIALS).to_lowercase(),
                text.word(),
            )),
            Value::str(format!("Manufacturer#{mfgr}")),
            Value::str(format!("Brand#{}{}", mfgr, text.int_between(1, 5))),
            Value::str(text.pick(&PART_TYPES)),
            Value::Int(text.int_between(1, 50)),
            Value::decimal(90_000 + key % 20_000 * 10),
            Value::str(text.sentence_between(20, 50)),
        ]))
        .expect("generated data is schema-valid");
    }

    // orders --------------------------------------------------------------
    let orders_schema = Schema::builder("orders")
        .column(Column::new("o_orderkey", ColumnType::Int))
        .column(Column::new("o_custkey", ColumnType::Int))
        .column(Column::new("o_orderstatus", ColumnType::Str))
        .column(Column::new("o_totalprice", ColumnType::Decimal))
        .column(Column::new("o_orderdate", ColumnType::Date))
        .column(Column::new("o_orderpriority", ColumnType::Str))
        .column(Column::new("o_clerk", ColumnType::Str))
        .column(Column::new("o_comment", ColumnType::Str))
        .primary_key(&["o_orderkey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x05, config.vocab_size);
    let n_orders = n_customers * config.orders_per_customer;
    let mut orders = Table::new(orders_schema);
    for key in 0..n_orders as i64 {
        let cust = text.int_between(0, n_customers as i64 - 1);
        orders
            .insert(Record::new(vec![
                Value::Int(key),
                Value::Int(cust),
                Value::str(text.pick(&STATUSES)),
                Value::decimal(text.int_between(85_000, 55_000_000)),
                Value::Date(Date::new(
                    text.int_between(1992, 1998) as u16,
                    text.int_between(1, 12) as u8,
                    text.int_between(1, 28) as u8,
                )),
                Value::str(text.pick(&PRIORITIES)),
                Value::str(format!("Clerk#{:09}", text.int_between(1, 1000))),
                Value::str(text.sentence_between(14, 34)),
            ]))
            .expect("generated data is schema-valid");
    }

    // lineitem --------------------------------------------------------------
    let lineitem_schema = Schema::builder("lineitem")
        .column(Column::new("l_linekey", ColumnType::Int))
        .column(Column::new("l_orderkey", ColumnType::Int))
        .column(Column::new("l_partkey", ColumnType::Int))
        .column(Column::new("l_linenumber", ColumnType::Int))
        .column(Column::new("l_quantity", ColumnType::Int))
        .column(Column::new("l_extendedprice", ColumnType::Decimal))
        .column(Column::new("l_discount", ColumnType::Decimal))
        .column(Column::new("l_returnflag", ColumnType::Str))
        .column(Column::new("l_shipdate", ColumnType::Date))
        .column(Column::new("l_comment", ColumnType::Str))
        .primary_key(&["l_linekey"])
        .build()
        .expect("static schema");
    let mut text = TextGen::new(config.seed ^ 0x06, config.vocab_size);
    let n_lineitems = n_orders * config.lineitems_per_order;
    let mut lineitem = Table::new(lineitem_schema);
    for key in 0..n_lineitems as i64 {
        let order = key / config.lineitems_per_order as i64;
        lineitem
            .insert(Record::new(vec![
                Value::Int(key),
                Value::Int(order),
                Value::Int(text.int_between(0, n_parts as i64 - 1)),
                Value::Int(key % config.lineitems_per_order as i64 + 1),
                Value::Int(text.int_between(1, 50)),
                Value::decimal(text.int_between(90_000, 10_000_000)),
                Value::decimal(text.int_between(0, 10)),
                Value::str(text.pick(&RETURN_FLAGS)),
                Value::Date(Date::new(
                    text.int_between(1992, 1998) as u16,
                    text.int_between(1, 12) as u8,
                    text.int_between(1, 28) as u8,
                )),
                Value::str(text.sentence_between(10, 24)),
            ]))
            .expect("generated data is schema-valid");
    }

    db.add_table(region);
    db.add_table(nation);
    db.add_table(customer);
    db.add_table(orders);
    db.add_table(lineitem);
    db.add_table(part);
    db.add_foreign_key(ForeignKey::new(
        "nation",
        "n_regionkey",
        "region",
        "r_regionkey",
    ));
    db.add_foreign_key(ForeignKey::new(
        "customer",
        "c_nationkey",
        "nation",
        "n_nationkey",
    ));
    db.add_foreign_key(ForeignKey::new(
        "orders",
        "o_custkey",
        "customer",
        "c_custkey",
    ));
    db.add_foreign_key(ForeignKey::new(
        "lineitem",
        "l_orderkey",
        "orders",
        "o_orderkey",
    ));
    db.add_foreign_key(ForeignKey::new(
        "lineitem",
        "l_partkey",
        "part",
        "p_partkey",
    ));
    db
}

/// Per-relation approximate sizes in bytes, in the paper's Table II column
/// order (R, N, C, O, L, P).
pub fn relation_sizes(db: &Database) -> Vec<(&'static str, usize)> {
    const ORDER: [&str; 6] = ["region", "nation", "customer", "orders", "lineitem", "part"];
    ORDER
        .iter()
        .map(|&name| {
            let size = db.table(name).map(|t| t.byte_size()).unwrap_or(0);
            (name, size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_scale() {
        let small = generate(&TpchConfig::new(Scale::Small));
        assert_eq!(small.table("region").unwrap().len(), 5);
        assert_eq!(small.table("nation").unwrap().len(), 25);
        assert_eq!(small.table("customer").unwrap().len(), 500);
        assert_eq!(small.table("orders").unwrap().len(), 5_000);
        assert_eq!(small.table("lineitem").unwrap().len(), 20_000);
        assert_eq!(small.table("part").unwrap().len(), 650);
    }

    #[test]
    fn medium_is_five_times_small() {
        let small = generate(&TpchConfig::new(Scale::Small));
        let medium = generate(&TpchConfig::new(Scale::Medium));
        assert_eq!(
            medium.table("customer").unwrap().len(),
            5 * small.table("customer").unwrap().len()
        );
        assert_eq!(
            medium.table("lineitem").unwrap().len(),
            5 * small.table("lineitem").unwrap().len()
        );
    }

    #[test]
    fn foreign_keys_hold() {
        let db = generate(&TpchConfig::new(Scale::Small));
        db.check_foreign_keys().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = generate(&TpchConfig::new(Scale::Small));
        let b = generate(&TpchConfig::new(Scale::Small));
        assert_eq!(
            a.table("customer").unwrap().records()[17],
            b.table("customer").unwrap().records()[17]
        );
        let c = generate(&TpchConfig::new(Scale::Small).seed(99));
        assert_ne!(
            a.table("customer").unwrap().records()[17],
            c.table("customer").unwrap().records()[17]
        );
    }

    #[test]
    fn sizes_shape_matches_table_2() {
        let db = generate(&TpchConfig::new(Scale::Small));
        let sizes = relation_sizes(&db);
        let get = |n: &str| sizes.iter().find(|(r, _)| *r == n).unwrap().1;
        // R and N are tiny; L dominates; O > C; P modest. (Table II shape.)
        assert!(get("region") < 2_000);
        assert!(get("nation") < 10_000);
        assert!(get("lineitem") > get("orders"));
        assert!(get("orders") > get("customer"));
        assert!(get("lineitem") > 10 * get("part"));
    }

    #[test]
    fn custom_scale() {
        let db = generate(&TpchConfig::new(Scale::Custom(2)));
        assert_eq!(db.table("customer").unwrap().len(), 1000);
        assert_eq!(Scale::Custom(0).multiplier(), 1);
    }
}
