//! # dash-sql
//!
//! A lexer and recursive-descent parser for the SQL dialect that Dash's
//! web-application analyzer extracts from servlet code: *parameterized
//! project-select-join (PSJ) queries* (Definition 1 of the paper).
//!
//! The dialect covers exactly what the paper's application queries use —
//! no more:
//!
//! * `SELECT *` or an explicit column list (optionally `rel.col` qualified),
//! * a `FROM` clause that is a tree of `JOIN` / `LEFT JOIN` over named
//!   relations, with optional parentheses and optional `ON a = b` clauses,
//! * a `WHERE` clause that is a conjunction of `col = x`, `col >= x`,
//!   `col <= x` and `col BETWEEN x AND y`, where each operand is a literal
//!   or a `$param` placeholder.
//!
//! ```
//! use dash_sql::parse_select;
//!
//! let stmt = parse_select(
//!     "SELECT * FROM (customer JOIN orders) JOIN lineitem \
//!      WHERE customer.cid = $r AND lineitem.qty BETWEEN $min AND $max",
//! ).unwrap();
//! assert_eq!(stmt.where_clause.len(), 2);
//! assert_eq!(stmt.from.relations(), vec!["customer", "orders", "lineitem"]);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnRef, Condition, JoinKindAst, Scalar, SelectList, SelectStatement, TableExpr};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_select, ParseError};
