//! Abstract syntax tree for parameterized PSJ queries.

use std::fmt;

use dash_relation::{CompareOp, Value};
use serde::{Deserialize, Serialize};

/// A possibly relation-qualified column reference (`budget` or
/// `lineitem.qty`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Qualifying relation, when written.
    pub relation: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            relation: None,
            column: column.into(),
        }
    }

    /// A relation-qualified column.
    pub fn qualified(relation: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            relation: Some(relation.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(r) => write!(f, "{r}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// The projection list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// An explicit column list.
    Columns(Vec<ColumnRef>),
}

/// Join flavor as written in SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKindAst {
    /// `JOIN` / `INNER JOIN`
    Inner,
    /// `LEFT JOIN` / `LEFT OUTER JOIN`
    LeftOuter,
}

/// The FROM clause: a binary join tree over named relations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableExpr {
    /// A base relation.
    Relation(String),
    /// A join of two sub-expressions, with an optional explicit `ON
    /// left = right` equi-condition. When `on` is `None`, the planner
    /// resolves the join columns from foreign-key metadata, as the paper's
    /// queries do.
    Join {
        /// Left operand.
        left: Box<TableExpr>,
        /// Right operand.
        right: Box<TableExpr>,
        /// Inner or left-outer.
        kind: JoinKindAst,
        /// Optional explicit equi-join condition.
        on: Option<(ColumnRef, ColumnRef)>,
    },
}

impl TableExpr {
    /// The base relation names, left-to-right (the paper's R1, R2, … Rn).
    pub fn relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            TableExpr::Relation(name) => out.push(name),
            TableExpr::Join { left, right, .. } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
        }
    }
}

impl fmt::Display for TableExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableExpr::Relation(name) => write!(f, "{name}"),
            TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKindAst::Inner => "JOIN",
                    JoinKindAst::LeftOuter => "LEFT JOIN",
                };
                write!(f, "({left} {kw} {right}")?;
                if let Some((l, r)) = on {
                    write!(f, " ON {l} = {r}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A scalar operand in the WHERE clause: a constant or a `$param`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// A literal constant.
    Literal(Value),
    /// A named parameter placeholder.
    Param(String),
}

impl Scalar {
    /// Returns the parameter name, when this is a placeholder.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            Scalar::Param(p) => Some(p),
            Scalar::Literal(_) => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Literal(Value::Str(s)) => write!(f, "\"{s}\""),
            Scalar::Literal(v) => write!(f, "{v}"),
            Scalar::Param(p) => write!(f, "${p}"),
        }
    }
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `column ⊗ scalar` with `⊗ ∈ {=, >=, <=}`.
    Compare {
        /// The selection attribute.
        column: ColumnRef,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand operand.
        value: Scalar,
    },
    /// `column BETWEEN low AND high`.
    Between {
        /// The selection attribute.
        column: ColumnRef,
        /// Inclusive lower bound.
        low: Scalar,
        /// Inclusive upper bound.
        high: Scalar,
    },
}

impl Condition {
    /// The selection attribute this condition constrains.
    pub fn column(&self) -> &ColumnRef {
        match self {
            Condition::Compare { column, .. } | Condition::Between { column, .. } => column,
        }
    }

    /// Parameter names referenced by this condition, in syntactic order.
    pub fn params(&self) -> Vec<&str> {
        match self {
            Condition::Compare { value, .. } => value.param_name().into_iter().collect(),
            Condition::Between { low, high, .. } => low
                .param_name()
                .into_iter()
                .chain(high.param_name())
                .collect(),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Condition::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {low} AND {high}")
            }
        }
    }
}

/// A full parameterized PSJ statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Projection list.
    pub select: SelectList,
    /// Join tree.
    pub from: TableExpr,
    /// Conjunction of conditions (possibly empty).
    pub where_clause: Vec<Condition>,
}

impl SelectStatement {
    /// All `$param` names in WHERE-clause order (duplicates preserved).
    pub fn params(&self) -> Vec<&str> {
        self.where_clause
            .iter()
            .flat_map(Condition::params)
            .collect()
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        match &self.select {
            SelectList::Star => write!(f, "*")?,
            SelectList::Columns(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
            }
        }
        write!(f, " FROM {}", self.from)?;
        if !self.where_clause.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.where_clause.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_left_to_right() {
        let expr = TableExpr::Join {
            left: Box::new(TableExpr::Join {
                left: Box::new(TableExpr::Relation("restaurant".into())),
                right: Box::new(TableExpr::Relation("comment".into())),
                kind: JoinKindAst::LeftOuter,
                on: None,
            }),
            right: Box::new(TableExpr::Relation("customer".into())),
            kind: JoinKindAst::Inner,
            on: None,
        };
        assert_eq!(expr.relations(), vec!["restaurant", "comment", "customer"]);
        assert_eq!(
            expr.to_string(),
            "((restaurant LEFT JOIN comment) JOIN customer)"
        );
    }

    #[test]
    fn condition_params() {
        let c = Condition::Between {
            column: ColumnRef::bare("qty"),
            low: Scalar::Param("min".into()),
            high: Scalar::Param("max".into()),
        };
        assert_eq!(c.params(), vec!["min", "max"]);
        assert_eq!(c.column().column, "qty");
    }

    #[test]
    fn statement_display() {
        let stmt = SelectStatement {
            select: SelectList::Columns(vec![
                ColumnRef::bare("name"),
                ColumnRef::qualified("c", "uname"),
            ]),
            from: TableExpr::Relation("restaurant".into()),
            where_clause: vec![Condition::Compare {
                column: ColumnRef::bare("cuisine"),
                op: CompareOp::Eq,
                value: Scalar::Param("c".into()),
            }],
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT name, c.uname FROM restaurant WHERE cuisine = $c"
        );
        assert_eq!(stmt.params(), vec!["c"]);
    }
}
