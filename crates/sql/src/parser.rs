//! Recursive-descent parser for the PSJ dialect.

use std::fmt;

use dash_relation::{CompareOp, Decimal, Value};

use crate::ast::{
    ColumnRef, Condition, JoinKindAst, Scalar, SelectList, SelectStatement, TableExpr,
};
use crate::lexer::{tokenize, LexError, Token};

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of what was expected and what was found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> Self {
        ParseError {
            message: err.to_string(),
        }
    }
}

/// Parses a parameterized PSJ `SELECT` statement.
///
/// # Errors
///
/// Returns [`ParseError`] when the text deviates from the dialect (see the
/// crate docs for the grammar).
///
/// ```
/// use dash_sql::parse_select;
/// let stmt = parse_select("SELECT * FROM r WHERE x = 1").unwrap();
/// assert_eq!(stmt.where_clause.len(), 1);
/// assert!(parse_select("DELETE FROM r").is_err());
/// ```
pub fn parse_select(input: &str) -> Result<SelectStatement, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.error(&format!("trailing input starting at `{}`", p.tokens[p.pos])));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!(
                "expected `{kw}`, found `{}`",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_token(&mut self, token: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == token => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(&format!(
                "expected `{token}`, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => {
                if is_reserved(&s) {
                    Err(self.error(&format!("unexpected keyword `{s}`")))
                } else {
                    Ok(s)
                }
            }
            other => Err(self.error(&format!(
                "expected identifier, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn select_statement(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("SELECT")?;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.table_expr()?;
        let mut where_clause = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                where_clause.push(self.condition()?);
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        Ok(SelectStatement {
            select,
            from,
            where_clause,
        })
    }

    fn select_list(&mut self) -> Result<SelectList, ParseError> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(SelectList::Star);
        }
        let mut cols = vec![self.column_ref()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            cols.push(self.column_ref()?);
        }
        Ok(SelectList::Columns(cols))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    /// `table_expr := table_atom (join_kw table_atom [ON col = col])*`
    fn table_expr(&mut self) -> Result<TableExpr, ParseError> {
        let mut left = self.table_atom()?;
        while let Some(kind) = self.join_keyword()? {
            let right = self.table_atom()?;
            let on = if self.eat_keyword("ON") {
                let l = self.column_ref()?;
                self.expect_token(&Token::Eq)?;
                let r = self.column_ref()?;
                Some((l, r))
            } else {
                None
            };
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn table_atom(&mut self) -> Result<TableExpr, ParseError> {
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.table_expr()?;
            self.expect_token(&Token::RParen)?;
            Ok(inner)
        } else {
            Ok(TableExpr::Relation(self.ident()?))
        }
    }

    fn join_keyword(&mut self) -> Result<Option<JoinKindAst>, ParseError> {
        if self.eat_keyword("JOIN") {
            return Ok(Some(JoinKindAst::Inner));
        }
        if self.peek_keyword("INNER") {
            self.pos += 1;
            self.expect_keyword("JOIN")?;
            return Ok(Some(JoinKindAst::Inner));
        }
        if self.peek_keyword("LEFT") {
            self.pos += 1;
            self.eat_keyword("OUTER");
            self.expect_keyword("JOIN")?;
            return Ok(Some(JoinKindAst::LeftOuter));
        }
        Ok(None)
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        // Each condition may be wrapped in parentheses, as the paper writes
        // them: `(cuisine = "...") AND (budget BETWEEN ...)`.
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let c = self.condition()?;
            self.expect_token(&Token::RParen)?;
            return Ok(c);
        }
        let column = self.column_ref()?;
        if self.eat_keyword("BETWEEN") {
            let low = self.scalar()?;
            self.expect_keyword("AND")?;
            let high = self.scalar()?;
            return Ok(Condition::Between { column, low, high });
        }
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ge) => CompareOp::Ge,
            Some(Token::Le) => CompareOp::Le,
            other => {
                return Err(self.error(&format!(
                    "expected comparison operator, found `{}`",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let value = self.scalar()?;
        Ok(Condition::Compare { column, op, value })
    }

    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Scalar::Literal(Value::Int(i))),
            Some(Token::DecimalLit(text)) => {
                let d = Decimal::from_str_exact(&text).map_err(|e| ParseError {
                    message: e.to_string(),
                })?;
                Ok(Scalar::Literal(Value::Decimal(d)))
            }
            Some(Token::StringLit(s)) => Ok(Scalar::Literal(Value::Str(s))),
            Some(Token::Param(p)) => Ok(Scalar::Param(p)),
            other => Err(self.error(&format!(
                "expected literal or $param, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "AND", "BETWEEN", "JOIN", "LEFT", "INNER", "OUTER", "ON",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_running_example_query() {
        // The query Q assembled by the Search servlet (Figure 3), with
        // parameters in place of the concatenated inputs.
        let stmt = parse_select(
            "SELECT name, budget, rate, comment, uname, date \
             FROM (restaurant LEFT JOIN comment) JOIN customer \
             WHERE (cuisine = $c) AND (budget BETWEEN $l AND $u)",
        )
        .unwrap();
        assert_eq!(
            stmt.from.relations(),
            vec!["restaurant", "comment", "customer"]
        );
        assert_eq!(stmt.params(), vec!["c", "l", "u"]);
        match &stmt.select {
            SelectList::Columns(cols) => assert_eq!(cols.len(), 6),
            SelectList::Star => panic!("expected column list"),
        }
    }

    #[test]
    fn parses_q1_q2_q3() {
        // Table III of the paper.
        let q1 = parse_select(
            "select * from (region JOIN nation) JOIN customer \
             where region.r_regionkey = $r and customer.c_acctbal between $min and $max",
        )
        .unwrap();
        assert_eq!(q1.from.relations(), vec!["region", "nation", "customer"]);

        let q3 = parse_select(
            "select * from (customer JOIN orders) JOIN (lineitem JOIN part) \
             where customer.c_custkey = $r and lineitem.l_quantity between $min and $max",
        )
        .unwrap();
        assert_eq!(
            q3.from.relations(),
            vec!["customer", "orders", "lineitem", "part"]
        );
        // Right operand of the top join is itself a join.
        match &q3.from {
            TableExpr::Join { right, .. } => {
                assert!(matches!(**right, TableExpr::Join { .. }))
            }
            _ => panic!("expected join"),
        }
    }

    #[test]
    fn parses_explicit_on() {
        let stmt = parse_select("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1").unwrap();
        match &stmt.from {
            TableExpr::Join {
                on: Some((l, r)), ..
            } => {
                assert_eq!(l.to_string(), "a.x");
                assert_eq!(r.to_string(), "b.y");
            }
            other => panic!("expected ON join, got {other:?}"),
        }
    }

    #[test]
    fn parses_left_outer_join_spelling() {
        let a = parse_select("SELECT * FROM a LEFT JOIN b").unwrap();
        let b = parse_select("SELECT * FROM a LEFT OUTER JOIN b").unwrap();
        assert_eq!(a.from, b.from);
    }

    #[test]
    fn parses_literals() {
        let stmt = parse_select("SELECT * FROM r WHERE a = \"American\" AND b >= 12.50 AND c <= 7")
            .unwrap();
        assert_eq!(stmt.where_clause.len(), 3);
        match &stmt.where_clause[1] {
            Condition::Compare { op, value, .. } => {
                assert_eq!(*op, CompareOp::Ge);
                assert_eq!(*value, Scalar::Literal(Value::decimal(1250)));
            }
            _ => panic!("expected compare"),
        }
    }

    #[test]
    fn display_reparses_to_same_ast() {
        let text = "SELECT name, budget FROM (restaurant LEFT JOIN comment) JOIN customer \
                    WHERE cuisine = $c AND budget BETWEEN $l AND $u";
        let stmt = parse_select(text).unwrap();
        let reparsed = parse_select(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_select("SELECT FROM r").is_err());
        assert!(parse_select("SELECT * WHERE x = 1").is_err());
        assert!(parse_select("SELECT * FROM r WHERE x").is_err());
        assert!(parse_select("SELECT * FROM r WHERE x BETWEEN 1").is_err());
        assert!(parse_select("SELECT * FROM r extra").is_err());
        assert!(parse_select("SELECT * FROM (r JOIN").is_err());
        assert!(parse_select("UPDATE r SET x = 1").is_err());
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        assert!(parse_select("SELECT select FROM r").is_err());
    }

    #[test]
    fn no_where_clause_is_fine() {
        let stmt = parse_select("SELECT * FROM r").unwrap();
        assert!(stmt.where_clause.is_empty());
        assert!(stmt.params().is_empty());
    }
}
