//! Tokenizer for the PSJ SQL dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; the lexer preserves the original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal with a fractional part, as raw text (the parser
    /// converts it to an exact [`dash_relation::Decimal`]).
    DecimalLit(String),
    /// Single- or double-quoted string literal (quotes stripped).
    StringLit(String),
    /// `$name` parameter placeholder (the `$` is stripped).
    Param(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::DecimalLit(s) => write!(f, "{s}"),
            Token::StringLit(s) => write!(f, "\"{s}\""),
            Token::Param(p) => write!(f, "${p}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ge => write!(f, ">="),
            Token::Le => write!(f, "<="),
        }
    }
}

/// A lexing failure: the offending character and its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, bare `$`/`>`/`<`, or any
/// character outside the dialect.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '>' | '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(if c == '>' { Token::Ge } else { Token::Le });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: format!("bare `{c}` (only >= and <= are supported)"),
                    });
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated string literal".to_string(),
                    });
                }
                tokens.push(Token::StringLit(input[start..j].to_string()));
                i = j + 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "`$` must be followed by a parameter name".to_string(),
                    });
                }
                tokens.push(Token::Param(input[start..j].to_string()));
                i = j;
            }
            '0'..='9' | '-' => {
                // `-` is only valid as a numeric sign (the dialect has no
                // binary minus).
                if c == '-' && !(i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) {
                    return Err(LexError {
                        offset: i,
                        message: "`-` must begin a numeric literal".to_string(),
                    });
                }
                let start = i;
                let mut j = if c == '-' { i + 1 } else { i };
                let mut saw_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !saw_dot
                        && j + 1 < bytes.len()
                        && (bytes[j + 1] as char).is_ascii_digit()
                    {
                        saw_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if saw_dot {
                    tokens.push(Token::DecimalLit(text.to_string()));
                } else {
                    let value: i64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("integer literal `{text}` out of range"),
                    })?;
                    tokens.push(Token::Int(value));
                }
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                tokens.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_query() {
        let tokens = tokenize(
            "SELECT name, budget FROM (restaurant LEFT JOIN comment) JOIN customer \
             WHERE (cuisine = \"American\") AND (budget BETWEEN 10 AND 20)",
        )
        .unwrap();
        assert!(tokens.contains(&Token::Ident("LEFT".into())));
        assert!(tokens.contains(&Token::StringLit("American".into())));
        assert!(tokens.contains(&Token::Int(20)));
    }

    #[test]
    fn lexes_params_and_operators() {
        let tokens = tokenize("qty >= $min AND qty <= $max").unwrap();
        assert_eq!(tokens[0], Token::Ident("qty".into()));
        assert_eq!(tokens[1], Token::Ge);
        assert_eq!(tokens[2], Token::Param("min".into()));
        assert_eq!(tokens[5], Token::Le);
    }

    #[test]
    fn lexes_decimals_and_qualified_names() {
        let tokens = tokenize("C.ACCBAL = 12.50").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("C".into()),
                Token::Dot,
                Token::Ident("ACCBAL".into()),
                Token::Eq,
                Token::DecimalLit("12.50".into()),
            ]
        );
    }

    #[test]
    fn single_quotes_work() {
        let tokens = tokenize("cuisine = 'Thai food'").unwrap();
        assert_eq!(tokens[2], Token::StringLit("Thai food".into()));
    }

    #[test]
    fn errors_are_located() {
        let err = tokenize("a > b").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(tokenize("x = \"unterminated").is_err());
        assert!(tokenize("$ x").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn star_and_commas() {
        let tokens = tokenize("SELECT * FROM r").unwrap();
        assert_eq!(tokens[1], Token::Star);
    }

    #[test]
    fn dot_not_part_of_int_without_digit() {
        // `5.` is Int(5) followed by Dot.
        let tokens = tokenize("5.x").unwrap();
        assert_eq!(tokens[0], Token::Int(5));
        assert_eq!(tokens[1], Token::Dot);
    }
}
