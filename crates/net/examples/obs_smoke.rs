//! Observability smoke: spawns a fooddb primary on an ephemeral
//! port, drives a little real-socket traffic through it, scrapes
//! `GET /metrics`, and prints the exposition. CI greps the output
//! for the required series and — with `DASH_OBS_HOLD_SECS` set — also
//! curls the live server before it exits.
//!
//! ```text
//! cargo run --release -p dash-net --example obs_smoke
//! ```

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dash_core::{DashConfig, SearchRequest};
use dash_net::{NetClient, NetConfig, NetServer};
use dash_serve::{DashServer, ServeConfig};
use dash_webapp::fooddb;

fn main() {
    let db = fooddb::database();
    let app = fooddb::search_application().expect("fooddb analyzes");
    let server = Arc::new(
        DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(2),
        )
        .expect("server builds"),
    );
    let net = NetServer::serve_primary(
        server,
        db,
        TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
        NetConfig::default(),
    )
    .expect("net server starts");
    println!("listening on {}", net.addr());

    // Enough traffic for the scrape to show every layer: three
    // *distinct* searches (identical ones would be served from the
    // response cache after the first and never reach the serve or
    // shard layers).
    let mut client = NetClient::connect(net.addr()).expect("client connects");
    for k in 1..=3 {
        client
            .search(&SearchRequest::new(&["burger"]).k(k).min_size(20))
            .expect("search over socket");
    }
    println!("{}", client.metrics_text().expect("metrics scrape"));

    // Keep serving if asked, so an external scraper (CI's curl) can
    // hit the same live server.
    if let Some(secs) = std::env::var("DASH_OBS_HOLD_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_secs(secs));
    }
}
