//! `NetClient` — the socket-level client of the HTTP front-end: a
//! persistent keep-alive connection, requests framed by
//! `Content-Length`, JSON decoded back into the same [`SearchHit`]
//! structs the engine produces (bit-exact — see [`crate::json`]).
//!
//! Retry discipline (shared with forwarding and routing via
//! [`crate::backoff`]): reconnect attempts use jittered exponential
//! backoff under a per-call deadline. A failure in the **connect
//! phase** — before a single request byte is sent — is retried for
//! every request kind, `POST /update` included: nothing reached the
//! server, so a retry cannot double-apply. A failure in the
//! **exchange phase** (after the request started flowing) is retried
//! only for idempotent GETs; `POST /update` is never silently resent
//! (see [`NetClient::publish`]'s error contract): the server may have
//! applied an update whose response was lost, and a blind resend
//! would double-apply it.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use dash_core::{IndexDelta, RecordChange, SearchHit, SearchRequest};
use dash_relation::Record;

use crate::backoff::{Backoff, BackoffConfig};
use crate::http::{self, percent_encode};
use crate::json;
use crate::server::{ack_from_json, encode_update, NetChange, UpdateAck, UpdateBody};

/// A persistent-connection HTTP client for the Dash serving routes.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    backoff: BackoffConfig,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`](crate::NetServer) with the default
    /// retry discipline.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (the initial connect is a single
    /// attempt — backoff applies to later transparent reconnects).
    pub fn connect(addr: SocketAddr) -> io::Result<NetClient> {
        Self::connect_with(addr, BackoffConfig::default())
    }

    /// [`NetClient::connect`] with an explicit reconnect backoff
    /// discipline (see [`BackoffConfig`]).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with(addr: SocketAddr, backoff: BackoffConfig) -> io::Result<NetClient> {
        let mut client = NetClient {
            addr,
            backoff,
            conn: None,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.conn = Some(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        });
        Ok(())
    }

    /// Issues one request, retrying under the jittered-backoff budget
    /// of [`BackoffConfig`]. Connect-phase failures (no request byte
    /// sent yet) are retried for every request kind — nothing reached
    /// the server. Exchange-phase failures are retried only for
    /// `idempotent` requests (GETs); non-idempotent ones
    /// (`POST /update`) are never silently resent — a connection that
    /// dies after the server applied the update but before the
    /// response arrived would otherwise double-apply the change. Such
    /// failures surface as errors for the caller to reconcile (e.g.
    /// via `GET /stats` epoch inspection).
    fn roundtrip(&mut self, request: &[u8], idempotent: bool) -> io::Result<(u16, Vec<u8>)> {
        let mut backoff = Backoff::start(&self.backoff);
        loop {
            if self.conn.is_none() {
                match self.reconnect() {
                    Ok(()) => {}
                    // Connect phase: always safe to retry.
                    Err(e) => {
                        if backoff.wait() {
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connected above");
            let result = (|| {
                conn.writer.write_all(request)?;
                conn.writer.flush()?;
                http::read_response(&mut conn.reader)
            })();
            match result {
                Ok(answer) => return Ok(answer),
                Err(e) => {
                    // The connection is in an unknown state: drop it so
                    // the next attempt (or call) starts fresh.
                    self.conn = None;
                    // Exchange phase: the request may have reached the
                    // server — only idempotent requests retry.
                    if idempotent && backoff.wait() {
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// `GET /search` — returns the served hit list, decoded to the
    /// exact structs the engine produced.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses, malformed JSON.
    pub fn search(&mut self, request: &SearchRequest) -> io::Result<Vec<SearchHit>> {
        let body = self.search_json(request)?;
        json::hits_from_json(&body)
    }

    /// `GET /search` — the raw JSON response body. Two servers holding
    /// identical state answer with identical bytes (the encoder is
    /// byte-stable), which the equivalence tier asserts directly.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn search_json(&mut self, request: &SearchRequest) -> io::Result<String> {
        let mut target = String::from("/search?");
        for keyword in &request.keywords {
            target.push_str("kw=");
            target.push_str(&percent_encode(keyword));
            target.push('&');
        }
        target.push_str(&format!("k={}&s={}", request.k, request.min_size));
        self.get(&target)
    }

    /// `POST /update` with a prebuilt delta ([`DashServer::publish`]
    /// on the primary).
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses (including `503` from a replica).
    ///
    /// [`DashServer::publish`]: dash_serve::DashServer::publish
    pub fn publish(&mut self, delta: &IndexDelta) -> io::Result<UpdateAck> {
        self.update(&UpdateBody::Publish(delta.clone()))
    }

    /// `POST /update` inserting one record.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn insert(&mut self, relation: &str, record: Record) -> io::Result<UpdateAck> {
        self.apply(vec![NetChange::Insert(RecordChange::new(relation, record))])
    }

    /// `POST /update` deleting one (exact) record.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn delete(&mut self, relation: &str, record: Record) -> io::Result<UpdateAck> {
        self.apply(vec![NetChange::Delete(RecordChange::new(relation, record))])
    }

    /// `POST /update` with a batch of record changes (one bulk delta,
    /// one publication on the server).
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn apply(&mut self, changes: Vec<NetChange>) -> io::Result<UpdateAck> {
        self.update(&UpdateBody::Changes(changes))
    }

    /// `POST /update` with an already-assembled body — the entry point
    /// the write-forwarding path uses to relay a replica-received
    /// update verbatim.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn update(&mut self, body: &UpdateBody) -> io::Result<UpdateAck> {
        let payload = encode_update(body);
        let request = format!(
            "POST /update HTTP/1.1\r\nHost: dash\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        let mut bytes = request.into_bytes();
        bytes.extend(payload);
        let (status, body) = self.roundtrip(&bytes, false)?;
        let text = String::from_utf8_lossy(&body).into_owned();
        if status != 200 {
            return Err(io::Error::other(format!(
                "update failed ({status}): {text}"
            )));
        }
        ack_from_json(&text)
    }

    /// `GET /stats` — the raw JSON counters document.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.get("/stats")
    }

    /// `GET /metrics` — the Prometheus text exposition (the
    /// front-end's `dash_net_*` series merged with the serving
    /// stack's and the process-global registry).
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        self.get("/metrics")
    }

    /// `GET /debug/slow` — the worst-N slow-request log with
    /// per-stage latency breakdowns, as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn slow_json(&mut self) -> io::Result<String> {
        self.get("/debug/slow")
    }

    fn get(&mut self, target: &str) -> io::Result<String> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: dash\r\n\r\n");
        let (status, body) = self.roundtrip(request.as_bytes(), true)?;
        let text = String::from_utf8_lossy(&body).into_owned();
        if status != 200 {
            return Err(io::Error::other(format!(
                "request failed ({status}): {text}"
            )));
        }
        Ok(text)
    }
}
