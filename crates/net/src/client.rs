//! `NetClient` — the socket-level client of the HTTP front-end: a
//! persistent keep-alive connection, requests framed by
//! `Content-Length`, JSON decoded back into the same [`SearchHit`]
//! structs the engine produces (bit-exact — see [`crate::json`]).
//! On a broken connection the client reconnects and, for idempotent
//! GETs only, retries once — a server restart costs one retried read.
//! `POST /update` is never silently resent (see
//! [`NetClient::publish`]'s error contract): the server may have
//! applied an update whose response was lost, and a blind resend
//! would double-apply it.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use dash_core::{IndexDelta, RecordChange, SearchHit, SearchRequest};
use dash_relation::Record;

use crate::http::{self, percent_encode};
use crate::json;
use crate::server::{ack_from_json, encode_update, NetChange, UpdateAck, UpdateBody};

/// A persistent-connection HTTP client for the Dash serving routes.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`](crate::NetServer).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<NetClient> {
        let mut client = NetClient { addr, conn: None };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.conn = Some(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        });
        Ok(())
    }

    /// Issues one request. `idempotent` requests (GETs) are
    /// transparently retried once on a fresh connection if the
    /// persistent one died since the last call; non-idempotent ones
    /// (`POST /update`) are never silently resent — a connection that
    /// dies after the server applied the update but before the
    /// response arrived would otherwise double-apply the change. Such
    /// failures surface as errors for the caller to reconcile (e.g.
    /// via `GET /stats` epoch inspection).
    fn roundtrip(&mut self, request: &[u8], idempotent: bool) -> io::Result<(u16, Vec<u8>)> {
        let attempts = if idempotent { 2 } else { 1 };
        for attempt in 0..attempts {
            if self.conn.is_none() {
                self.reconnect()?;
            }
            let conn = self.conn.as_mut().expect("connected above");
            let result = (|| {
                conn.writer.write_all(request)?;
                conn.writer.flush()?;
                http::read_response(&mut conn.reader)
            })();
            match result {
                Ok(answer) => return Ok(answer),
                Err(e) => {
                    // The connection is in an unknown state: drop it so
                    // the next call starts fresh.
                    self.conn = None;
                    if attempt + 1 == attempts {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on its final attempt")
    }

    /// `GET /search` — returns the served hit list, decoded to the
    /// exact structs the engine produced.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses, malformed JSON.
    pub fn search(&mut self, request: &SearchRequest) -> io::Result<Vec<SearchHit>> {
        let body = self.search_json(request)?;
        json::hits_from_json(&body)
    }

    /// `GET /search` — the raw JSON response body. Two servers holding
    /// identical state answer with identical bytes (the encoder is
    /// byte-stable), which the equivalence tier asserts directly.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn search_json(&mut self, request: &SearchRequest) -> io::Result<String> {
        let mut target = String::from("/search?");
        for keyword in &request.keywords {
            target.push_str("kw=");
            target.push_str(&percent_encode(keyword));
            target.push('&');
        }
        target.push_str(&format!("k={}&s={}", request.k, request.min_size));
        self.get(&target)
    }

    /// `POST /update` with a prebuilt delta ([`DashServer::publish`]
    /// on the primary).
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses (including `503` from a replica).
    ///
    /// [`DashServer::publish`]: dash_serve::DashServer::publish
    pub fn publish(&mut self, delta: &IndexDelta) -> io::Result<UpdateAck> {
        self.update(&UpdateBody::Publish(delta.clone()))
    }

    /// `POST /update` inserting one record.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn insert(&mut self, relation: &str, record: Record) -> io::Result<UpdateAck> {
        self.apply(vec![NetChange::Insert(RecordChange::new(relation, record))])
    }

    /// `POST /update` deleting one (exact) record.
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn delete(&mut self, relation: &str, record: Record) -> io::Result<UpdateAck> {
        self.apply(vec![NetChange::Delete(RecordChange::new(relation, record))])
    }

    /// `POST /update` with a batch of record changes (one bulk delta,
    /// one publication on the server).
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::publish`].
    pub fn apply(&mut self, changes: Vec<NetChange>) -> io::Result<UpdateAck> {
        self.update(&UpdateBody::Changes(changes))
    }

    fn update(&mut self, body: &UpdateBody) -> io::Result<UpdateAck> {
        let payload = encode_update(body);
        let request = format!(
            "POST /update HTTP/1.1\r\nHost: dash\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        let mut bytes = request.into_bytes();
        bytes.extend(payload);
        let (status, body) = self.roundtrip(&bytes, false)?;
        let text = String::from_utf8_lossy(&body).into_owned();
        if status != 200 {
            return Err(io::Error::other(format!(
                "update failed ({status}): {text}"
            )));
        }
        ack_from_json(&text)
    }

    /// `GET /stats` — the raw JSON counters document.
    ///
    /// # Errors
    ///
    /// I/O errors, non-200 statuses.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.get("/stats")
    }

    fn get(&mut self, target: &str) -> io::Result<String> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: dash\r\n\r\n");
        let (status, body) = self.roundtrip(request.as_bytes(), true)?;
        let text = String::from_utf8_lossy(&body).into_owned();
        if status != 200 {
            return Err(io::Error::other(format!(
                "request failed ({status}): {text}"
            )));
        }
        Ok(text)
    }
}
