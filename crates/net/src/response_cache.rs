//! The pre-serialized HTTP response cache — the wire-tax attack.
//!
//! BENCH_net.json priced a cache-hit search at ~112µs over the socket
//! vs ~4µs in-process: the serve-tier result cache removes the
//! *search*, but the front-end still re-serializes the hit list to
//! JSON and re-frames the HTTP response on every request. This cache
//! stores the **final socket bytes** of a `GET /search` response
//! (status line, headers, body — rendered once by
//! [`render_response`](crate::http::render_response)), so a repeat of
//! a hot request is a lookup and a single `write(2)`.
//!
//! Correctness rides on the same machinery that keeps the serve-tier
//! cache byte-exact (`crates/serve/src/cache.rs`): an entry remembers
//! its candidate equality groups and request keywords, and is dropped
//! exactly when a published [`DeltaSignature`] intersects either set.
//! Publications reach this cache through a replication tap
//! ([`DashServer::replication_feed`]) drained synchronously on every
//! lookup and insert — the same ordered, gap-free event stream
//! replicas consume — and insertions are epoch-checked against the
//! tap position, so a response rendered against a snapshot the tap has
//! already moved past is dropped rather than cached. If the tap is
//! evicted for lagging (or the backing server is swapped out, e.g. a
//! replica re-bootstrap), the cache flushes wholesale and re-registers
//! — always conservative, never stale.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;

use dash_core::{DeltaSignature, SearchRequest};
use dash_relation::Value;
use dash_serve::{DashServer, PublishEvent, ReplicationFeed};
use parking_lot::Mutex;

/// Cache identity of a search — the full request, field by field, same
/// discipline as the serve-tier cache: two requests share an entry
/// only when byte-identical responses are guaranteed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    keywords: Vec<String>,
    k: usize,
    min_size: u64,
}

impl From<&SearchRequest> for CacheKey {
    fn from(request: &SearchRequest) -> Self {
        CacheKey {
            keywords: request.keywords.clone(),
            k: request.k,
            min_size: request.min_size,
        }
    }
}

/// One cached response with its invalidation dependencies.
#[derive(Debug)]
struct Entry {
    /// The exact socket bytes of the keep-alive rendering. `Arc`d so a
    /// hit hands the event loop a reference, not a copy.
    bytes: Arc<Vec<u8>>,
    /// Candidate equality groups at computation time.
    groups: BTreeSet<Vec<Value>>,
    /// The request's keywords, set-shaped for signature intersection.
    keywords: BTreeSet<String>,
    /// Recency stamp (lazy LRU, as in the serve-tier cache).
    tick: u64,
}

/// Counters the front-end exposes (see
/// [`NetServer::response_cache_stats`](crate::NetServer::response_cache_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Lookups answered with pre-serialized bytes.
    pub hits: u64,
    /// Lookups that fell through to the serving path.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Insertions dropped because their snapshot epoch was stale.
    pub rejected_stale: u64,
    /// Insertions refused because one response alone would exceed the
    /// byte budget.
    pub rejected_oversize: u64,
    /// Entries removed by delta-signature invalidation.
    pub invalidated: u64,
    /// Entries evicted by the LRU capacity or byte budget.
    pub evicted: u64,
    /// Wholesale flush-and-re-register cycles (first registration,
    /// backing-server swap, or tap eviction after lagging too far).
    pub resyncs: u64,
}

/// The live replication tap: which server Arc it watches (pointer
/// identity — a swapped backing server forces a resync) and the event
/// stream.
#[derive(Debug)]
struct Feed {
    server: usize,
    events: Receiver<PublishEvent>,
}

#[derive(Debug, Default)]
struct Inner {
    feed: Option<Feed>,
    /// The epoch the tap has been drained to; insertions tagged with
    /// any other epoch are rejected.
    epoch: u64,
    tick: u64,
    /// Total bytes across live entries — what the byte budget bounds.
    total_bytes: usize,
    map: HashMap<CacheKey, Entry>,
    /// Lazy LRU order, compacted when stale records outnumber live
    /// entries 2:1 (same scheme as the serve-tier cache).
    order: VecDeque<(u64, CacheKey)>,
    stats: ResponseCacheStats,
}

impl Inner {
    fn compact(&mut self) {
        if self.order.len() <= 2 * self.map.len() + 16 {
            return;
        }
        let mut live: Vec<(u64, CacheKey)> = self
            .map
            .iter()
            .map(|(key, entry)| (entry.tick, key.clone()))
            .collect();
        live.sort_unstable_by_key(|(tick, _)| *tick);
        self.order = live.into();
    }

    fn flush(&mut self) {
        self.map.clear();
        self.order.clear();
        self.total_bytes = 0;
    }

    /// Brings the cache up to date with the backing server: registers
    /// a tap on first contact or server swap (flushing everything —
    /// conservative), then drains every published event, applying its
    /// signature. A disconnected tap (evicted for lagging, or the
    /// server died and another took its address) flushes and
    /// re-registers in the same call.
    fn sync(&mut self, server: &Arc<DashServer>) {
        let ptr = Arc::as_ptr(server) as usize;
        loop {
            if self.feed.as_ref().is_none_or(|f| f.server != ptr) {
                self.flush();
                self.stats.resyncs += 1;
                let ReplicationFeed { snapshot, events } = server.replication_feed();
                self.epoch = snapshot.epoch;
                // Holding the snapshot would pin the retired engine
                // side and force every future publish into a fork;
                // only its epoch matters here.
                drop(snapshot);
                self.feed = Some(Feed {
                    server: ptr,
                    events,
                });
            }
            let mut disconnected = false;
            let mut drained = Vec::new();
            if let Some(feed) = &self.feed {
                loop {
                    match feed.events.try_recv() {
                        Ok(event) => drained.push(event),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
            }
            for event in &drained {
                self.apply(event);
            }
            if !disconnected {
                return;
            }
            self.feed = None;
        }
    }

    /// Applies one publication: drops every entry whose dependencies
    /// intersect the signature, advances the epoch.
    fn apply(&mut self, event: &PublishEvent) {
        self.epoch = event.epoch;
        let before = self.map.len();
        let mut dropped = 0usize;
        let signature: &DeltaSignature = &event.signature;
        self.map.retain(|_, entry| {
            let keep = !signature.hits(&entry.groups, &entry.keywords);
            if !keep {
                dropped += entry.bytes.len();
            }
            keep
        });
        self.total_bytes -= dropped;
        self.stats.invalidated += (before - self.map.len()) as u64;
    }
}

/// The signature-keyed pre-serialized response cache fronting the
/// serving path.
#[derive(Debug)]
pub(crate) struct ResponseCache {
    capacity: usize,
    /// Budget on total cached bytes (0 = unlimited).
    byte_budget: usize,
    inner: Mutex<Inner>,
}

impl ResponseCache {
    /// A cache of at most `capacity` responses totalling at most
    /// `byte_budget` bytes; capacity 0 disables caching entirely (no
    /// tap is ever registered).
    pub(crate) fn new(capacity: usize, byte_budget: usize) -> Self {
        ResponseCache {
            capacity,
            byte_budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether lookups can ever hit.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up the pre-serialized response for a request against the
    /// given backing server, after draining every pending publication
    /// (a hit is guaranteed byte-identical to rendering a fresh
    /// search).
    pub(crate) fn get(
        &self,
        server: &Arc<DashServer>,
        request: &SearchRequest,
    ) -> Option<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            return None;
        }
        let key = CacheKey::from(request);
        let mut inner = self.inner.lock();
        inner.sync(server);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let bytes = Arc::clone(&entry.bytes);
                inner.order.push_back((tick, key));
                inner.stats.hits += 1;
                inner.compact();
                Some(bytes)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// The epoch to tag an insert with: the tap's current position.
    /// Call *before* computing the response; if a publication lands in
    /// between, the insert's tag goes stale and is rejected — the race
    /// resolves to "don't cache", never to "cache stale bytes".
    pub(crate) fn insert_epoch(&self, server: &Arc<DashServer>) -> u64 {
        let mut inner = self.inner.lock();
        inner.sync(server);
        inner.epoch
    }

    /// Stores a rendered response computed against tap position
    /// `epoch`, with its candidate groups as invalidation
    /// dependencies.
    pub(crate) fn insert(
        &self,
        server: &Arc<DashServer>,
        request: &SearchRequest,
        bytes: Arc<Vec<u8>>,
        groups: BTreeSet<Vec<Value>>,
        epoch: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.sync(server);
        if epoch != inner.epoch {
            inner.stats.rejected_stale += 1;
            return;
        }
        if self.byte_budget > 0 && bytes.len() > self.byte_budget {
            inner.stats.rejected_oversize += 1;
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let key = CacheKey::from(request);
        let entry = Entry {
            bytes,
            groups,
            keywords: request.keywords.iter().cloned().collect(),
            tick,
        };
        inner.order.push_back((tick, key.clone()));
        inner.total_bytes += entry.bytes.len();
        if let Some(replaced) = inner.map.insert(key, entry) {
            inner.total_bytes -= replaced.bytes.len();
        }
        inner.stats.insertions += 1;
        while inner.map.len() > self.capacity
            || (self.byte_budget > 0 && inner.total_bytes > self.byte_budget)
        {
            let Some((tick, key)) = inner.order.pop_front() else {
                break;
            };
            if inner.map.get(&key).is_some_and(|e| e.tick == tick) {
                let evicted = inner.map.remove(&key).expect("entry checked present");
                inner.total_bytes -= evicted.bytes.len();
                inner.stats.evicted += 1;
            }
        }
        inner.compact();
    }

    /// A copy of the counters.
    pub(crate) fn stats(&self) -> ResponseCacheStats {
        self.inner.lock().stats
    }

    /// Live entry count.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::{DashConfig, Fragment, FragmentId, IndexDelta};
    use dash_serve::ServeConfig;
    use dash_webapp::fooddb;

    fn tiny_server() -> Arc<DashServer> {
        let db = fooddb::database();
        let app = fooddb::search_application().expect("app analyzes");
        Arc::new(
            DashServer::build(&app, &db, &DashConfig::default(), ServeConfig::default())
                .expect("server builds"),
        )
    }

    fn request(words: &[&str]) -> SearchRequest {
        SearchRequest::new(words).k(3).min_size(1)
    }

    fn groups(names: &[&str]) -> BTreeSet<Vec<Value>> {
        names.iter().map(|n| vec![Value::str(*n)]).collect()
    }

    fn delta_touching(keyword: &str) -> IndexDelta {
        IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("churn"), Value::Int(9)]),
            [(keyword.to_string(), 1u64)].into_iter().collect(),
            1,
        )])
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let server = tiny_server();
        let cache = ResponseCache::new(8, 0);
        let r = request(&["alpha"]);
        let epoch = cache.insert_epoch(&server);
        let bytes = Arc::new(b"HTTP/1.1 200 OK\r\n\r\n".to_vec());
        cache.insert(&server, &r, Arc::clone(&bytes), groups(&["g1"]), epoch);
        let hit = cache.get(&server, &r).expect("cached");
        assert!(
            Arc::ptr_eq(&hit, &bytes),
            "a hit is a reference, not a copy"
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn publication_invalidates_by_signature_via_the_tap() {
        let server = tiny_server();
        let cache = ResponseCache::new(8, 0);
        let by_keyword = request(&["shared"]);
        let untouched = request(&["quiet"]);
        let epoch = cache.insert_epoch(&server);
        let bytes = || Arc::new(vec![1u8, 2, 3]);
        cache.insert(&server, &by_keyword, bytes(), groups(&["cold"]), epoch);
        cache.insert(&server, &untouched, bytes(), groups(&["cold"]), epoch);
        // The published delta adds a "shared" posting: its signature
        // carries the keyword, so only the intersecting entry dies.
        server.publish(delta_touching("shared"));
        assert!(cache.get(&server, &by_keyword).is_none(), "keyword overlap");
        assert!(
            cache.get(&server, &untouched).is_some(),
            "disjoint survives"
        );
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn stale_epoch_insertions_are_rejected() {
        let server = tiny_server();
        let cache = ResponseCache::new(8, 0);
        let r = request(&["late"]);
        let epoch = cache.insert_epoch(&server);
        // A publication lands between reading the epoch and inserting.
        server.publish(delta_touching("elsewhere"));
        cache.insert(&server, &r, Arc::new(vec![0u8]), groups(&["g"]), epoch);
        assert!(cache.get(&server, &r).is_none());
        assert_eq!(cache.stats().rejected_stale, 1);
    }

    #[test]
    fn server_swap_flushes_and_resyncs() {
        let first = tiny_server();
        let second = tiny_server();
        let cache = ResponseCache::new(8, 0);
        let r = request(&["alpha"]);
        let epoch = cache.insert_epoch(&first);
        cache.insert(&first, &r, Arc::new(vec![7u8]), groups(&["g"]), epoch);
        assert!(cache.get(&first, &r).is_some());
        // A different backing server (replica re-bootstrap, promotion)
        // must not serve the old server's bytes.
        assert!(cache.get(&second, &r).is_none());
        assert_eq!(cache.len(), 0, "swap flushes everything");
        assert!(cache.stats().resyncs >= 2);
    }

    #[test]
    fn byte_budget_bounds_total_cached_bytes() {
        let server = tiny_server();
        let cache = ResponseCache::new(64, 10);
        let epoch = cache.insert_epoch(&server);
        cache.insert(
            &server,
            &request(&["a"]),
            Arc::new(vec![0; 4]),
            groups(&["g"]),
            epoch,
        );
        cache.insert(
            &server,
            &request(&["b"]),
            Arc::new(vec![0; 4]),
            groups(&["g"]),
            epoch,
        );
        // Admitting 4 more bytes would hit 12 > 10: LRU (a) goes.
        cache.insert(
            &server,
            &request(&["c"]),
            Arc::new(vec![0; 4]),
            groups(&["g"]),
            epoch,
        );
        assert!(cache.get(&server, &request(&["a"])).is_none());
        assert!(cache.get(&server, &request(&["b"])).is_some());
        assert_eq!(cache.stats().evicted, 1);
        // One response bigger than the whole budget is refused.
        cache.insert(
            &server,
            &request(&["huge"]),
            Arc::new(vec![0; 11]),
            groups(&["g"]),
            epoch,
        );
        assert!(cache.get(&server, &request(&["huge"])).is_none());
        assert_eq!(cache.stats().rejected_oversize, 1);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let server = tiny_server();
        let cache = ResponseCache::new(0, 0);
        let r = request(&["a"]);
        cache.insert(&server, &r, Arc::new(vec![1u8]), groups(&["g"]), 0);
        assert!(cache.get(&server, &r).is_none());
        assert!(!cache.enabled());
    }
}
