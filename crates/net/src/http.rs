//! A minimal HTTP/1.1 implementation over `std::net` — just enough
//! protocol for the Dash serving endpoints and their clients, with no
//! external dependencies (the build environment has no registry
//! access, and the serving surface is three fixed routes).
//!
//! Supported: request-line + header parsing, `Content-Length` bodies,
//! persistent connections (`keep-alive` is the HTTP/1.1 default;
//! `Connection: close` honored), percent-decoded query strings with
//! repeated keys (`?kw=a&kw=b`). Not supported, by design: chunked
//! transfer, trailers, pipelining beyond request-at-a-time, TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on header bytes and body bytes — a malformed or hostile
/// peer cannot make the server buffer unboundedly.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component (`/search`).
    pub path: String,
    /// Percent-decoded query parameters in request order; keys repeat
    /// (`?kw=a&kw=b` yields two `kw` entries).
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeated query parameter, in order.
    pub fn params(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// Reads one request off a persistent connection. `Ok(None)` means the
/// peer closed cleanly between requests (normal keep-alive shutdown).
///
/// # Errors
///
/// `InvalidData` on malformed request lines, oversized headers or
/// bodies; propagates I/O errors (including timeouts, which callers
/// poll through).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return Err(invalid(&format!("malformed request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(&format!("unsupported version: {version:?}")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)? == 0 {
            return Err(invalid("connection closed inside headers"));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(invalid("headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(invalid(&format!("malformed header: {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| invalid(&format!("bad content-length: {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(invalid("body too large"));
                }
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = split_target(&target)?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// One HTTP response: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text error response with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: message.as_bytes().to_vec(),
        }
    }
}

/// Writes a response, honoring the request's keep-alive choice.
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// Reads the status line + headers + body of one HTTP *response* (the
/// client half of the exchange). Returns the status code and body.
///
/// # Errors
///
/// `InvalidData` on malformed framing; propagates I/O errors.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<u8>)> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)? == 0 {
        return Err(invalid("connection closed before response"));
    }
    let mut parts = line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| invalid(&format!("bad status code: {code:?}")))?,
        _ => return Err(invalid(&format!("malformed status line: {line:?}"))),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)? == 0 {
            return Err(invalid("connection closed inside response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad response content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(invalid("response body too large"));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

/// Splits a request target into its decoded path and query pairs.
fn split_target(target: &str) -> io::Result<(String, Vec<(String, String)>)> {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut pairs = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        pairs.push((percent_decode(key)?, percent_decode(value)?));
    }
    Ok((percent_decode(path)?, pairs))
}

/// Percent-decodes one URL component (`%XX` escapes and `+` as space).
pub fn percent_decode(s: &str) -> io::Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut at = 0;
    while at < bytes.len() {
        match bytes[at] {
            b'%' => {
                let hex = s
                    .get(at + 1..at + 3)
                    .ok_or_else(|| invalid("truncated percent escape"))?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| invalid(&format!("bad percent escape: %{hex}")))?;
                out.push(byte);
                at += 3;
            }
            b'+' => {
                out.push(b' ');
                at += 1;
            }
            byte => {
                out.push(byte);
                at += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| invalid("decoded component is not UTF-8"))
}

/// Percent-encodes one URL component (everything but unreserved chars).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &byte in s.as_bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char);
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// `read_line` with the header-size bound applied per line.
fn read_line_bounded(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let mut limited = reader.by_ref().take(MAX_HEADER_BYTES as u64 + 1);
    let n = limited.read_line(line)?;
    if n > MAX_HEADER_BYTES {
        return Err(invalid("line too long"));
    }
    Ok(n)
}

pub(crate) fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        for s in ["plain", "two words", "kw=a&b", "ünïcode", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)).unwrap(), s);
        }
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn target_splitting_decodes_repeated_keys() {
        let (path, query) = split_target("/search?kw=thai%20curry&kw=burger&k=2").unwrap();
        assert_eq!(path, "/search");
        assert_eq!(
            query,
            vec![
                ("kw".to_string(), "thai curry".to_string()),
                ("kw".to_string(), "burger".to_string()),
                ("k".to_string(), "2".to_string()),
            ]
        );
    }
}
