//! A minimal HTTP/1.1 implementation over `std::net` — just enough
//! protocol for the Dash serving endpoints and their clients, with no
//! external dependencies (the build environment has no registry
//! access, and the serving surface is three fixed routes).
//!
//! Supported: request-line + header parsing (incremental, over a
//! growing byte buffer — the event loop feeds it whatever segments
//! have arrived), `Content-Length` bodies, persistent connections
//! (`keep-alive` is the HTTP/1.1 default; `Connection: close`
//! honored), percent-decoded query strings with repeated keys
//! (`?kw=a&kw=b`), and chunked *response* bodies above
//! [`CHUNK_THRESHOLD`] (large hit lists stream in [`CHUNK_SIZE`]
//! pieces instead of one `Content-Length` slab). Not supported, by
//! design: chunked request bodies, trailers with content, TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on header bytes and body bytes — a malformed or hostile
/// peer cannot make the server buffer unboundedly.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Response bodies larger than this are sent with
/// `Transfer-Encoding: chunked` (the large-k hit-list path) instead of
/// one `Content-Length` slab.
pub const CHUNK_THRESHOLD: usize = 32 * 1024;
/// Chunk size of a chunked response body.
pub const CHUNK_SIZE: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component (`/search`).
    pub path: String,
    /// Percent-decoded query parameters in request order; keys repeat
    /// (`?kw=a&kw=b` yields two `kw` entries).
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeated query parameter, in order.
    pub fn params(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// Why a request failed to parse — carries the HTTP status the server
/// answers with before closing the connection (`400` for malformed
/// framing, `413` for bodies or headers past the buffering bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header or target (`400`).
    Malformed(String),
    /// Declared body or accumulated headers exceed the buffering
    /// bounds (`413`).
    TooLarge(String),
}

impl ParseError {
    /// The HTTP status this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge(_) => 413,
        }
    }

    /// The human-readable message (the response body).
    pub fn message(&self) -> &str {
        match self {
            ParseError::Malformed(m) | ParseError::TooLarge(m) => m,
        }
    }
}

fn malformed(msg: impl Into<String>) -> ParseError {
    ParseError::Malformed(msg.into())
}

/// A fully parsed request head (request line + headers), plus how many
/// buffer bytes it consumed — the connection state machine transitions
/// from `ReadingHead` to `ReadingBody` on this, then waits until
/// `head_len + content_length` bytes have arrived.
#[derive(Debug, Clone)]
pub struct ParsedHead {
    /// Request method, uppercase.
    pub method: String,
    /// Raw request target (path + query, undecoded).
    pub target: String,
    /// Whether the connection stays open after the response.
    pub keep_alive: bool,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Bytes of the head, including the blank line.
    pub head_len: usize,
}

/// Index one past the blank line ending the head, if present. Accepts
/// `\r\n\r\n`, `\n\n` and mixed endings.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut at = 0;
    while at < buf.len() {
        if buf[at] != b'\n' {
            at += 1;
            continue;
        }
        match buf.get(at + 1) {
            Some(b'\n') => return Some(at + 2),
            Some(b'\r') if buf.get(at + 2) == Some(&b'\n') => return Some(at + 3),
            _ => at += 1,
        }
    }
    None
}

/// Incrementally parses a request head from the front of `buf`.
/// `Ok(None)` means the head is not complete yet — read more bytes and
/// try again.
///
/// # Errors
///
/// [`ParseError`] on malformed request lines or headers, and on heads
/// or declared bodies past the buffering bounds (detected as early as
/// possible: an endless header stream errors before the blank line
/// ever arrives).
pub fn parse_head(buf: &[u8]) -> Result<Option<ParsedHead>, ParseError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::TooLarge("headers too large".into()));
        }
        return Ok(None);
    };
    if head_len > MAX_HEADER_BYTES {
        return Err(ParseError::TooLarge("headers too large".into()));
    }
    let text = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| malformed("request head is not UTF-8"))?;
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return Err(malformed(format!("malformed request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version: {version:?}")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    for header in lines {
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(malformed(format!("malformed header: {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| malformed(format!("bad content-length: {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(ParseError::TooLarge("body too large".into()));
                }
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    Ok(Some(ParsedHead {
        method,
        target,
        keep_alive,
        content_length,
        head_len,
    }))
}

/// Assembles the final [`Request`] once the body bytes have arrived
/// (decodes the target's path and query).
///
/// # Errors
///
/// [`ParseError::Malformed`] on undecodable targets.
pub fn build_request(head: &ParsedHead, body: Vec<u8>) -> Result<Request, ParseError> {
    let (path, query) = split_target(&head.target).map_err(|e| malformed(e.to_string()))?;
    Ok(Request {
        method: head.method.clone(),
        path,
        query,
        body,
        keep_alive: head.keep_alive,
    })
}

/// One HTTP response: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text error response with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: message.as_bytes().to_vec(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response to the exact bytes the socket carries: a
/// `Content-Length` head + body for small responses, chunked framing
/// ([`CHUNK_SIZE`] pieces) for bodies past [`CHUNK_THRESHOLD`] — the
/// large-k hit-list path. The pre-serialized response cache stores
/// precisely this rendering, so a cache hit is one buffer, one write.
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = Vec::with_capacity(response.body.len() + 160);
    if response.body.len() > CHUNK_THRESHOLD {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            response.status,
            reason(response.status),
            response.content_type,
            connection,
        )
        .expect("Vec<u8> writes are infallible");
        for chunk in response.body.chunks(CHUNK_SIZE) {
            write!(out, "{:X}\r\n", chunk.len()).expect("Vec<u8> writes are infallible");
            out.extend_from_slice(chunk);
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
    } else {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            response.status,
            reason(response.status),
            response.content_type,
            response.body.len(),
            connection,
        )
        .expect("Vec<u8> writes are infallible");
        out.extend_from_slice(&response.body);
    }
    out
}

/// Writes a response, honoring the request's keep-alive choice.
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    writer.write_all(&render_response(response, keep_alive))?;
    writer.flush()
}

/// Reads the status line + headers + body of one HTTP *response* (the
/// client half of the exchange). Returns the status code and body.
/// Both framings are understood: `Content-Length` and
/// `Transfer-Encoding: chunked` (chunks are reassembled into one
/// body).
///
/// # Errors
///
/// `InvalidData` on malformed framing; propagates I/O errors.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<u8>)> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)? == 0 {
        return Err(invalid("connection closed before response"));
    }
    let mut parts = line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| invalid(&format!("bad status code: {code:?}")))?,
        _ => return Err(invalid(&format!("malformed status line: {line:?}"))),
    };
    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)? == 0 {
            return Err(invalid("connection closed inside response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad response content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(invalid("response body too large"));
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    if chunked {
        return Ok((status, read_chunked_body(reader)?));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

/// Reassembles a chunked response body: hex-size lines, chunk bytes,
/// terminated by a zero chunk (trailers, if any, are read and
/// discarded).
fn read_chunked_body(reader: &mut BufReader<TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut line = String::new();
        if read_line_bounded(reader, &mut line)? == 0 {
            return Err(invalid("connection closed inside chunked body"));
        }
        let size_text = line.trim().split(';').next().unwrap_or("");
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| invalid(&format!("bad chunk size: {size_text:?}")))?;
        if size == 0 {
            // Trailer section: lines until the blank one.
            loop {
                let mut trailer = String::new();
                if read_line_bounded(reader, &mut trailer)? == 0 {
                    return Err(invalid("connection closed inside chunk trailers"));
                }
                if trailer.trim_end().is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(invalid("chunked body too large"));
        }
        let at = body.len();
        body.resize(at + size, 0);
        reader.read_exact(&mut body[at..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(invalid("chunk data not terminated by CRLF"));
        }
    }
}

/// Splits a request target into its decoded path and query pairs.
fn split_target(target: &str) -> io::Result<(String, Vec<(String, String)>)> {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut pairs = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        pairs.push((percent_decode(key)?, percent_decode(value)?));
    }
    Ok((percent_decode(path)?, pairs))
}

/// Percent-decodes one URL component (`%XX` escapes and `+` as space).
pub fn percent_decode(s: &str) -> io::Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut at = 0;
    while at < bytes.len() {
        match bytes[at] {
            b'%' => {
                let hex = s
                    .get(at + 1..at + 3)
                    .ok_or_else(|| invalid("truncated percent escape"))?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| invalid(&format!("bad percent escape: %{hex}")))?;
                out.push(byte);
                at += 3;
            }
            b'+' => {
                out.push(b' ');
                at += 1;
            }
            byte => {
                out.push(byte);
                at += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| invalid("decoded component is not UTF-8"))
}

/// Percent-encodes one URL component (everything but unreserved chars).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &byte in s.as_bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char);
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// `read_line` with the header-size bound applied per line.
fn read_line_bounded(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let mut limited = reader.by_ref().take(MAX_HEADER_BYTES as u64 + 1);
    let n = limited.read_line(line)?;
    if n > MAX_HEADER_BYTES {
        return Err(invalid("line too long"));
    }
    Ok(n)
}

pub(crate) fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        for s in ["plain", "two words", "kw=a&b", "ünïcode", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)).unwrap(), s);
        }
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn target_splitting_decodes_repeated_keys() {
        let (path, query) = split_target("/search?kw=thai%20curry&kw=burger&k=2").unwrap();
        assert_eq!(path, "/search");
        assert_eq!(
            query,
            vec![
                ("kw".to_string(), "thai curry".to_string()),
                ("kw".to_string(), "burger".to_string()),
                ("k".to_string(), "2".to_string()),
            ]
        );
    }

    #[test]
    fn head_parsing_is_incremental() {
        let full = b"GET /search?kw=a HTTP/1.1\r\nHost: dash\r\nContent-Length: 3\r\n\r\nxyz";
        // Every strict prefix short of the blank line parses to None.
        for cut in 0..full.len() - 4 {
            if find_head_end(&full[..cut]).is_none() {
                assert!(parse_head(&full[..cut]).unwrap().is_none(), "cut={cut}");
            }
        }
        let head = parse_head(full).unwrap().expect("complete head");
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/search?kw=a");
        assert_eq!(head.content_length, 3);
        assert!(head.keep_alive);
        assert_eq!(head.head_len, full.len() - 3);
        let request = build_request(&head, full[head.head_len..].to_vec()).unwrap();
        assert_eq!(request.path, "/search");
        assert_eq!(request.param("kw"), Some("a"));
        assert_eq!(request.body, b"xyz");
    }

    #[test]
    fn head_parsing_accepts_bare_lf_endings() {
        let head = parse_head(b"GET /stats HTTP/1.1\nHost: dash\n\n")
            .unwrap()
            .expect("complete");
        assert_eq!(head.method, "GET");
        assert_eq!(head.head_len, 32);
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        assert_eq!(parse_head(b"NOT-HTTP\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(
            parse_head(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status(),
            400
        );
        assert_eq!(
            parse_head(b"GET /x HTTP/1.1\r\nBadHeader\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        let oversized = format!("GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1u64 << 40);
        assert_eq!(parse_head(oversized.as_bytes()).unwrap_err().status(), 413);
        // A header stream that never ends errors before buffering
        // past the bound.
        let endless = vec![b'a'; MAX_HEADER_BYTES + 2];
        assert_eq!(parse_head(&endless).unwrap_err().status(), 413);
    }

    #[test]
    fn http_10_defaults_to_close() {
        let head = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!head.keep_alive);
        let head = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(head.keep_alive);
        let head = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!head.keep_alive);
    }

    #[test]
    fn small_responses_render_with_content_length() {
        let bytes = render_response(&Response::json("{}".into()), true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let closed = render_response(&Response::error(503, "busy"), false);
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("Connection: close"));
    }

    #[test]
    fn large_responses_render_chunked() {
        let body = "x".repeat(CHUNK_THRESHOLD + CHUNK_SIZE + 5);
        let bytes = render_response(&Response::json(body.clone()), true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("0\r\n\r\n"));
        // Reassembling the chunks yields the body bit for bit.
        let after_head = text.split_once("\r\n\r\n").unwrap().1;
        let mut rebuilt = String::new();
        let mut rest = after_head;
        loop {
            let (size, tail) = rest.split_once("\r\n").unwrap();
            let size = usize::from_str_radix(size, 16).unwrap();
            if size == 0 {
                break;
            }
            rebuilt.push_str(&tail[..size]);
            rest = &tail[size + 2..];
        }
        assert_eq!(rebuilt, body);
    }
}
