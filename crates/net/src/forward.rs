//! Replica→primary write forwarding: the upstream half of "any node
//! accepts `POST /update`".
//!
//! A replica's HTTP front-end hands every update body to its
//! [`Upstream`], which relays it to the current primary over one
//! persistent [`NetClient`] connection. Connect failures retry under
//! the shared jittered-backoff discipline ([`crate::backoff`]) — a
//! refused or unreachable primary is retried until the per-call
//! deadline, which is exactly the window a failover needs: when the
//! control plane promotes a replica and calls
//! [`Upstream::retarget`], in-flight forwards pick up the new target
//! on their next attempt and the write lands on the new primary.
//!
//! The non-duplication contract is inherited from [`NetClient`]: a
//! failure *after* the request started flowing is returned to the
//! caller, never silently resent — the primary may have applied an
//! update whose response was lost, and replaying it would
//! double-apply. Only provably-unsent requests (connect-phase
//! failures) retry.
//!
//! The ack relayed back carries the **primary's** publication epoch,
//! so a client that wrote through a replica can read-its-writes: wait
//! (or have the replica front-end wait — see
//! `NetServer`'s forwarding backend) until the replica's replicated
//! epoch reaches the ack's.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::backoff::{Backoff, BackoffConfig};
use crate::client::NetClient;
use crate::server::{UpdateAck, UpdateBody};

/// A persistent, retargetable connection to the cluster's current
/// primary, shared by every worker of a replica's HTTP front-end.
#[derive(Debug)]
pub struct Upstream {
    target: Mutex<SocketAddr>,
    client: Mutex<Option<NetClient>>,
    backoff: BackoffConfig,
    forwarded: AtomicU64,
    retries: AtomicU64,
}

impl Upstream {
    /// Points an upstream at the primary's HTTP address. The
    /// connection is opened lazily on the first forward.
    pub fn new(target: SocketAddr, backoff: BackoffConfig) -> Upstream {
        Upstream {
            target: Mutex::new(target),
            client: Mutex::new(None),
            backoff,
            forwarded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The current forward target (the primary's HTTP address).
    pub fn target(&self) -> SocketAddr {
        *self.target.lock()
    }

    /// Repoints the upstream — the failover half of replica
    /// promotion: the control plane (or router) calls this on every
    /// surviving replica once a new primary is serving. The stale
    /// connection is dropped; the next forward dials the new target.
    pub fn retarget(&self, addr: SocketAddr) {
        *self.target.lock() = addr;
        *self.client.lock() = None;
    }

    /// Updates successfully forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Connect-phase retries spent across all forwards.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Relays one update body to the primary and returns its ack
    /// (carrying the primary's publication epoch).
    ///
    /// # Errors
    ///
    /// Connect failures after the backoff deadline; any exchange-phase
    /// failure immediately (the update may have been applied — see the
    /// module docs).
    pub fn forward(&self, body: &UpdateBody) -> io::Result<UpdateAck> {
        let mut backoff = Backoff::start(&self.backoff);
        loop {
            let target = self.target();
            let mut client = self.client.lock();
            // A retarget since the last forward invalidates the cached
            // connection.
            if client.as_ref().is_some_and(|c| c.addr() != target) {
                *client = None;
            }
            if client.is_none() {
                // Connect phase: nothing sent, always safe to retry.
                // The per-attempt connect is single-shot (zero
                // deadline) — pacing lives in *this* loop, so a
                // retarget mid-backoff is picked up.
                match NetClient::connect_with(
                    target,
                    self.backoff.deadline(std::time::Duration::ZERO),
                ) {
                    Ok(fresh) => *client = Some(fresh),
                    Err(e) => {
                        drop(client);
                        if backoff.wait() {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            crate::obs::global_counter!("dash_repl_forward_retries_total").inc();
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
            let result = client.as_mut().expect("connected above").update(body);
            match result {
                Ok(ack) => {
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                    crate::obs::global_counter!("dash_repl_forwarded_total").inc();
                    return Ok(ack);
                }
                Err(e) => {
                    // Exchange phase: the primary may have applied the
                    // update — surface the error, never resend.
                    *client = None;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn forward_gives_up_after_the_deadline_when_nobody_listens() {
        // Bind-then-drop: the port is (very likely) refused.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let upstream = Upstream::new(
            addr,
            BackoffConfig::default()
                .base(Duration::from_millis(2))
                .cap(Duration::from_millis(8))
                .deadline(Duration::from_millis(40)),
        );
        let begin = std::time::Instant::now();
        let result = upstream.forward(&UpdateBody::Publish(Default::default()));
        assert!(result.is_err());
        assert!(
            begin.elapsed() < Duration::from_secs(2),
            "deadline bounds the retry loop"
        );
        assert!(upstream.retries() >= 1, "connect failures were retried");
        assert_eq!(upstream.forwarded(), 0);
    }

    #[test]
    fn retarget_swaps_the_destination() {
        let a = "127.0.0.1:4000".parse().unwrap();
        let b = "127.0.0.1:4001".parse().unwrap();
        let upstream = Upstream::new(a, BackoffConfig::default());
        assert_eq!(upstream.target(), a);
        upstream.retarget(b);
        assert_eq!(upstream.target(), b);
    }
}
