//! Jittered exponential backoff with a cap and a per-call deadline —
//! the retry discipline every reconnecting path in this crate shares:
//! [`NetClient`](crate::NetClient)'s transparent reconnects, the
//! replica→primary write forwarding ([`crate::forward`]) and the
//! routing front tier ([`crate::router`]).
//!
//! The delay for attempt *n* is drawn uniformly from
//! `[d/2, d]` where `d = min(base · 2ⁿ, cap)` — "equal jitter", which
//! keeps at least half the exponential spacing (so a dead peer is not
//! hammered) while decorrelating the retry instants of many clients
//! (so a recovering peer is not hit by a synchronized thundering
//! herd). The jitter source is a self-contained xorshift generator
//! seeded per [`Backoff`], not the global clock, so tests can pin it.
//!
//! A [`Backoff`] is one *call's* retry budget: [`Backoff::wait`]
//! sleeps and returns `true` while the next delay still fits inside
//! the configured deadline, and returns `false` — without sleeping —
//! once it would not. Callers loop on `wait()` and give up when it
//! says so; a call can therefore never stall past
//! `deadline` + one in-flight attempt.

use std::time::{Duration, Instant};

/// Tunables of one backoff discipline (shared by clients, forwarding
/// and routing — see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Upper bound of the first retry delay (attempt 0 draws from
    /// `[base/2, base]`).
    pub base: Duration,
    /// Cap on the exponential growth: no delay exceeds `cap`.
    pub cap: Duration,
    /// Total retry budget per call: once the elapsed time plus the
    /// next delay would exceed this, the caller is told to give up.
    pub deadline: Duration,
    /// Jitter seed. Two `Backoff`s with the same seed draw the same
    /// delays (deterministic tests); distinct seeds decorrelate peers.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            deadline: Duration::from_secs(5),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl BackoffConfig {
    /// Overrides the per-call deadline (builder style).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Overrides the first-delay bound (builder style).
    pub fn base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Overrides the delay cap (builder style).
    pub fn cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Overrides the jitter seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One call's retry state: attempt counter, jitter stream and the
/// absolute deadline, captured at [`Backoff::start`].
#[derive(Debug)]
pub struct Backoff {
    config: BackoffConfig,
    deadline: Instant,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Opens a retry budget: the deadline clock starts now.
    pub fn start(config: &BackoffConfig) -> Backoff {
        Backoff {
            config: *config,
            deadline: Instant::now() + config.deadline,
            attempt: 0,
            // xorshift must not start at 0; fold the seed with a
            // non-zero constant.
            rng: config.seed | 1,
        }
    }

    /// How many retries have been waited for so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The jittered delay for the given attempt, drawn from the
    /// *current* jitter stream position (pure in the attempt number
    /// except for the jitter draw).
    fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.cap);
        let exp_ns = exp.as_nanos() as u64;
        if exp_ns == 0 {
            return Duration::ZERO;
        }
        // Equal jitter: half fixed, half uniform.
        let half = exp_ns / 2;
        Duration::from_nanos(half + self.next_rand() % (exp_ns - half + 1))
    }

    /// Sleeps out the next delay and returns `true`, or returns
    /// `false` immediately once the delay would overrun the deadline.
    pub fn wait(&mut self) -> bool {
        let attempt = self.attempt;
        let delay = self.delay(attempt);
        if Instant::now() + delay >= self.deadline {
            return false;
        }
        std::thread::sleep(delay);
        self.attempt += 1;
        true
    }

    /// xorshift64*: tiny, seedable, plenty for jitter.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_delays(config: &BackoffConfig, n: u32) -> Vec<Duration> {
        let mut backoff = Backoff::start(config);
        (0..n).map(|at| backoff.delay(at)).collect()
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds_and_cap() {
        let config = BackoffConfig::default()
            .base(Duration::from_millis(8))
            .cap(Duration::from_millis(100));
        for seed in [1u64, 7, 42, u64::MAX] {
            let delays = raw_delays(&config.seed(seed), 8);
            for (attempt, delay) in delays.iter().enumerate() {
                let exp = config
                    .base
                    .saturating_mul(1 << attempt as u32)
                    .min(config.cap);
                assert!(
                    *delay >= exp / 2 && *delay <= exp,
                    "seed {seed} attempt {attempt}: {delay:?} outside [{:?}, {exp:?}]",
                    exp / 2
                );
            }
            // Past the cap every delay is drawn from the same window.
            assert!(delays[7] <= config.cap);
        }
    }

    #[test]
    fn same_seed_same_delays_different_seed_decorrelates() {
        let config = BackoffConfig::default().seed(99);
        assert_eq!(raw_delays(&config, 6), raw_delays(&config, 6));
        assert_ne!(
            raw_delays(&config, 6),
            raw_delays(&config.seed(100), 6),
            "distinct seeds must not retry in lockstep"
        );
    }

    #[test]
    fn deadline_bounds_the_total_wait() {
        let config = BackoffConfig::default()
            .base(Duration::from_millis(2))
            .cap(Duration::from_millis(10))
            .deadline(Duration::from_millis(40));
        let mut backoff = Backoff::start(&config);
        let begin = Instant::now();
        let mut waits = 0;
        while backoff.wait() {
            waits += 1;
            assert!(waits < 100, "deadline must terminate the loop");
        }
        assert!(waits >= 1, "a 40ms budget affords at least one retry");
        assert!(
            begin.elapsed() < Duration::from_millis(80),
            "waits stop at the deadline, not after it"
        );
        assert_eq!(backoff.attempts(), waits);
    }

    #[test]
    fn zero_deadline_means_no_retries() {
        let mut backoff = Backoff::start(&BackoffConfig::default().deadline(Duration::ZERO));
        assert!(!backoff.wait());
        assert_eq!(backoff.attempts(), 0);
    }
}
