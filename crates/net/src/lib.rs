//! # dash-net
//!
//! DASH on real sockets — the distributed-systems half the ICDCS
//! source paper's deployment story implies. Everything below this
//! crate is a single process: `dash-core` proved the engine
//! (sharded, incrementally maintained, byte-exact), `dash-serve`
//! proved the serving semantics (snapshot swaps, micro-batching,
//! precise cache invalidation). This crate puts both on the network
//! with `std::net` alone — the build environment has no registry
//! access, so HTTP, JSON and the replication protocol are small
//! hand-rolled implementations, each tested in isolation.
//!
//! ## Cluster topology
//!
//! A Dash cluster is one primary, any number of replicas, and a
//! routing front tier — every box below is a type in this crate:
//!
//! ```text
//!                         ┌────────┐
//!        clients ───────▶ │ Router │  GET /search → any healthy node
//!                         └───┬────┘  POST /update → the primary
//!              ┌──────────────┼──────────────┐
//!              ▼              ▼              ▼
//!        ┌───────────┐  ┌───────────┐  ┌───────────┐
//!        │ NetServer │  │ NetServer │  │ NetServer │   HTTP front-ends
//!        │ (primary) │  │ (replica) │  │ (replica) │
//!        └─────┬─────┘  └─────┬─────┘  └─────┬─────┘
//!              │              │ Upstream ────┘        write forwarding
//!              ▼              ▼
//!      ReplicationHub ──▶ Replica, Replica, …         delta streaming
//! ```
//!
//! * **HTTP front-end** ([`server`], [`event`]) — a readiness-driven
//!   event loop over nonblocking sockets; `GET /search` (byte-stable
//!   JSON hit lists), `POST /update` (binary [`RecordChange`] batches
//!   through the bulk delta path, or prebuilt [`IndexDelta`]s through
//!   publish), `GET /stats` (qps, cache hit rate, snapshot epoch,
//!   replication role — the router's health/primary probe).
//!   See *Front-end architecture* below.
//! * **Primary→replica replication** ([`repl`]) — the primary's
//!   [`ReplicationHub`] streams every published delta (epoch +
//!   [`IndexDelta`] + [`DeltaSignature`]) to connected replicas over a
//!   length-prefixed binary TCP stream. A joining [`Replica`] opens
//!   with a HELLO carrying its last applied epoch: if that epoch is
//!   still on the primary's bounded delta log it catches up from a
//!   RESUME + backlog tail (no snapshot transfer); only a fresh or
//!   hopelessly stale replica bootstraps from `dump_shards` bytes (no
//!   re-partitioning, no re-crawl). Epochs are cluster-wide: a replica
//!   publishes each replicated delta at the *primary's* epoch number,
//!   so [`Replica::promote`] turns it into a primary that continues
//!   the same sequence — retargeted peers resume via the promoted
//!   node's own delta log. Gap detection (a delta that is not exactly
//!   `epoch + 1`) kills the connection and repairs on reconnect, and
//!   [`ReplFaults`] injects torn frames, dropped deltas and slow links
//!   for the failover tier.
//! * **Write forwarding** ([`forward`]) — a replica's [`Upstream`] is
//!   a persistent connection to the primary with jittered-backoff
//!   reconnect ([`backoff`]); `POST /update` on a forwarding replica
//!   is relayed, acked with the **primary's** publication epoch, and
//!   the replica waits (bounded) for its own mirror of that epoch —
//!   read-your-writes through any node.
//! * **Routing front tier** ([`router`]) — a [`Router`] spreads reads
//!   round-robin across nodes it probes healthy, retries a failed read
//!   on the next healthy node within the same call, and sends writes
//!   to whichever node reports the primary role — re-discovering the
//!   primary under backoff when it dies. Connect-phase failures are
//!   retried for every request; exchange-phase failures only for
//!   idempotent reads (a write that may have been applied is never
//!   silently resent).
//! * **Socket client + load harness** ([`client`], [`loadgen`]) — a
//!   persistent-connection [`NetClient`] decoding responses back into
//!   the engine's own structs bit-exactly, and a closed-loop load
//!   generator driving the serve-layer scripts over real connections
//!   (the `net` bench suite records it to `BENCH_net.json`, including
//!   the `net/failover` recovery axis).
//!
//! ## Front-end architecture
//!
//! One event-loop thread owns every socket — listener and accepted
//! connections alike are nonblocking — and drives one state machine
//! per connection:
//!
//! ```text
//!                    ┌─────────────── event loop thread ───────────────┐
//!   accept ──▶ Idle ──▶ ReadingHead ──▶ ReadingBody ─┬─▶ Handling ─┐   │
//!              ▲ │          │ parse error  │ torn    │   (workers) │   │
//!              │ │ EOF      ▼ 400/413      ▼ close   │ cache hit   ▼   │
//!              │ └─close   Writing ◀───────────────── └──────▶ Writing │
//!              │              │ close_after                      │     │
//!              └──────────────┴──────── keep-alive ◀─────────────┘     │
//!              └──────────────────────────────────────────────────────┘
//! ```
//!
//! An idle keep-alive peer costs one slot and one buffer, not a
//! thread, so 10k open connections ride on a handful of worker
//! threads. Pure `std` has no readiness syscall, so readiness is
//! polled in two tiers: connections active in the last ~100ms are
//! swept every iteration, the cold rest via a budgeted round-robin
//! cursor — sweep cost tracks *active* connections. Requests dispatch
//! to a bounded worker queue (full queue ⇒ immediate `503`, as does
//! the connection cap); responses above ~32KB stream back chunked.
//! Repeat `GET /search` requests short-circuit through a
//! **pre-serialized response cache**: the exact rendered bytes, keyed
//! like the serve-tier result cache and invalidated by the same
//! published [`DeltaSignature`]s (via a replication tap), making a hot
//! hit one lookup plus one `write(2)` on the loop thread. The
//! `net/concurrency` bench axis records latency against 100/1k/10k
//! open connections; `net/path/http-cache-hit` prices the cached
//! round-trip.
//!
//! The acceptance bar is the same as every layer below:
//! `tests/net_equivalence.rs` proves that hit lists served over HTTP —
//! from the primary and from a replica that joined mid-stream, across
//! concurrent publications — are **byte-identical** to a fresh
//! [`DashEngine::search`] over the same fragments, and
//! `tests/net_failover.rs` holds that bar while the cluster is
//! actively failing: torn transfers, epoch gaps, a killed primary
//! under load, promotion and re-routing.
//!
//! ## Observability (`GET /metrics`, `GET /debug/slow`)
//!
//! Every front-end serves a Prometheus text exposition merging three
//! `dash-obs` registries: its own `dash_net_*` series, the backing
//! `DashServer`'s `dash_serve_*` series, and the process-global
//! registry the shard/replication/routing/ingest layers record into.
//! Histograms render as summaries (`quantile="0.5|0.9|0.99|0.999"` +
//! `_sum`/`_count`); `GET /debug/slow` returns the worst-N requests
//! with per-stage breakdowns as JSON. The series:
//!
//! | Series | Kind | Meaning |
//! |---|---|---|
//! | `dash_net_accepted_total` | counter | connections accepted (incl. cap-shed) |
//! | `dash_net_open_connections` | gauge | connections currently open |
//! | `dash_net_overflows_total` | counter | connects answered `503` by the cap |
//! | `dash_net_shed_jobs_total` | counter | requests answered `503`, queue full |
//! | `dash_net_bad_requests_total` | counter | `400`/`413` malformed requests |
//! | `dash_net_timeouts_total` | counter | `408` mid-request stalls |
//! | `dash_net_{head,body,handle,write,request}_ns` | histogram | per-stage and end-to-end request latency |
//! | `dash_net_queue_wait_ns` | histogram | worker-queue wait (inside `handle`) |
//! | `dash_net_queue_depth` | gauge | jobs queued or running on the pool |
//! | `dash_net_{hot,cold}_visits_total` | counter | readiness sweep visits by tier |
//! | `dash_net_response_cache_*`, `dash_net_cached_responses` | gauge | response-cache counters, mirrored at scrape |
//! | `dash_serve_searches_total`, `dash_serve_batches_total`, … | counter | serving stack (see `dash-serve`) |
//! | `dash_serve_{search,batch_window,swap,drain}_ns`, `dash_serve_batch_size` | histogram | serving stage latencies / batch shape |
//! | `dash_shard_{search,search_many,merge}_ns`, `dash_shard_candidates_total` | histogram/counter | sharded search internals |
//! | `dash_repl_{bootstraps,catchups,deltas_applied,forwarded,forward_retries}_total` | counter | replication + write forwarding |
//! | `dash_repl_epoch`, `dash_repl_epoch_lag` | gauge | replica epoch; gap seen at the last delta frame |
//! | `dash_router_{reads,read_retries,writes,write_failovers}_total` | counter | routing front tier |
//! | `dash_ingest_*` | counter | distributed ingest (see `dash-core::ingest`) |
//!
//! ## Quickstart
//!
//! ```
//! use std::net::TcpListener;
//! use std::sync::Arc;
//! use dash_net::{NetClient, NetConfig, NetServer};
//! use dash_serve::{DashServer, ServeConfig};
//! use dash_core::{DashConfig, SearchRequest};
//! use dash_webapp::fooddb;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! let server = Arc::new(DashServer::build(
//!     &app, &db, &DashConfig::default(), ServeConfig::default())?);
//! let net = NetServer::serve_primary(
//!     Arc::clone(&server), db, TcpListener::bind("127.0.0.1:0")?, NetConfig::default())?;
//! let mut client = NetClient::connect(net.addr())?;
//! let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
//! // Socket-served results are the in-process results, bit for bit.
//! assert_eq!(client.search(&request)?, server.search(&request));
//! # Ok(())
//! # }
//! ```
//!
//! [`DashEngine::search`]: dash_core::DashEngine::search
//! [`RecordChange`]: dash_core::RecordChange
//! [`IndexDelta`]: dash_core::IndexDelta
//! [`DeltaSignature`]: dash_core::DeltaSignature

pub mod backoff;
pub mod client;
pub mod event;
pub mod forward;
pub mod http;
pub mod json;
pub mod loadgen;
mod obs;
pub mod repl;
mod response_cache;
pub mod router;
pub mod server;

pub use backoff::{Backoff, BackoffConfig};
pub use client::NetClient;
pub use event::NetCounters;
pub use forward::Upstream;
pub use loadgen::NetLoadReport;
pub use repl::{ReplFaults, Replica, ReplicaConfig, ReplicationHub};
pub use response_cache::ResponseCacheStats;
pub use router::{Router, RouterConfig};
pub use server::{Backend, NetChange, NetConfig, NetServer, UpdateAck, UpdateBody};
