//! # dash-net
//!
//! DASH on real sockets — the distributed-systems half the ICDCS
//! source paper's deployment story implies. Everything below this
//! crate is a single process: `dash-core` proved the engine
//! (sharded, incrementally maintained, byte-exact), `dash-serve`
//! proved the serving semantics (snapshot swaps, micro-batching,
//! precise cache invalidation). This crate puts both on the network
//! with `std::net` alone — the build environment has no registry
//! access, so HTTP, JSON and the replication protocol are small
//! hand-rolled implementations, each tested in isolation.
//!
//! Three pieces:
//!
//! * **HTTP front-end** ([`server`]) — a `TcpListener` accept loop
//!   feeding a fixed worker-thread pool; `GET /search` (byte-stable
//!   JSON hit lists), `POST /update` (binary [`RecordChange`] batches
//!   through the bulk delta path, or prebuilt [`IndexDelta`]s through
//!   publish), `GET /stats` (qps, cache hit rate, snapshot epoch).
//! * **Primary→replica replication** ([`repl`]) — the primary streams
//!   every published delta (epoch + [`IndexDelta`] +
//!   [`DeltaSignature`]) to connected replicas over a length-prefixed
//!   binary TCP stream; a joining replica bootstraps from
//!   `dump_shards` bytes on the same socket (no re-partitioning, no
//!   re-crawl), then tails the delta stream. Disconnected replicas
//!   keep serving their last published snapshot and re-sync on
//!   reconnect.
//! * **Socket client + load harness** ([`client`], [`loadgen`]) — a
//!   persistent-connection [`NetClient`] decoding responses back into
//!   the engine's own structs bit-exactly, and a closed-loop load
//!   generator driving the serve-layer scripts over real connections
//!   (the `net` bench suite records it to `BENCH_net.json`).
//!
//! The acceptance bar is the same as every layer below:
//! `tests/net_equivalence.rs` proves that hit lists served over HTTP —
//! from the primary and from a replica that joined mid-stream, across
//! concurrent publications — are **byte-identical** to a fresh
//! [`DashEngine::search`] over the same fragments.
//!
//! ## Quickstart
//!
//! ```
//! use std::net::TcpListener;
//! use std::sync::Arc;
//! use dash_net::{NetClient, NetConfig, NetServer};
//! use dash_serve::{DashServer, ServeConfig};
//! use dash_core::{DashConfig, SearchRequest};
//! use dash_webapp::fooddb;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! let server = Arc::new(DashServer::build(
//!     &app, &db, &DashConfig::default(), ServeConfig::default())?);
//! let net = NetServer::serve_primary(
//!     Arc::clone(&server), db, TcpListener::bind("127.0.0.1:0")?, NetConfig::default())?;
//! let mut client = NetClient::connect(net.addr())?;
//! let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
//! // Socket-served results are the in-process results, bit for bit.
//! assert_eq!(client.search(&request)?, server.search(&request));
//! # Ok(())
//! # }
//! ```
//!
//! [`DashEngine::search`]: dash_core::DashEngine::search
//! [`RecordChange`]: dash_core::RecordChange
//! [`IndexDelta`]: dash_core::IndexDelta
//! [`DeltaSignature`]: dash_core::DeltaSignature

pub mod client;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod repl;
pub mod server;

pub use client::NetClient;
pub use loadgen::NetLoadReport;
pub use repl::{Replica, ReplicaConfig, ReplicationHub};
pub use server::{Backend, NetChange, NetConfig, NetServer, UpdateAck, UpdateBody};
