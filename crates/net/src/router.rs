//! The routing front tier: one [`Router`] in front of N Dash nodes,
//! spreading reads, steering writes at the primary, and surviving the
//! death of any node — the piece that turns a primary + replicas into
//! a *cluster*.
//!
//! The router is deliberately address-only: it holds no index state,
//! never inspects response bodies beyond `/stats`, and makes no
//! equivalence claims of its own — every node it fronts already
//! serves byte-identical hit lists (the net-equivalence tier), so
//! spreading reads across them is free of result skew by
//! construction.
//!
//! * **Reads** round-robin over the healthy nodes (primary included —
//!   it serves reads too). A node that fails mid-read is marked down
//!   and the read retries on the next healthy node; the caller sees
//!   one successful response or one error after every node refused.
//! * **Health** comes from a background probe thread hitting each
//!   node's `GET /stats` on a short interval: a node is healthy when
//!   it answers with serving state (an `epoch` field), and its `role`
//!   field says who believes itself primary. Probing is also run
//!   inline whenever the router runs out of healthy candidates, so a
//!   cold start or a mass failure never waits a full probe period.
//! * **Writes** go to the node reporting `role == "primary"`. When
//!   the primary dies, connect-phase failures trigger re-discovery
//!   under the shared backoff discipline ([`crate::backoff`]) — the
//!   probe sweep finds the **promoted** replica (it reports
//!   `"primary"` once [`Replica::promote`] ran) and the write lands
//!   there. Exchange-phase failures surface to the caller instead of
//!   being resent: the old primary may have applied the write before
//!   dying, and a blind replay could double-apply (the caller knows
//!   whether its write is idempotent; the router must not guess).
//!
//! [`Replica::promote`]: crate::repl::Replica::promote

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dash_core::{IndexDelta, SearchHit, SearchRequest};
use parking_lot::Mutex;

use crate::backoff::{Backoff, BackoffConfig};
use crate::client::NetClient;
use crate::json;
use crate::server::{UpdateAck, UpdateBody};

/// Tunables of the front tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Background health-probe period.
    pub probe_interval: Duration,
    /// Retry budget of a write that must wait out a failover (reads
    /// never wait — they move to the next healthy node immediately).
    pub backoff: BackoffConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            probe_interval: Duration::from_millis(50),
            backoff: BackoffConfig::default(),
        }
    }
}

/// Single-attempt connects: pacing lives in the router (reads hop to
/// the next node, writes run their own backoff loop), so the per-node
/// client must fail fast, not retry internally.
fn one_shot() -> BackoffConfig {
    BackoffConfig::default().deadline(Duration::ZERO)
}

/// One fronted node: its address, last probed health/role, and a
/// cached persistent connection.
#[derive(Debug)]
struct Node {
    addr: SocketAddr,
    healthy: AtomicBool,
    primary: AtomicBool,
    client: Mutex<Option<NetClient>>,
}

impl Node {
    fn new(addr: SocketAddr) -> Node {
        Node {
            addr,
            healthy: AtomicBool::new(false),
            primary: AtomicBool::new(false),
            client: Mutex::new(None),
        }
    }

    /// Runs one request over the cached connection (dialing if
    /// needed); any failure drops the connection so the next call
    /// starts fresh.
    fn with_client<T>(&self, run: impl FnOnce(&mut NetClient) -> io::Result<T>) -> io::Result<T> {
        let mut client = self.client.lock();
        if client.is_none() {
            *client = Some(NetClient::connect_with(self.addr, one_shot())?);
        }
        match run(client.as_mut().expect("connected above")) {
            Ok(value) => Ok(value),
            Err(e) => {
                *client = None;
                Err(e)
            }
        }
    }

    /// One `GET /stats` probe: refreshes the health flag (has serving
    /// state) and the role flag (believes itself primary).
    fn probe(&self) -> bool {
        let doc = self
            .with_client(|c| c.stats_json())
            .ok()
            .and_then(|text| json::parse(&text).ok());
        match doc {
            Some(doc) => {
                let has_state = doc.get("epoch").is_some();
                let primary = doc.get("role").and_then(|r| r.as_str()) == Some("primary");
                self.primary.store(primary && has_state, Ordering::SeqCst);
                self.healthy.store(has_state, Ordering::SeqCst);
                has_state
            }
            None => {
                self.mark_down();
                false
            }
        }
    }

    fn mark_down(&self) {
        self.healthy.store(false, Ordering::SeqCst);
        self.primary.store(false, Ordering::SeqCst);
    }
}

#[derive(Debug)]
struct RouterInner {
    nodes: Vec<Node>,
    cursor: AtomicUsize,
    reads: AtomicU64,
    read_retries: AtomicU64,
    writes: AtomicU64,
    write_failovers: AtomicU64,
    /// Index of the node that acked the most recent successful write
    /// (`usize::MAX` before any write lands) — a later ack from a
    /// *different* node is a failover the writer lived through.
    last_write: AtomicUsize,
    stop: AtomicBool,
}

impl RouterInner {
    fn probe_all(&self) {
        for node in &self.nodes {
            node.probe();
        }
    }

    fn current_primary_index(&self) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.healthy.load(Ordering::SeqCst) && n.primary.load(Ordering::SeqCst))
    }

    fn current_primary(&self) -> Option<&Node> {
        self.current_primary_index().map(|at| &self.nodes[at])
    }
}

/// The front tier: spreads reads over healthy nodes, routes writes to
/// whichever node currently reports itself primary. See the module
/// docs for the failover semantics.
#[derive(Debug)]
pub struct Router {
    inner: Arc<RouterInner>,
    config: RouterConfig,
    probe: Option<JoinHandle<()>>,
}

impl Router {
    /// Fronts the given nodes (each a `NetServer` HTTP address —
    /// primary and replicas alike; roles are discovered, not
    /// declared). Runs one synchronous probe sweep, then keeps health
    /// fresh from a background thread.
    pub fn new(nodes: Vec<SocketAddr>, config: RouterConfig) -> Router {
        let inner = Arc::new(RouterInner {
            nodes: nodes.into_iter().map(Node::new).collect(),
            cursor: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_failovers: AtomicU64::new(0),
            last_write: AtomicUsize::new(usize::MAX),
            stop: AtomicBool::new(false),
        });
        inner.probe_all();
        let probe = {
            let inner = Arc::clone(&inner);
            let interval = config.probe_interval;
            std::thread::Builder::new()
                .name("dash-router-probe".to_string())
                .spawn(move || {
                    while !inner.stop.load(Ordering::Relaxed) {
                        inner.probe_all();
                        let deadline = Instant::now() + interval;
                        while Instant::now() < deadline && !inner.stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                })
                .expect("spawn router probe thread")
        };
        Router {
            inner,
            config,
            probe: Some(probe),
        }
    }

    /// `GET /search` through the front tier, decoded to the engine's
    /// own structs. Retries a failed node transparently; see
    /// [`Router::search_json`].
    ///
    /// # Errors
    ///
    /// Only after every node failed.
    pub fn search(&self, request: &SearchRequest) -> io::Result<Vec<SearchHit>> {
        let body = self.search_json(request)?;
        json::hits_from_json(&body)
    }

    /// `GET /search` through the front tier: round-robins over the
    /// healthy nodes, marking a failing node down and retrying on the
    /// next. When no healthy candidate remains it re-probes every
    /// node inline (a dead cluster must fail fast, a recovering one
    /// must be found without waiting a probe period).
    ///
    /// # Errors
    ///
    /// Only after every node failed.
    pub fn search_json(&self, request: &SearchRequest) -> io::Result<String> {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        crate::obs::global_counter!("dash_router_reads_total").inc();
        let nodes = &self.inner.nodes;
        let start = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        let mut last_err = None;
        // Pass 0 trusts the probed health flags; pass 1 is the
        // desperate sweep — re-probe and retry every node.
        for desperate in [false, true] {
            for at in 0..nodes.len() {
                let node = &nodes[(start + at) % nodes.len()];
                if desperate {
                    if !node.probe() {
                        continue;
                    }
                } else if !node.healthy.load(Ordering::SeqCst) {
                    continue;
                }
                match node.with_client(|c| c.search_json(request)) {
                    Ok(body) => return Ok(body),
                    Err(e) => {
                        node.mark_down();
                        self.inner.read_retries.fetch_add(1, Ordering::Relaxed);
                        crate::obs::global_counter!("dash_router_read_retries_total").inc();
                        last_err = Some(e);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no healthy node to read from")))
    }

    /// `POST /update` routed to the current primary. A missing or
    /// unreachable primary (connect phase — nothing sent) triggers
    /// re-discovery under the write backoff budget: the probe sweep
    /// finds a freshly promoted replica and the write fails over to
    /// it. An exchange-phase failure surfaces immediately — the write
    /// may have been applied, and only the caller knows whether a
    /// resend is safe (see the module docs).
    ///
    /// # Errors
    ///
    /// No primary within the backoff deadline; exchange-phase
    /// failures.
    pub fn update(&self, body: &UpdateBody) -> io::Result<UpdateAck> {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        crate::obs::global_counter!("dash_router_writes_total").inc();
        let mut backoff = Backoff::start(&self.config.backoff);
        // Whether this call ever observed the primary missing. The
        // probe thread may be the one that discovers the replacement
        // while we sit in `backoff.wait()` — or even between two calls,
        // so fast that no call ever sees the gap. Both are failovers to
        // the *writer*: count when the acked node differs from the one
        // that acked the previous write, or when this call had to wait
        // out a rediscovery.
        let mut lost_primary = false;
        loop {
            let Some(at) = self.inner.current_primary_index() else {
                lost_primary = true;
                self.inner.probe_all();
                if self.inner.current_primary_index().is_some() {
                    continue;
                }
                if backoff.wait() {
                    continue;
                }
                return Err(io::Error::other("no primary discovered before deadline"));
            };
            let node = &self.inner.nodes[at];
            let mut client = node.client.lock();
            if client.is_none() {
                // Connect phase: nothing sent — a failure here is safe
                // to retry, possibly against a different primary after
                // the next probe sweep.
                match NetClient::connect_with(node.addr, one_shot()) {
                    Ok(fresh) => *client = Some(fresh),
                    Err(e) => {
                        drop(client);
                        node.mark_down();
                        if backoff.wait() {
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
            let result = client.as_mut().expect("connected above").update(body);
            return match result {
                Ok(ack) => {
                    let prev = self.inner.last_write.swap(at, Ordering::SeqCst);
                    if lost_primary || (prev != usize::MAX && prev != at) {
                        self.inner.write_failovers.fetch_add(1, Ordering::Relaxed);
                        crate::obs::global_counter!("dash_router_write_failovers_total").inc();
                    }
                    Ok(ack)
                }
                Err(e) => {
                    // Exchange phase: may have been applied — drop the
                    // connection, mark the node for re-probing, and
                    // let the caller decide about resending.
                    *client = None;
                    drop(client);
                    node.mark_down();
                    Err(e)
                }
            };
        }
    }

    /// [`Router::update`] with a prebuilt delta.
    ///
    /// # Errors
    ///
    /// Same as [`Router::update`].
    pub fn publish(&self, delta: &IndexDelta) -> io::Result<UpdateAck> {
        self.update(&UpdateBody::Publish(delta.clone()))
    }

    /// The node currently believed primary, if any.
    pub fn primary(&self) -> Option<SocketAddr> {
        self.inner.current_primary().map(|n| n.addr)
    }

    /// How many nodes currently probe healthy.
    pub fn healthy_count(&self) -> usize {
        self.inner
            .nodes
            .iter()
            .filter(|n| n.healthy.load(Ordering::SeqCst))
            .count()
    }

    /// Reads served (attempted) through the front tier.
    pub fn reads(&self) -> u64 {
        self.inner.reads.load(Ordering::Relaxed)
    }

    /// Read attempts that failed over to another node.
    pub fn read_retries(&self) -> u64 {
        self.inner.read_retries.load(Ordering::Relaxed)
    }

    /// Writes routed (attempted) through the front tier.
    pub fn writes(&self) -> u64 {
        self.inner.writes.load(Ordering::Relaxed)
    }

    /// Writes that lived through a primary failover: acked by a
    /// different node than the previous write, or acked only after
    /// this call waited out a primary re-discovery.
    pub fn write_failovers(&self) -> u64 {
        self.inner.write_failovers.load(Ordering::Relaxed)
    }

    /// Runs one synchronous probe sweep (tests use this to skip the
    /// probe period).
    pub fn probe_now(&self) {
        self.inner.probe_all();
    }

    /// Blocks until some node reports itself primary (returning its
    /// address) or the timeout elapses.
    pub fn wait_primary(&self, timeout: Duration) -> Option<SocketAddr> {
        let deadline = Instant::now() + timeout;
        loop {
            self.inner.probe_all();
            if let Some(primary) = self.primary() {
                return Some(primary);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Blocks until at least `n` nodes probe healthy (true) or the
    /// timeout elapses (false).
    pub fn wait_healthy(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.inner.probe_all();
            if self.healthy_count() >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(probe) = self.probe.take() {
            let _ = probe.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_or_dead_node_set_reads_fail_fast() {
        // Bind-then-drop: nothing listens on this address.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let router = Router::new(
            vec![addr],
            RouterConfig {
                probe_interval: Duration::from_secs(60),
                backoff: BackoffConfig::default().deadline(Duration::from_millis(20)),
            },
        );
        assert_eq!(router.healthy_count(), 0);
        assert!(router.search(&SearchRequest::new(&["x"])).is_err());
        assert!(router.publish(&IndexDelta::default()).is_err());
        assert!(router.primary().is_none());
    }
}
