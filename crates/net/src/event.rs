//! The readiness-driven event loop behind [`NetServer`](crate::NetServer).
//!
//! One thread owns every socket. The listener and all accepted
//! connections are nonblocking; each connection is a small state
//! machine
//!
//! ```text
//! Idle → ReadingHead → ReadingBody → Handling → Writing → Idle
//!                  └──── parse error ────→ Writing(4xx) → close
//! ```
//!
//! driven by whatever bytes happen to be readable when the loop visits
//! it. An idle keep-alive peer therefore costs one slot and one read
//! buffer — not a parked thread — which is what lets the front-end
//! hold 10k open connections on a fixed worker pool.
//!
//! Pure `std` has no readiness syscall (no epoll/kqueue, and the
//! no-new-dependencies rule forbids mio), so readiness is *polled*:
//! every loop iteration sweeps the **hot** set — connections with
//! activity in the last `HOT_WINDOW` (~100ms) plus anything mid-write — with
//! one nonblocking read/write each, while the **cold** remainder is
//! visited by a budgeted round-robin cursor (`COLD_BUDGET_BUSY` slots
//! per iteration under load, `COLD_BUDGET_IDLE` when nothing is hot).
//! The sweep cost thus tracks the *active* connection count; 10k idle
//! peers add cursor visits, not per-request latency. When an iteration
//! makes no progress the loop sleeps on the workers' completion
//! channel with a backoff-bounded tick, so a finished search wakes it
//! immediately and shutdown is never more than one tick away (which is
//! why `Drop` needs no self-connect wake-up).
//!
//! Route handling never runs on the loop thread: completed requests
//! are dispatched to a worker pool over a bounded queue (a full queue
//! answers `503` immediately — load sheds at the door instead of
//! stalling the accept path, and so does the connection cap, with its
//! own counter). The one exception is the pre-serialized response
//! cache (`response_cache.rs`): a hit is already rendered bytes, so
//! the loop writes them in place — a lookup plus one `write(2)`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dash_obs::{render_merged, Counter, Gauge, Registry, SlowEntry, TraceId};

use crate::http::{self, ParseError, Request, Response};
use crate::json;
use crate::obs::NetObs;
use crate::response_cache::ResponseCache;
use crate::server::{parse_search, route, Backend, NetConfig};

/// How long after its last byte of I/O a connection stays in the
/// per-iteration hot sweep before demotion to the cold cursor.
const HOT_WINDOW: Duration = Duration::from_millis(100);
/// Read budget for a request once its first byte has arrived — a peer
/// stalled mid-request is answered `408` and closed instead of holding
/// its slot forever. Doubles as the write-stall budget.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);
/// Cold-cursor visits per iteration while hot connections need the
/// loop's attention.
const COLD_BUDGET_BUSY: usize = 64;
/// Cold-cursor visits per iteration when the loop is otherwise idle —
/// nothing competes for it, so discovery latency wins over sweep cost.
const COLD_BUDGET_IDLE: usize = 2048;
/// Accepts drained per iteration — bounds time away from live
/// connections when a connect storm arrives.
const ACCEPT_BURST: usize = 256;
/// Read chunk per nonblocking `read(2)`.
const READ_CHUNK: usize = 16 * 1024;
/// Idle sleep tick bounds (exponential backoff between them). The cap
/// is also the worst-case shutdown-notice latency.
const IDLE_TICK_US: u64 = 500;
const IDLE_TICK_CAP_US: u64 = 5_000;

/// Front-end counters, registry-backed: the same handles serve
/// [`NetCounters`] snapshots and the `dash_net_*` series of
/// `GET /metrics` — the two views cannot drift.
#[derive(Debug)]
pub(crate) struct Counters {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) open: Arc<Gauge>,
    pub(crate) overflows: Arc<Counter>,
    pub(crate) shed_jobs: Arc<Counter>,
    pub(crate) bad_requests: Arc<Counter>,
    pub(crate) timeouts: Arc<Counter>,
}

impl Counters {
    pub(crate) fn new(registry: &Registry) -> Counters {
        Counters {
            accepted: registry.counter("dash_net_accepted_total"),
            open: registry.gauge("dash_net_open_connections"),
            overflows: registry.counter("dash_net_overflows_total"),
            shed_jobs: registry.counter("dash_net_shed_jobs_total"),
            bad_requests: registry.counter("dash_net_bad_requests_total"),
            timeouts: registry.counter("dash_net_timeouts_total"),
        }
    }

    pub(crate) fn snapshot(&self) -> NetCounters {
        NetCounters {
            accepted: self.accepted.get(),
            open: self.open.get(),
            overflows: self.overflows.get(),
            shed_jobs: self.shed_jobs.get(),
            bad_requests: self.bad_requests.get(),
            timeouts: self.timeouts.get(),
        }
    }
}

/// A snapshot of the front-end's connection-handling counters (see
/// [`NetServer::counters`](crate::NetServer::counters)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connections accepted (including ones shed by the cap).
    pub accepted: u64,
    /// Connections currently open.
    pub open: u64,
    /// Connections answered `503` and closed because the connection
    /// cap was reached.
    pub overflows: u64,
    /// Requests answered `503` because the worker queue was full.
    pub shed_jobs: u64,
    /// Requests answered `400`/`413` for malformed or oversized input.
    pub bad_requests: u64,
    /// Requests answered `408` after stalling mid-request.
    pub timeouts: u64,
}

/// Bytes queued for a connection: owned (rendered for this request) or
/// shared out of the response cache (a hit never copies the body).
#[derive(Debug)]
pub(crate) enum Outgoing {
    Own(Vec<u8>),
    Shared(Arc<Vec<u8>>),
}

impl Outgoing {
    fn as_slice(&self) -> &[u8] {
        match self {
            Outgoing::Own(bytes) => bytes,
            Outgoing::Shared(bytes) => bytes,
        }
    }
}

/// A request dispatched to the worker pool, tagged with its
/// connection's slot and generation (the generation guards against a
/// slot being closed and re-used while the worker runs).
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) slot: usize,
    pub(crate) gen: u64,
    pub(crate) request: Request,
    /// When the loop queued the job — workers record the queue wait.
    pub(crate) enqueued: Instant,
}

/// A worker's finished response, routed back to the loop.
#[derive(Debug)]
pub(crate) struct Done {
    pub(crate) slot: usize,
    pub(crate) gen: u64,
    pub(crate) out: Outgoing,
    pub(crate) close_after: bool,
}

/// Connection states (see the module diagram). `Idle` is "between
/// requests, buffer empty"; reads are paused in `Handling` and
/// `Writing` — built-in backpressure, a peer cannot pipeline faster
/// than it is answered.
#[derive(Debug)]
enum ConnState {
    Idle,
    ReadingHead,
    ReadingBody {
        head: http::ParsedHead,
    },
    Handling,
    Writing {
        out: Outgoing,
        pos: usize,
        close_after: bool,
    },
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Unconsumed request bytes (pipelined requests queue here).
    buf: Vec<u8>,
    state: ConnState,
    /// Generation guard for `Done` routing.
    gen: u64,
    /// Last byte of I/O — the hot/cold demotion clock.
    last_activity: Instant,
    /// When the in-flight request's first byte arrived (408 clock).
    request_started: Option<Instant>,
    /// In the per-iteration hot sweep (vs the budgeted cold cursor).
    hot: bool,
    /// Peer sent EOF; serve what is buffered, then close.
    read_closed: bool,
    /// Stage marks of the in-flight request (`None` with tracing
    /// disabled — the zero-overhead path).
    trace: Option<ReqTrace>,
}

/// Stage timestamps of one in-flight request, taken from the event
/// loop's per-iteration `Instant` — tracing adds no clock reads. The
/// marks turn into the `dash_net_{head,body,handle,write}_ns`
/// histograms and a [`SlowEntry`] when the response finishes flushing.
#[derive(Debug)]
struct ReqTrace {
    id: TraceId,
    /// `METHOD /path` once the request line parsed; empty for requests
    /// rejected before that.
    route: String,
    started: Instant,
    head_done: Option<Instant>,
    body_done: Option<Instant>,
    handle_done: Option<Instant>,
}

struct EventLoop {
    backend: Backend,
    counters: Arc<Counters>,
    cache: Arc<ResponseCache>,
    obs: Arc<NetObs>,
    jobs: SyncSender<Job>,
    max_connections: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    cursor: usize,
    next_gen: u64,
    /// Rendered once: the `503` the cap answers overflow connects with.
    overflow_bytes: Vec<u8>,
}

/// What the state machine decided during a short borrow of the
/// connection — executed after the borrow ends.
enum Step {
    /// Nothing further until more bytes arrive.
    Wait,
    /// Keep running the state machine.
    Again,
    /// Close the connection (clean or torn — nothing to answer).
    Close,
    /// Answer a parse failure and close.
    Reject(ParseError),
    /// A complete request: hand it off.
    Request(http::ParsedHead, Vec<u8>),
}

/// Runs the loop until `stop` is set. Takes ownership of the listener
/// and the worker channels; dropping `jobs` on return is what winds
/// the worker pool down.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    listener: TcpListener,
    backend: Backend,
    config: &NetConfig,
    stop: &AtomicBool,
    counters: Arc<Counters>,
    cache: Arc<ResponseCache>,
    obs: Arc<NetObs>,
    jobs: SyncSender<Job>,
    done: Receiver<Done>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut lp = EventLoop {
        backend,
        counters,
        cache,
        obs,
        jobs,
        max_connections: config.max_connections.max(1),
        conns: Vec::new(),
        free: Vec::new(),
        open: 0,
        cursor: 0,
        next_gen: 0,
        overflow_bytes: http::render_response(
            &Response::error(503, "connection limit reached"),
            false,
        ),
    };
    let mut idle_streak: u32 = 0;
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut progress = false;
        while let Ok(msg) = done.try_recv() {
            lp.complete(msg, now);
            progress = true;
        }
        progress |= lp.accept_burst(&listener, now);
        let (hot_progress, hot_active) = lp.sweep_hot(now);
        progress |= hot_progress;
        progress |= lp.sweep_cold(now, hot_active > 0);
        if progress {
            idle_streak = 0;
            continue;
        }
        idle_streak = idle_streak.saturating_add(1);
        if hot_active > 0 {
            // A recently-active peer's next request is expected any
            // moment: stay on the CPU (ceding it — on a loaded box the
            // scheduler hands the slice to a worker) instead of paying
            // a timer wakeup on the critical path.
            std::thread::yield_now();
            continue;
        }
        let tick =
            Duration::from_micros((IDLE_TICK_US << idle_streak.min(4)).min(IDLE_TICK_CAP_US));
        match done.recv_timeout(tick) {
            Ok(msg) => {
                lp.complete(msg, Instant::now());
                idle_streak = 0;
            }
            Err(RecvTimeoutError::Timeout) => {}
            // All workers gone (only possible mid-teardown): keep
            // ticking so the stop flag is still honored.
            Err(RecvTimeoutError::Disconnected) => std::thread::sleep(tick),
        }
    }
}

impl EventLoop {
    /// Drains the accept queue (bounded per iteration). Connections
    /// past the cap get a best-effort `503` and are closed — never a
    /// silent stall.
    fn accept_burst(&mut self, listener: &TcpListener, now: Instant) -> bool {
        let mut progress = false;
        for _ in 0..ACCEPT_BURST {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            progress = true;
            self.counters.accepted.inc();
            if self.open >= self.max_connections {
                self.counters.overflows.inc();
                let mut stream = stream;
                let _ = stream.write(&self.overflow_bytes);
                continue; // dropped: closed
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            self.next_gen += 1;
            let conn = Conn {
                stream,
                buf: Vec::new(),
                state: ConnState::Idle,
                gen: self.next_gen,
                last_activity: now,
                request_started: None,
                hot: true,
                read_closed: false,
                trace: None,
            };
            match self.free.pop() {
                Some(slot) => self.conns[slot] = Some(conn),
                None => self.conns.push(Some(conn)),
            }
            self.open += 1;
            self.counters.open.add(1);
        }
        progress
    }

    /// Sweeps every hot connection (demoting quiet ones) and returns
    /// `(progress, still-hot-and-pollable count)` — `Handling` slots
    /// stay hot for a prompt write once their worker finishes, but
    /// they need no polling, so they don't keep the loop spinning.
    fn sweep_hot(&mut self, now: Instant) -> (bool, usize) {
        let mut progress = false;
        let mut active = 0usize;
        for slot in 0..self.conns.len() {
            let pollable = match self.conns[slot].as_mut() {
                None => continue,
                Some(conn) => {
                    if !conn.hot {
                        continue;
                    }
                    let pollable = !matches!(conn.state, ConnState::Handling);
                    if pollable && now.duration_since(conn.last_activity) > HOT_WINDOW {
                        conn.hot = false;
                        continue;
                    }
                    pollable
                }
            };
            if pollable {
                active += 1;
                progress |= self.pump(slot, now);
            }
        }
        if active > 0 {
            self.obs.hot_visits.add(active as u64);
        }
        (progress, active)
    }

    /// Visits a budgeted batch of cold connections round-robin. Any
    /// that shows activity is promoted back to hot by `pump`.
    fn sweep_cold(&mut self, now: Instant, busy: bool) -> bool {
        let len = self.conns.len();
        if len == 0 {
            return false;
        }
        let budget = if busy {
            COLD_BUDGET_BUSY
        } else {
            COLD_BUDGET_IDLE
        };
        let mut progress = false;
        let mut seen = 0usize;
        let mut visited = 0usize;
        while seen < len && visited < budget {
            self.cursor = (self.cursor + 1) % len;
            seen += 1;
            let slot = self.cursor;
            if self.conns[slot].as_ref().is_some_and(|c| !c.hot) {
                visited += 1;
                progress |= self.pump(slot, now);
            }
        }
        if visited > 0 {
            self.obs.cold_visits.add(visited as u64);
        }
        progress
    }

    /// One readiness visit: nonblocking read + state-machine advance +
    /// write flush + stall check. Returns whether any I/O happened.
    fn pump(&mut self, slot: usize, now: Instant) -> bool {
        let mut progress = false;
        let readable = matches!(
            self.conns[slot].as_ref().map(|c| &c.state),
            Some(ConnState::Idle | ConnState::ReadingHead | ConnState::ReadingBody { .. })
        );
        if readable {
            match self.read_some(slot, now) {
                Ok(got) => progress |= got,
                Err(()) => {
                    self.close(slot);
                    return true;
                }
            }
            self.advance(slot, now);
        }
        if matches!(
            self.conns[slot].as_ref().map(|c| &c.state),
            Some(ConnState::Writing { .. })
        ) {
            progress |= self.flush(slot, now);
        }
        // Stall check: `None` = healthy, `Some(mid_write)` = stalled.
        let stalled = self.conns[slot].as_ref().and_then(|conn| match conn.state {
            ConnState::ReadingHead | ConnState::ReadingBody { .. } => conn
                .request_started
                .is_some_and(|t| now.duration_since(t) > REQUEST_TIMEOUT)
                .then_some(false),
            ConnState::Writing { .. } => {
                (now.duration_since(conn.last_activity) > REQUEST_TIMEOUT).then_some(true)
            }
            _ => None,
        });
        match stalled {
            Some(true) => {
                // The peer stopped draining its response: nothing left
                // to tell it.
                self.close(slot);
                true
            }
            Some(false) => {
                self.counters.timeouts.inc();
                let bytes =
                    http::render_response(&Response::error(408, "request timed out"), false);
                self.start_writing(slot, Outgoing::Own(bytes), true, now);
                true
            }
            None => progress,
        }
    }

    /// Drains readable bytes into the connection buffer. `Err(())`
    /// means the connection is dead (reset); EOF just marks
    /// `read_closed` so buffered requests still get served.
    fn read_some(&mut self, slot: usize, now: Instant) -> Result<bool, ()> {
        let conn = self.conns[slot].as_mut().expect("pumped slot is live");
        let mut tmp = [0u8; READ_CHUNK];
        let mut any = false;
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&tmp[..n]);
                    conn.last_activity = now;
                    conn.hot = true;
                    any = true;
                    if n < tmp.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(any)
    }

    /// Runs the parsing state machine as far as the buffered bytes
    /// allow: Idle → ReadingHead → ReadingBody → dispatch.
    fn advance(&mut self, slot: usize, now: Instant) {
        loop {
            let step = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                match &conn.state {
                    ConnState::Idle => {
                        if conn.buf.is_empty() {
                            if conn.read_closed {
                                Step::Close // clean close between requests
                            } else {
                                Step::Wait
                            }
                        } else {
                            conn.state = ConnState::ReadingHead;
                            conn.request_started = Some(now);
                            // Stage marks reuse the sweep's `now` — a
                            // disabled registry costs one bool load.
                            conn.trace = self.obs.registry.is_enabled().then(|| ReqTrace {
                                id: TraceId::next(),
                                route: String::new(),
                                started: now,
                                head_done: None,
                                body_done: None,
                                handle_done: None,
                            });
                            Step::Again
                        }
                    }
                    ConnState::ReadingHead => match http::parse_head(&conn.buf) {
                        Ok(Some(head)) => {
                            conn.state = ConnState::ReadingBody { head };
                            if let Some(trace) = conn.trace.as_mut() {
                                trace.head_done = Some(now);
                            }
                            Step::Again
                        }
                        // Connection closed mid-headers stays silent,
                        // per HTTP convention — there is no request to
                        // answer.
                        Ok(None) if conn.read_closed => Step::Close,
                        Ok(None) => Step::Wait,
                        Err(e) => Step::Reject(e),
                    },
                    ConnState::ReadingBody { head } => {
                        let total = head.head_len + head.content_length;
                        if conn.buf.len() < total {
                            if conn.read_closed {
                                Step::Close // torn mid-body: nothing to answer
                            } else {
                                Step::Wait
                            }
                        } else {
                            let head = head.clone();
                            let body = conn.buf[head.head_len..total].to_vec();
                            conn.buf.drain(..total);
                            conn.request_started = None;
                            Step::Request(head, body)
                        }
                    }
                    // Backpressured states: nothing to advance.
                    ConnState::Handling | ConnState::Writing { .. } => Step::Wait,
                }
            };
            match step {
                Step::Wait => return,
                Step::Again => {}
                Step::Close => {
                    self.close(slot);
                    return;
                }
                Step::Reject(e) => {
                    self.reject(slot, &e, now);
                    return;
                }
                Step::Request(head, body) => {
                    self.dispatch(slot, &head, body, now);
                    return;
                }
            }
        }
    }

    /// Answers a malformed or oversized request with its parse error
    /// (the connection closes after — framing is unrecoverable).
    fn reject(&mut self, slot: usize, error: &ParseError, now: Instant) {
        self.counters.bad_requests.inc();
        let response = Response::error(error.status(), error.message());
        let bytes = http::render_response(&response, false);
        self.start_writing(slot, Outgoing::Own(bytes), true, now);
    }

    /// Hands a complete request off: the response-cache fast path in
    /// place (a hit is one buffer, one write), everything else to the
    /// worker pool — with an immediate `503` if the queue is full.
    fn dispatch(&mut self, slot: usize, head: &http::ParsedHead, body: Vec<u8>, now: Instant) {
        let request = match http::build_request(head, body) {
            Ok(request) => request,
            Err(e) => {
                self.reject(slot, &e, now);
                return;
            }
        };
        let (gen, read_closed) = {
            let conn = self.conns[slot].as_mut().expect("dispatching live slot");
            if let Some(trace) = conn.trace.as_mut() {
                trace.body_done = Some(now);
                trace.route = format!("{} {}", request.method, request.path);
            }
            (conn.gen, conn.read_closed)
        };
        let close_after = !request.keep_alive || read_closed;
        if !close_after {
            if let Some(bytes) = cached_search_response(&request, &self.backend, &self.cache) {
                self.start_writing(slot, Outgoing::Shared(bytes), false, now);
                return;
            }
        }
        match self.jobs.try_send(Job {
            slot,
            gen,
            request,
            enqueued: now,
        }) {
            Ok(()) => {
                self.obs.queue_depth.add(1);
                let conn = self.conns[slot].as_mut().expect("slot still live");
                conn.state = ConnState::Handling;
            }
            Err(TrySendError::Full(_)) => {
                self.counters.shed_jobs.inc();
                let response = Response::error(503, "server overloaded");
                let bytes = http::render_response(&response, !close_after);
                self.start_writing(slot, Outgoing::Own(bytes), close_after, now);
            }
            Err(TrySendError::Disconnected(_)) => self.close(slot),
        }
    }

    /// Routes a worker's finished response to its connection — dropped
    /// if the slot was closed or re-used meanwhile (generation guard).
    fn complete(&mut self, done: Done, now: Instant) {
        let live = self
            .conns
            .get(done.slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.gen == done.gen && matches!(c.state, ConnState::Handling));
        if live {
            self.start_writing(done.slot, done.out, done.close_after, now);
        }
    }

    fn start_writing(&mut self, slot: usize, out: Outgoing, close_after: bool, now: Instant) {
        {
            let conn = self.conns[slot].as_mut().expect("writing to live slot");
            conn.state = ConnState::Writing {
                out,
                pos: 0,
                close_after,
            };
            conn.hot = true;
            conn.last_activity = now;
            if let Some(trace) = conn.trace.as_mut() {
                // First response byte queued: handling is over. Cache
                // hits and rejects reach here without a dispatch, so
                // their handle stage is the (near-zero) gap since the
                // last mark.
                trace.handle_done.get_or_insert(now);
            }
        }
        self.flush(slot, now);
    }

    /// Closes out the in-flight request's trace: records the stage
    /// histograms and offers the request to the slow log.
    fn finish_trace(&mut self, slot: usize, now: Instant) {
        let Some(trace) = self.conns[slot].as_mut().and_then(|c| c.trace.take()) else {
            return;
        };
        // A stage that never ran (e.g. reject before the body) borrows
        // the previous mark: its duration is zero, nothing is skipped.
        let head = trace.head_done.unwrap_or(trace.started);
        let body = trace.body_done.unwrap_or(head);
        let handle = trace.handle_done.unwrap_or(body);
        let stage =
            |from: Instant, to: Instant| to.saturating_duration_since(from).as_nanos() as u64;
        let head_ns = stage(trace.started, head);
        let body_ns = stage(head, body);
        let handle_ns = stage(body, handle);
        let write_ns = stage(handle, now);
        let total_ns = stage(trace.started, now);
        self.obs.head_ns.record(head_ns);
        self.obs.body_ns.record(body_ns);
        self.obs.handle_ns.record(handle_ns);
        self.obs.write_ns.record(write_ns);
        self.obs.request_ns.record(total_ns);
        self.obs.slow.record(SlowEntry {
            trace: trace.id,
            route: trace.route,
            total_ns,
            stages: vec![
                ("head", head_ns),
                ("body", body_ns),
                ("handle", handle_ns),
                ("write", write_ns),
            ],
        });
    }

    /// Pushes queued response bytes out. On completion the connection
    /// returns to `Idle` (or closes), then immediately re-enters the
    /// parser — pipelined requests already buffered get served without
    /// waiting for another readiness visit.
    fn flush(&mut self, slot: usize, now: Instant) -> bool {
        enum Flushed {
            Dead,
            Blocked(bool),
            Complete(bool),
        }
        let outcome = {
            let conn = self.conns[slot].as_mut().expect("flushing live slot");
            let ConnState::Writing {
                out,
                pos,
                close_after,
            } = &mut conn.state
            else {
                return false;
            };
            let close_after = *close_after;
            let mut wrote = false;
            loop {
                let bytes = out.as_slice();
                if *pos >= bytes.len() {
                    conn.last_activity = now;
                    break Flushed::Complete(close_after);
                }
                match conn.stream.write(&bytes[*pos..]) {
                    Ok(0) => break Flushed::Dead,
                    Ok(n) => {
                        *pos += n;
                        wrote = true;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        break Flushed::Blocked(wrote)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Flushed::Dead,
                }
            }
        };
        match outcome {
            Flushed::Dead => {
                self.close(slot);
                true
            }
            Flushed::Blocked(wrote) => wrote,
            Flushed::Complete(close_after) => {
                self.finish_trace(slot, now);
                if close_after {
                    self.close(slot);
                } else {
                    let conn = self.conns[slot].as_mut().expect("slot still live");
                    conn.state = ConnState::Idle;
                    self.advance(slot, now);
                }
                true
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if self.conns[slot].take().is_some() {
            self.free.push(slot);
            self.open -= 1;
            self.counters.open.sub(1);
        }
    }
}

/// The response-cache fast path is limited to keep-alive `GET /search`
/// requests — the cached rendering carries keep-alive framing.
fn cacheable(request: &Request) -> bool {
    request.keep_alive && request.method == "GET" && request.path == "/search"
}

/// A cache hit for this request, if it is cacheable and present.
/// Counts the hit on the serving stack so `/stats` reports every
/// served search, wherever its bytes came from.
pub(crate) fn cached_search_response(
    request: &Request,
    backend: &Backend,
    cache: &ResponseCache,
) -> Option<Arc<Vec<u8>>> {
    if !cacheable(request) || !cache.enabled() {
        return None;
    }
    let server = backend.cache_server()?;
    let search = parse_search(request).ok()?;
    if search.k == 0 || search.keywords.is_empty() {
        return None;
    }
    let bytes = cache.get(&server, &search)?;
    server.count_cache_hit();
    Some(bytes)
}

/// Renders the merged `GET /metrics` exposition: this front-end's
/// `dash_net_*` registry (with the response cache's counters mirrored
/// in as gauges at scrape time), the backing server's `dash_serve_*`
/// registry when one is live, and the process-global registry
/// (`dash_shard_*` / `dash_repl_*` / `dash_router_*` /
/// `dash_ingest_*`) — one scrape covers every layer.
fn metrics_text(obs: &NetObs, backend: &Backend, cache: &ResponseCache) -> String {
    let stats = cache.stats();
    let registry = &obs.registry;
    registry
        .gauge("dash_net_response_cache_hits")
        .set(stats.hits);
    registry
        .gauge("dash_net_response_cache_misses")
        .set(stats.misses);
    registry
        .gauge("dash_net_response_cache_insertions")
        .set(stats.insertions);
    registry
        .gauge("dash_net_response_cache_rejected_stale")
        .set(stats.rejected_stale);
    registry
        .gauge("dash_net_response_cache_rejected_oversize")
        .set(stats.rejected_oversize);
    registry
        .gauge("dash_net_response_cache_invalidated")
        .set(stats.invalidated);
    registry
        .gauge("dash_net_response_cache_evicted")
        .set(stats.evicted);
    registry
        .gauge("dash_net_response_cache_resyncs")
        .set(stats.resyncs);
    registry
        .gauge("dash_net_cached_responses")
        .set(cache.len() as u64);
    match backend.cache_server() {
        Some(server) => {
            server.refresh_scrape_gauges();
            render_merged(&[registry, server.registry(), Registry::global()])
        }
        None => render_merged(&[registry, Registry::global()]),
    }
}

/// A worker's whole job: answer one request. Cacheable searches run
/// against an explicit snapshot so the rendered bytes can be stored
/// with their invalidation dependencies (candidate groups + keywords)
/// under the epoch read *before* the search — any concurrent
/// publication makes the insert stale and it is dropped, never cached
/// wrong.
pub(crate) fn respond(
    request: &Request,
    backend: &Backend,
    cache: &ResponseCache,
    obs: &NetObs,
) -> (Outgoing, bool) {
    // Diagnostic stall injection (tests of the slow log / stage
    // attribution) — inert unless the front-end opted in.
    if obs.allow_debug_sleep {
        if let Some(us) = request
            .param("debug_sleep_us")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_micros(us.min(1_000_000)));
        }
    }
    if request.method == "GET" && request.path == "/metrics" {
        let response = Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: metrics_text(obs, backend, cache).into_bytes(),
        };
        return (
            Outgoing::Own(http::render_response(&response, request.keep_alive)),
            !request.keep_alive,
        );
    }
    if request.method == "GET" && request.path == "/debug/slow" {
        let response = Response::json(obs.slow.render_json());
        return (
            Outgoing::Own(http::render_response(&response, request.keep_alive)),
            !request.keep_alive,
        );
    }
    if cacheable(request) && cache.enabled() {
        if let Some(server) = backend.cache_server() {
            if let Ok(search) = parse_search(request) {
                if search.k > 0 && !search.keywords.is_empty() {
                    if let Some(bytes) = cache.get(&server, &search) {
                        server.count_cache_hit();
                        return (Outgoing::Shared(bytes), false);
                    }
                    // Epoch before snapshot before search: if nothing
                    // publishes in between, the snapshot *is* that
                    // epoch's and the groups are its dependencies; if
                    // something does, the insert is rejected as stale.
                    let epoch = cache.insert_epoch(&server);
                    let snapshot = server.snapshot();
                    let hits = server.search(&search);
                    let response = Response::json(json::hits_to_json(&hits));
                    let bytes = Arc::new(http::render_response(&response, true));
                    let groups = snapshot.engine.keyword_groups(&search.keywords);
                    cache.insert(&server, &search, Arc::clone(&bytes), groups, epoch);
                    return (Outgoing::Shared(bytes), false);
                }
            }
        }
    }
    let response = route(request, backend);
    (
        Outgoing::Own(http::render_response(&response, request.keep_alive)),
        !request.keep_alive,
    )
}
