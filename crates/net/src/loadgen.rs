//! Closed-loop load generation over **real sockets**: the same
//! deterministic per-client scripts as [`dash_serve::loadgen`], driven
//! through [`NetClient`] connections against a running
//! [`NetServer`](crate::NetServer) — so the measured p50/p99/qps
//! include HTTP framing, JSON
//! (de)serialization and kernel socket hops, not just the in-process
//! serving path. The `net` bench suite records the results to
//! `BENCH_net.json`; comparing them against `BENCH_serve.json` prices
//! the socket layer itself.
//!
//! Determinism carries over unchanged: scripts are a pure function of
//! the [`LoadProfile`], updates come from client 0 only (through
//! `POST /update` publish bodies), so the final server state is
//! deterministic and post-run equivalence checks remain possible.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dash_core::Fragment;
use dash_serve::loadgen::{percentile, scripts, LoadOp, LoadProfile};

use crate::client::NetClient;

/// What a socket load run measured.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// Searches completed (across all clients).
    pub searches: u64,
    /// Deltas published through `POST /update`.
    pub updates: u64,
    /// Total hits decoded (a cheap checksum that the run did work).
    pub total_hits: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Median end-to-end (socket-to-socket) search latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile search latency, ns.
    pub p99_ns: u64,
    /// Sustained search throughput over the run.
    pub qps: f64,
    /// Requests that errored (any I/O or decode failure; 0 in a
    /// healthy run).
    pub errors: u64,
    /// Per-stage latency table rendered from the server's
    /// `GET /metrics` exposition after the run
    /// (`dash_obs::expo::stage_table`) — socket, serving and shard
    /// stages in one view.
    pub stage_table: String,
}

impl NetLoadReport {
    /// Renders the report as one human-readable line.
    pub fn summary(&self) -> String {
        format!(
            "{} searches + {} updates over sockets in {:.2?}: {:.0} qps, p50 {:.1}µs, \
             p99 {:.1}µs, {} errors",
            self.searches,
            self.updates,
            self.elapsed,
            self.qps,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.errors,
        )
    }
}

/// Runs the profile's scripts against a served address, one
/// [`NetClient`] (one persistent connection) per closed-loop client.
///
/// # Panics
///
/// Panics if a client cannot establish its initial connection — load
/// generation against a dead server is a harness bug, not a data
/// point.
pub fn run(
    addr: SocketAddr,
    vocab: &[String],
    update_pool: &[Fragment],
    profile: &LoadProfile,
) -> NetLoadReport {
    let scripts = scripts(profile, vocab, update_pool);
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .into_iter()
            .map(|script| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("load client connects");
                    let mut latencies = Vec::with_capacity(script.len());
                    let mut updates = 0u64;
                    let mut total_hits = 0u64;
                    let mut errors = 0u64;
                    for op in script {
                        match op {
                            LoadOp::Search(request) => {
                                let begin = Instant::now();
                                match client.search(&request) {
                                    Ok(hits) => {
                                        latencies.push(begin.elapsed().as_nanos() as u64);
                                        total_hits += hits.len() as u64;
                                    }
                                    Err(_) => errors += 1,
                                }
                            }
                            LoadOp::Update(delta) => match client.publish(&delta) {
                                Ok(_) => updates += 1,
                                Err(_) => errors += 1,
                            },
                        }
                    }
                    (latencies, updates, total_hits, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut updates, mut total_hits, mut errors) = (0u64, 0u64, 0u64);
    for (lat, up, hits, errs) in per_client {
        latencies.extend(lat);
        updates += up;
        total_hits += hits;
        errors += errs;
    }
    latencies.sort_unstable();
    let searches = latencies.len() as u64;
    // One extra request prices nothing: scrape the merged exposition
    // so the report can say *where* the latency lives.
    let stage_table = NetClient::connect(addr)
        .and_then(|mut client| client.metrics_text())
        .map(|text| dash_obs::expo::stage_table(&dash_obs::expo::parse_summaries(&text)))
        .unwrap_or_else(|e| format!("(metrics scrape failed: {e})\n"));
    NetLoadReport {
        searches,
        updates,
        total_hits,
        elapsed,
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
        qps: searches as f64 / elapsed.as_secs_f64().max(1e-9),
        errors,
        stage_table,
    }
}
