//! JSON encoding of the serving surface — hand-rolled, **byte-stable**
//! and **value-exact**.
//!
//! Byte-stable: object fields are written in one fixed order by one
//! writer, so two servers holding identical results emit identical
//! bytes (the `net_equivalence` tier compares exactly that).
//! Value-exact: `f64` scores are written with Rust's shortest-roundtrip
//! `Display` and parsed back with `str::parse::<f64>`, which
//! reconstructs the identical bits — a hit list surviving
//! encode→decode compares equal (`SearchHit: PartialEq`, floats and
//! all) to the list the engine produced.
//!
//! [`FragmentId`] values travel as small tagged objects (`null`,
//! `{"i":…}` int, `{"c":…}` decimal cents, `{"s":…}` string,
//! `{"d":[y,m,d]}` date) so every [`Value`] variant round-trips
//! without type guessing.

use std::io;

use dash_core::{FragmentId, SearchHit};
use dash_relation::{Date, Decimal, Value};

use crate::http::invalid;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Encodes a hit list as a JSON array, fields in declaration order.
pub fn hits_to_json(hits: &[SearchHit]) -> String {
    let mut out = String::with_capacity(64 * hits.len() + 2);
    out.push('[');
    for (at, hit) in hits.iter().enumerate() {
        if at > 0 {
            out.push(',');
        }
        out.push_str("{\"url\":");
        write_json_str(&mut out, &hit.url);
        out.push_str(",\"query_string\":");
        write_json_str(&mut out, &hit.query_string);
        out.push_str(&format!(",\"score\":{}", hit.score));
        out.push_str(&format!(",\"size\":{}", hit.size));
        out.push_str(",\"fragment_ids\":[");
        for (fat, id) in hit.fragment_ids.iter().enumerate() {
            if fat > 0 {
                out.push(',');
            }
            out.push('[');
            for (vat, value) in id.values().iter().enumerate() {
                if vat > 0 {
                    out.push(',');
                }
                write_json_value(&mut out, value);
            }
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

fn write_json_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Int(i) => out.push_str(&format!("{{\"i\":{i}}}")),
        Value::Decimal(d) => out.push_str(&format!("{{\"c\":{}}}", d.cents())),
        Value::Str(s) => {
            out.push_str("{\"s\":");
            write_json_str(out, s);
            out.push('}');
        }
        Value::Date(d) => out.push_str(&format!(
            "{{\"d\":[{},{},{}]}}",
            d.year(),
            d.month(),
            d.day()
        )),
    }
}

/// Writes a JSON string literal with full escaping.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw token so integer and
/// float consumers both parse losslessly (`18446744073709551615` would
/// be mangled by an eager `f64` conversion; a score parses bit-exactly
/// from the token `Display` wrote).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw unparsed token.
    Num(String),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u64` (integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64` (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// `InvalidData` with a position on any syntax error.
pub fn parse(text: &str) -> io::Result<Json> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(invalid(&format!("trailing bytes at {}", parser.at)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn value(&mut self) -> io::Result<Json> {
        match self.bytes.get(self.at) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(invalid(&format!(
                "unexpected {other:?} at byte {}",
                self.at
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> io::Result<Json> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(invalid(&format!("bad literal at byte {}", self.at)))
        }
    }

    fn number(&mut self) -> io::Result<Json> {
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| invalid("non-UTF-8 number"))?;
        // Validate now so consumers can unwrap.
        raw.parse::<f64>()
            .map_err(|_| invalid(&format!("bad number token {raw:?}")))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> io::Result<String> {
        debug_assert_eq!(self.bytes[self.at], b'"');
        self.at += 1;
        let mut out = String::new();
        loop {
            let start = self.at;
            while self
                .bytes
                .get(self.at)
                .is_some_and(|&b| b != b'"' && b != b'\\')
            {
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| invalid("non-UTF-8 string"))?,
            );
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| invalid("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| invalid("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| invalid("\\u escape is not a scalar"))?;
                            out.push(c);
                            self.at += 4;
                        }
                        other => return Err(invalid(&format!("bad escape {other:?}"))),
                    }
                    self.at += 1;
                }
                _ => return Err(invalid("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> io::Result<Json> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(invalid(&format!("bad array separator {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> io::Result<Json> {
        self.at += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.at) != Some(&b'"') {
                return Err(invalid("object key must be a string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.at) != Some(&b':') {
                return Err(invalid("missing ':' after object key"));
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(invalid(&format!("bad object separator {other:?}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// SearchHit decoding
// ---------------------------------------------------------------------

/// Decodes a hit list written by [`hits_to_json`].
///
/// # Errors
///
/// `InvalidData` on syntax errors or missing fields.
pub fn hits_from_json(text: &str) -> io::Result<Vec<SearchHit>> {
    let doc = parse(text)?;
    let items = doc.as_arr().ok_or_else(|| invalid("expected an array"))?;
    items.iter().map(hit_from_json).collect()
}

fn hit_from_json(item: &Json) -> io::Result<SearchHit> {
    let field = |key: &str| {
        item.get(key)
            .ok_or_else(|| invalid(&format!("missing {key}")))
    };
    let fragment_ids = field("fragment_ids")?
        .as_arr()
        .ok_or_else(|| invalid("fragment_ids must be an array"))?
        .iter()
        .map(|id| {
            let values = id
                .as_arr()
                .ok_or_else(|| invalid("fragment id must be an array"))?
                .iter()
                .map(value_from_json)
                .collect::<io::Result<Vec<Value>>>()?;
            Ok(FragmentId::new(values))
        })
        .collect::<io::Result<Vec<FragmentId>>>()?;
    Ok(SearchHit {
        url: field("url")?
            .as_str()
            .ok_or_else(|| invalid("url must be a string"))?
            .to_string(),
        query_string: field("query_string")?
            .as_str()
            .ok_or_else(|| invalid("query_string must be a string"))?
            .to_string(),
        score: field("score")?
            .as_f64()
            .ok_or_else(|| invalid("score must be a number"))?,
        size: field("size")?
            .as_u64()
            .ok_or_else(|| invalid("size must be an integer"))?,
        fragment_ids,
    })
}

fn value_from_json(value: &Json) -> io::Result<Value> {
    if *value == Json::Null {
        return Ok(Value::Null);
    }
    if let Some(i) = value.get("i") {
        return Ok(Value::Int(
            i.as_i64().ok_or_else(|| invalid("bad int value"))?,
        ));
    }
    if let Some(c) = value.get("c") {
        return Ok(Value::Decimal(Decimal::from_cents(
            c.as_i64().ok_or_else(|| invalid("bad decimal value"))?,
        )));
    }
    if let Some(s) = value.get("s") {
        return Ok(Value::Str(
            s.as_str()
                .ok_or_else(|| invalid("bad string value"))?
                .to_string(),
        ));
    }
    if let Some(d) = value.get("d") {
        let parts = d.as_arr().ok_or_else(|| invalid("bad date value"))?;
        let [y, m, day] = parts else {
            return Err(invalid("date needs [y,m,d]"));
        };
        return Ok(Value::Date(Date::new(
            y.as_u64().ok_or_else(|| invalid("bad year"))? as u16,
            m.as_u64().ok_or_else(|| invalid("bad month"))? as u8,
            day.as_u64().ok_or_else(|| invalid("bad day"))? as u8,
        )));
    }
    Err(invalid("unknown value encoding"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hits() -> Vec<SearchHit> {
        vec![
            SearchHit {
                url: "http://food.com/Search?c=Thai&b=10".to_string(),
                query_string: "c=Thai&b=10".to_string(),
                score: 0.123_456_789_012_345_68,
                size: 42,
                fragment_ids: vec![
                    FragmentId::new(vec![Value::str("Thai"), Value::Int(10)]),
                    FragmentId::new(vec![
                        Value::Null,
                        Value::Decimal(Decimal::from_cents(-250)),
                        Value::Date(Date::new(2012, 6, 18)),
                    ]),
                ],
            },
            SearchHit {
                url: "quote\"back\\slash\nnewline".to_string(),
                query_string: String::new(),
                score: 1.0 / 3.0,
                size: 0,
                fragment_ids: Vec::new(),
            },
        ]
    }

    #[test]
    fn hits_roundtrip_bit_exactly() {
        let hits = sample_hits();
        let json = hits_to_json(&hits);
        let back = hits_from_json(&json).unwrap();
        assert_eq!(back, hits);
        // Byte-stable: re-encoding the decoded list is identical.
        assert_eq!(hits_to_json(&back), json);
    }

    #[test]
    fn empty_list_is_the_empty_array() {
        assert_eq!(hits_to_json(&[]), "[]");
        assert_eq!(hits_from_json("[]").unwrap(), Vec::<SearchHit>::new());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "[", "{\"a\"}", "[1,]", "nul", "\"open", "[] []"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let doc = parse("[9007199254740993,-3]").unwrap();
        let items = doc.as_arr().unwrap();
        // 2^53 + 1 survives (an eager f64 parse would round it).
        assert_eq!(items[0].as_u64(), Some(9007199254740993));
        assert_eq!(items[1].as_i64(), Some(-3));
    }
}
