//! Primary→replica delta replication over TCP.
//!
//! The unit a distributed DASH deployment ships between nodes is
//! exactly the unit PRs 3–4 built the write path around: one
//! [`IndexDelta`] per publication, stamped with a monotonic epoch and
//! its [`DeltaSignature`]. The protocol is two frame kinds on one
//! length-prefixed binary stream (the `dash-core` wire codec):
//!
//! * `SNAPSHOT` — sent once per connection, first: the primary's live
//!   epoch plus its [`ShardedEngine::dump_shards`] bytes (the exact
//!   per-shard partition, so the replica rebuilds **without
//!   re-partitioning** — its shard layout, and therefore its search
//!   byte-stream, is the primary's);
//! * `DELTA` — one per publication after the snapshot: epoch, delta,
//!   signature. The tap is registered under the primary's writer lock
//!   ([`DashServer::replication_feed`]), so the first delta's epoch is
//!   always `snapshot_epoch + 1` — no publication is lost or
//!   duplicated however the join interleaves with concurrent writers.
//!
//! The replica applies each delta through its *own* [`DashServer`]
//! publish path (shadow apply → atomic snapshot swap → precise cache
//! invalidation), so a replica search can never observe a
//! half-applied delta: a torn TCP stream dies in the framing layer
//! before anything touches the engine. On disconnect the replica keeps
//! serving its last published snapshot (stale-but-consistent) and
//! re-syncs from a fresh snapshot frame when the primary comes back.
//!
//! [`ShardedEngine::dump_shards`]: dash_core::ShardedEngine::dump_shards
//! [`IndexDelta`]: dash_core::IndexDelta
//! [`DeltaSignature`]: dash_core::DeltaSignature

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dash_core::{persist, wire, SearchHit, SearchRequest, ShardedEngine};
use dash_mapreduce::WorkflowStats;
use dash_serve::{DashServer, PublishEvent, ServeConfig};
use dash_webapp::WebApplication;
use parking_lot::{Mutex, RwLock};

use crate::http::invalid;

/// Frame tags of the replication stream.
const FRAME_SNAPSHOT: u8 = 1;
const FRAME_DELTA: u8 = 2;

/// Frames larger than this are protocol errors (a fooddb-scale dump is
/// kilobytes; even a million-fragment dump stays far below).
const MAX_FRAME_BYTES: u64 = 1 << 32;

/// How long a streamer waits on the publication channel between
/// stop-flag checks.
const TAP_POLL: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Writes one `tag + u64 length + payload` frame.
fn write_frame<W: Write>(writer: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&[tag])?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame, tolerating read timeouts (the poll loop re-enters)
/// but never tearing: a timeout mid-frame resumes exactly where the
/// partial read stopped. Returns `None` when `stop` was raised.
fn read_frame(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 9];
    if !read_full(stream, &mut header, stop)? {
        return Ok(None);
    }
    let tag = header[0];
    let len = u64::from_le_bytes(header[1..9].try_into().expect("8 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(invalid("replication frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(stream, &mut payload, stop)? {
        return Ok(None);
    }
    Ok(Some((tag, payload)))
}

/// `read_exact` that survives read timeouts without losing the bytes
/// already read. `Ok(false)` means `stop` was raised mid-read.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "replication peer closed",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn snapshot_payload(epoch: u64, shards: &[Vec<dash_core::Fragment>]) -> Vec<u8> {
    let mut payload = epoch.to_le_bytes().to_vec();
    persist::write_sharded_fragments(&mut payload, shards).expect("Vec<u8> writes are infallible");
    payload
}

fn delta_payload(event: &PublishEvent) -> Vec<u8> {
    let mut payload = event.epoch.to_le_bytes().to_vec();
    wire::write_delta(&mut payload, &event.delta).expect("Vec<u8> writes are infallible");
    wire::write_signature(&mut payload, &event.signature).expect("Vec<u8> writes are infallible");
    payload
}

fn read_epoch(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 8 {
        return Err(invalid("frame payload missing epoch"));
    }
    let epoch = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((epoch, &payload[8..]))
}

// ---------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------

/// The primary's replication listener: accepts replica connections and
/// streams each one a snapshot + every later publication. One streamer
/// thread per replica; a slow or dead replica never delays the
/// publish path (the tap channel is unbounded and the send never
/// blocks) or the other replicas.
#[derive(Debug)]
pub struct ReplicationHub {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Write halves of the live replica sockets, for failure
    /// injection and shutdown.
    peers: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

impl ReplicationHub {
    /// Starts streaming on an already-bound listener (bind to port 0
    /// for an ephemeral port; [`ReplicationHub::addr`] reports it).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn start(server: Arc<DashServer>, listener: TcpListener) -> io::Result<ReplicationHub> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let peers: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let peers = Arc::clone(&peers);
            std::thread::Builder::new()
                .name("dash-repl-accept".to_string())
                .spawn(move || {
                    while let Ok((stream, _)) = listener.accept() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let server = Arc::clone(&server);
                        let stop = Arc::clone(&stop);
                        let peers_for_thread = Arc::clone(&peers);
                        if let Ok(handle) = stream.try_clone() {
                            peers.lock().push(handle);
                        }
                        let _ = std::thread::Builder::new()
                            .name("dash-repl-stream".to_string())
                            .spawn(move || {
                                let _ =
                                    stream_to_replica(&server, stream, &stop, &peers_for_thread);
                            });
                    }
                })
                .expect("spawn replication accept thread")
        };
        Ok(ReplicationHub {
            addr,
            stop,
            peers,
            accept: Some(accept),
        })
    }

    /// The address replicas connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Severs every live replica connection (they see EOF immediately)
    /// without stopping the listener — replicas reconnect and re-sync.
    /// This is the failure-injection hook the replica failure tests
    /// use; operationally it is a rolling "resync everyone".
    pub fn disconnect_all(&self) {
        for peer in self.peers.lock().drain(..) {
            let _ = peer.shutdown(Shutdown::Both);
        }
    }

    /// Live replica connection count.
    pub fn replica_count(&self) -> usize {
        self.peers.lock().len()
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.disconnect_all();
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// One replica's streamer: snapshot first, then every publication.
fn stream_to_replica(
    server: &DashServer,
    mut stream: TcpStream,
    stop: &AtomicBool,
    peers: &Mutex<Vec<TcpStream>>,
) -> io::Result<()> {
    // Captured before streaming: the peer (replica-side) address is
    // the connection's unique identity — every accepted socket shares
    // the listener's *local* address — and it becomes unreadable once
    // the socket dies.
    let peer = stream.peer_addr().ok();
    let result = (|| {
        // Registered atomically: every event the feed will deliver has
        // epoch > snapshot.epoch, gap-free.
        let feed = server.replication_feed();
        let payload = snapshot_payload(feed.snapshot.epoch, &feed.snapshot.engine.dump_shards());
        write_frame(&mut stream, FRAME_SNAPSHOT, &payload)?;
        loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match feed.events.recv_timeout(TAP_POLL) {
                Ok(event) => write_frame(&mut stream, FRAME_DELTA, &delta_payload(&event))?,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    })();
    // Deregister exactly this connection's handle, whatever ended the
    // stream (handles whose peer address is unreadable are dead too —
    // drop them along the way).
    if peer.is_some() {
        peers
            .lock()
            .retain(|p| p.peer_addr().ok().is_some_and(|a| Some(a) != peer));
    }
    result
}

// ---------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------

/// Tunables of a replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Serving configuration of the replica's local [`DashServer`]
    /// (cache, batching — shard count is dictated by the primary's
    /// dump and ignored here).
    pub serve: ServeConfig,
    /// Delay between reconnect attempts after a lost primary.
    pub retry: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            serve: ServeConfig::default(),
            retry: Duration::from_millis(200),
        }
    }
}

/// Replica-side counters and state.
#[derive(Debug)]
struct ReplicaInner {
    app: WebApplication,
    config: ReplicaConfig,
    /// The local serving stack over the mirrored engine. `None` until
    /// the first bootstrap completes; *replaced* (never mutated in
    /// place) on re-bootstrap, so readers always hold a fully
    /// consistent server.
    server: RwLock<Option<Arc<DashServer>>>,
    /// Primary epoch of the last applied snapshot or delta.
    epoch: AtomicU64,
    connected: AtomicBool,
    bootstraps: AtomicU64,
    deltas_applied: AtomicU64,
    stop: AtomicBool,
}

/// A read replica: connects to a [`ReplicationHub`], bootstraps from
/// the snapshot frame, tails the delta stream, and serves reads from
/// its own [`DashServer`] — identical bytes to the primary at every
/// epoch. Reconnects forever (with [`ReplicaConfig::retry`] backoff)
/// until dropped; while disconnected it keeps serving the last
/// published snapshot.
#[derive(Debug)]
pub struct Replica {
    inner: Arc<ReplicaInner>,
    sync: Option<JoinHandle<()>>,
}

impl Replica {
    /// Connects to a primary's replication address and starts the sync
    /// loop. `app` is the web application the fragments came from
    /// (application analysis artifacts ship out of band — they are
    /// static per deployment, unlike the index).
    pub fn connect(addr: SocketAddr, app: WebApplication, config: ReplicaConfig) -> Replica {
        let inner = Arc::new(ReplicaInner {
            app,
            config,
            server: RwLock::new(None),
            epoch: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            bootstraps: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let sync = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dash-replica-sync".to_string())
                .spawn(move || sync_loop(addr, &inner))
                .expect("spawn replica sync thread")
        };
        Replica {
            inner,
            sync: Some(sync),
        }
    }

    /// The local serving stack, once bootstrapped. The returned server
    /// stays valid (and serves its last state) even if the replica
    /// re-bootstraps behind it.
    pub fn server(&self) -> Option<Arc<DashServer>> {
        self.inner.server.read().clone()
    }

    /// Serves a search from the replica's current state. Empty before
    /// the first bootstrap completes (use [`Replica::wait_ready`]).
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        match self.server() {
            Some(server) => server.search(request),
            None => Vec::new(),
        }
    }

    /// Primary epoch of the replica's current state.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// Whether the replication stream is currently up.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.load(Ordering::SeqCst)
    }

    /// How many times the replica bootstrapped (1 = initial sync only;
    /// each reconnect re-bootstraps).
    pub fn bootstraps(&self) -> u64 {
        self.inner.bootstraps.load(Ordering::SeqCst)
    }

    /// Deltas applied through the replication stream (across all
    /// connections).
    pub fn deltas_applied(&self) -> u64 {
        self.inner.deltas_applied.load(Ordering::SeqCst)
    }

    /// Blocks until the first bootstrap completes (true) or the
    /// timeout elapses (false).
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.server().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Blocks until the replica has reached at least `epoch` (true) or
    /// the timeout elapses (false).
    pub fn wait_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.epoch() < epoch || self.server().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Blocks until the connected flag reads `want` (true) or the
    /// timeout elapses (false).
    pub fn wait_connected(&self, want: bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.is_connected() != want {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(sync) = self.sync.take() {
            let _ = sync.join();
        }
    }
}

/// The replica's connect → bootstrap → tail → retry loop.
fn sync_loop(addr: SocketAddr, inner: &ReplicaInner) {
    while !inner.stop.load(Ordering::Relaxed) {
        if let Ok(stream) = TcpStream::connect(addr) {
            // Short read timeout: the tail loop polls the stop flag
            // between timeouts, and read_full resumes partial frames.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let _ = sync_once(stream, inner);
        }
        inner.connected.store(false, Ordering::SeqCst);
        // Interruptible retry sleep.
        let deadline = Instant::now() + inner.config.retry;
        while Instant::now() < deadline && !inner.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// One connection's worth of replication: bootstrap, then tail deltas
/// until the stream dies or the replica stops.
fn sync_once(mut stream: TcpStream, inner: &ReplicaInner) -> io::Result<()> {
    // Bootstrap: the snapshot frame must come first.
    let Some((tag, payload)) = read_frame(&mut stream, &inner.stop)? else {
        return Ok(());
    };
    if tag != FRAME_SNAPSHOT {
        return Err(invalid("replication stream must start with a snapshot"));
    }
    let (epoch, rest) = read_epoch(&payload)?;
    let shards = persist::read_sharded_fragments(rest)?;
    let engine =
        ShardedEngine::from_shard_fragments(inner.app.clone(), &shards, WorkflowStats::new())
            .map_err(|e| invalid(&format!("snapshot rebuild failed: {e}")))?;
    let server = Arc::new(DashServer::from_engine(engine, inner.config.serve.clone()));
    *inner.server.write() = Some(server);
    inner.epoch.store(epoch, Ordering::SeqCst);
    inner.bootstraps.fetch_add(1, Ordering::SeqCst);
    inner.connected.store(true, Ordering::SeqCst);
    // Tail: apply every delta through the local publish path.
    loop {
        let Some((tag, payload)) = read_frame(&mut stream, &inner.stop)? else {
            return Ok(());
        };
        if tag != FRAME_DELTA {
            return Err(invalid(&format!("unexpected frame tag {tag}")));
        }
        let (epoch, rest) = read_epoch(&payload)?;
        let mut rest = rest;
        let delta = wire::read_delta(&mut rest)?;
        // The signature rides along for protocol completeness (a
        // non-DashServer consumer needs it to invalidate caches); the
        // local publish path recomputes an identical one from the
        // mirrored pre-delta state.
        let _signature = wire::read_signature(&mut rest)?;
        if epoch <= inner.epoch.load(Ordering::SeqCst) {
            continue; // replayed frame from a reconnect race
        }
        let server = inner
            .server
            .read()
            .clone()
            .expect("server present after bootstrap");
        server.publish(delta);
        inner.epoch.store(epoch, Ordering::SeqCst);
        inner.deltas_applied.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::IndexDelta;

    #[test]
    fn frame_codec_roundtrips_and_resumes_across_timeouts() {
        // Loopback socket pair; 10ms read timeout on the read half.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let stop = AtomicBool::new(false);

        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        // Write the frame in two chunks with a pause: the reader must
        // time out mid-frame and resume without tearing.
        let mut framed = vec![FRAME_DELTA];
        framed.extend((payload.len() as u64).to_le_bytes());
        framed.extend(&payload);
        let half = framed.len() / 2;
        let (first, second) = framed.split_at(half);
        let first = first.to_vec();
        let second = second.to_vec();
        let writer = std::thread::spawn(move || {
            tx.write_all(&first).unwrap();
            tx.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            tx.write_all(&second).unwrap();
            tx.flush().unwrap();
        });
        let (tag, got) = read_frame(&mut rx, &stop).unwrap().unwrap();
        writer.join().unwrap();
        assert_eq!(tag, FRAME_DELTA);
        assert_eq!(got, payload);
    }

    #[test]
    fn torn_stream_is_an_error_not_a_partial_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let stop = AtomicBool::new(false);
        let mut framed = vec![FRAME_SNAPSHOT];
        framed.extend(100u64.to_le_bytes());
        framed.extend(vec![7u8; 30]); // 30 of the promised 100 bytes
        tx.write_all(&framed).unwrap();
        drop(tx); // mid-frame kill
        assert!(read_frame(&mut rx, &stop).is_err());
    }

    #[test]
    fn delta_payload_roundtrips_through_epoch_framing() {
        let event = PublishEvent {
            epoch: 42,
            delta: IndexDelta::default(),
            signature: Default::default(),
        };
        let payload = delta_payload(&event);
        let (epoch, mut rest) = read_epoch(&payload).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(wire::read_delta(&mut rest).unwrap(), event.delta);
        assert_eq!(wire::read_signature(&mut rest).unwrap(), event.signature);
        assert!(rest.is_empty());
    }
}
