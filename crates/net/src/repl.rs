//! Primary→replica delta replication over TCP.
//!
//! The unit a distributed DASH deployment ships between nodes is
//! exactly the unit PRs 3–4 built the write path around: one
//! [`IndexDelta`] per publication, stamped with a monotonic epoch and
//! its [`DeltaSignature`]. The protocol is four frame kinds on one
//! length-prefixed binary stream (the `dash-core` wire codec):
//!
//! * `HELLO` — sent by the replica, first thing after connecting: a
//!   `has_state` flag plus the primary epoch of the state it already
//!   holds. A fresh replica says `has_state = false`; a reconnecting
//!   one reports where its mirror stopped.
//! * `SNAPSHOT` — full bootstrap: the primary's live epoch plus its
//!   [`ShardedEngine::write_image`] bytes — the v2 *arena image* (see
//!   `dash_core::persist`): every shard's catalog, posting arenas and
//!   graph columns as checksummed fixed-width arrays. The replica
//!   reconstructs through [`IngestSource::Image`], bulk-reading
//!   columns instead of re-running `build`, so bootstrap cost is
//!   O(bytes), not O(rebuild) — and the exact partition ships with the
//!   image, so the replica's shard layout, and therefore its search
//!   byte-stream, is the primary's.
//! * `RESUME` — the cheap alternative: when the replica's reported
//!   epoch still sits inside the primary's bounded delta log
//!   ([`DashServer::replication_feed_from`]), the primary confirms the
//!   base epoch and replays only the missed deltas. A briefly
//!   disconnected replica catches up in a handful of delta frames
//!   instead of re-shipping the whole index.
//! * `DELTA` — one per publication after the bootstrap or resume:
//!   epoch, delta, signature. The tap is registered under the
//!   primary's writer lock, so the first live delta's epoch is always
//!   contiguous with the snapshot epoch / resume backlog — no
//!   publication is lost or duplicated however the join interleaves
//!   with concurrent writers.
//!
//! The replica applies each delta through its *own* [`DashServer`]
//! publish path (shadow apply → atomic snapshot swap → precise cache
//! invalidation), so a replica search can never observe a
//! half-applied delta: a torn TCP stream dies in the framing layer
//! before anything touches the engine. The local server is opened
//! **at the primary's epoch** ([`DashServer::from_engine_at_epoch`]),
//! so epoch numbering is cluster-wide: the replica's own publish path
//! stamps replicated deltas with primary epochs, its own delta log
//! fills with primary-numbered events, and on promotion the new
//! primary's epochs continue the old sequence seamlessly.
//!
//! Delta epochs are gap-checked on apply: each must be exactly
//! `current + 1`. A dropped frame (injected or real) kills the
//! connection instead of silently diverging the mirror; the reconnect
//! HELLO then repairs the gap via `RESUME` — or a full snapshot if the
//! replica fell off the log's tail.
//!
//! On disconnect the replica keeps serving its last published snapshot
//! (stale-but-consistent) and re-syncs when the primary comes back.
//! [`Replica::retarget`] points the sync loop at a different hub (the
//! failover path after a promotion); [`Replica::promote`] stops
//! mirroring and hands out the local server to *be* the next primary.
//!
//! [`ShardedEngine::write_image`]: dash_core::ShardedEngine::write_image
//! [`IngestSource::Image`]: dash_core::IngestSource::Image
//! [`IndexDelta`]: dash_core::IndexDelta
//! [`DeltaSignature`]: dash_core::DeltaSignature

use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dash_core::{wire, IngestSource, SearchHit, SearchRequest, ShardedEngine};
use dash_serve::{CatchUp, DashServer, PublishEvent, ServeConfig};
use dash_webapp::WebApplication;
use parking_lot::{Mutex, RwLock};

use crate::http::invalid;

/// Frame tags of the replication stream.
const FRAME_SNAPSHOT: u8 = 1;
const FRAME_DELTA: u8 = 2;
const FRAME_HELLO: u8 = 3;
const FRAME_RESUME: u8 = 4;

/// Frames larger than this are protocol errors (a fooddb-scale dump is
/// kilobytes; even a million-fragment dump stays far below).
const MAX_FRAME_BYTES: u64 = 1 << 32;

/// How long a streamer waits on the publication channel between
/// stop-flag checks.
const TAP_POLL: Duration = Duration::from_millis(50);

/// How long the hub waits for a connecting replica's HELLO before
/// dropping the connection (a replica that never speaks must not pin a
/// streamer thread forever).
const HELLO_DEADLINE: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Writes one `tag + u64 length + payload` frame.
fn write_frame<W: Write>(writer: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&[tag])?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame, tolerating read timeouts (the poll loop re-enters)
/// but never tearing: a timeout mid-frame resumes exactly where the
/// partial read stopped. Returns `None` when `stop` was raised.
fn read_frame(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<(u8, Vec<u8>)>> {
    read_frame_until(stream, stop, None)
}

/// [`read_frame`] with an optional absolute deadline: timeouts past it
/// become errors instead of re-entering the poll loop.
fn read_frame_until(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    until: Option<Instant>,
) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 9];
    if !read_full(stream, &mut header, stop, until)? {
        return Ok(None);
    }
    let tag = header[0];
    let len = u64::from_le_bytes(header[1..9].try_into().expect("8 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(invalid("replication frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(stream, &mut payload, stop, until)? {
        return Ok(None);
    }
    Ok(Some((tag, payload)))
}

/// `read_exact` that survives read timeouts without losing the bytes
/// already read. `Ok(false)` means `stop` was raised mid-read; a
/// timeout past `until` is an error.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    until: Option<Instant>,
) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "replication peer closed",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if until.is_some_and(|deadline| Instant::now() >= deadline) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "replication frame deadline exceeded",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn snapshot_payload(epoch: u64, engine: &ShardedEngine) -> Vec<u8> {
    let mut payload = epoch.to_le_bytes().to_vec();
    engine
        .write_image(&mut payload)
        .expect("Vec<u8> writes are infallible");
    payload
}

fn delta_payload(event: &PublishEvent) -> Vec<u8> {
    let mut payload = event.epoch.to_le_bytes().to_vec();
    wire::write_delta(&mut payload, &event.delta).expect("Vec<u8> writes are infallible");
    wire::write_signature(&mut payload, &event.signature).expect("Vec<u8> writes are infallible");
    payload
}

fn hello_payload(has_state: bool, epoch: u64) -> Vec<u8> {
    let mut payload = vec![u8::from(has_state)];
    payload.extend(epoch.to_le_bytes());
    payload
}

fn read_hello_payload(payload: &[u8]) -> io::Result<(bool, u64)> {
    if payload.len() != 9 {
        return Err(invalid("malformed hello payload"));
    }
    let epoch = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    Ok((payload[0] != 0, epoch))
}

fn read_epoch(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 8 {
        return Err(invalid("frame payload missing epoch"));
    }
    let epoch = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((epoch, &payload[8..]))
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Chaos hooks on the hub's streamers, armed by tests (and usable as
/// an operational "break it on purpose" drill). All default to off;
/// each one-shot hook disarms itself when it fires.
#[derive(Debug, Default)]
pub struct ReplFaults {
    /// Silently drop the next N delta frames. The replica sees an
    /// epoch gap, kills the connection, and repairs it on reconnect —
    /// the gap-detection path.
    pub drop_deltas: AtomicU32,
    /// One-shot: kill the connection halfway through the next snapshot
    /// frame (a torn bootstrap).
    pub kill_mid_snapshot: AtomicBool,
    /// One-shot: kill the connection halfway through the next delta
    /// frame (a torn publication).
    pub kill_mid_delta: AtomicBool,
    /// Delay before each delta frame write, in milliseconds (a slow
    /// link; drives the laggard-eviction path when the feed is
    /// bounded).
    pub delay_ms: AtomicU64,
}

impl ReplFaults {
    /// Consumes one unit of `drop_deltas`; true when the next delta
    /// frame should be dropped.
    fn take_drop(&self) -> bool {
        self.drop_deltas
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Writes the first half of a frame, then kills the socket — the torn
/// transfer the one-shot kill hooks inject. Always errors.
fn kill_mid_frame(stream: &mut TcpStream, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut partial = vec![tag];
    partial.extend((payload.len() as u64).to_le_bytes());
    partial.extend(&payload[..payload.len() / 2]);
    stream.write_all(&partial)?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Err(invalid("fault injection: connection killed mid-frame"))
}

/// Writes one delta frame through the fault hooks.
fn send_delta(stream: &mut TcpStream, event: &PublishEvent, faults: &ReplFaults) -> io::Result<()> {
    let delay = faults.delay_ms.load(Ordering::Relaxed);
    if delay > 0 {
        std::thread::sleep(Duration::from_millis(delay));
    }
    if faults.take_drop() {
        return Ok(());
    }
    let payload = delta_payload(event);
    if faults.kill_mid_delta.swap(false, Ordering::SeqCst) {
        return kill_mid_frame(stream, FRAME_DELTA, &payload);
    }
    write_frame(stream, FRAME_DELTA, &payload)
}

// ---------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------

/// The primary's replication listener: accepts replica connections,
/// answers each HELLO with a snapshot or a delta-log resume, then
/// streams every later publication. One streamer thread per replica; a
/// slow or dead replica never delays the publish path — with a bounded
/// feed ([`ServeConfig::feed_depth`]) a laggard is *evicted* and
/// re-syncs through the delta log on reconnect.
///
/// [`ServeConfig::feed_depth`]: dash_serve::ServeConfig::feed_depth
#[derive(Debug)]
pub struct ReplicationHub {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Write halves of the live replica sockets, for failure
    /// injection and shutdown.
    peers: Arc<Mutex<Vec<TcpStream>>>,
    faults: Arc<ReplFaults>,
    accept: Option<JoinHandle<()>>,
}

impl ReplicationHub {
    /// Starts streaming on an already-bound listener (bind to port 0
    /// for an ephemeral port; [`ReplicationHub::addr`] reports it).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn start(server: Arc<DashServer>, listener: TcpListener) -> io::Result<ReplicationHub> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let peers: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let faults = Arc::new(ReplFaults::default());
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let peers = Arc::clone(&peers);
            let faults = Arc::clone(&faults);
            std::thread::Builder::new()
                .name("dash-repl-accept".to_string())
                .spawn(move || {
                    while let Ok((stream, _)) = listener.accept() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let server = Arc::clone(&server);
                        let stop = Arc::clone(&stop);
                        let peers_for_thread = Arc::clone(&peers);
                        let faults = Arc::clone(&faults);
                        if let Ok(handle) = stream.try_clone() {
                            peers.lock().push(handle);
                        }
                        let _ = std::thread::Builder::new()
                            .name("dash-repl-stream".to_string())
                            .spawn(move || {
                                let _ = stream_to_replica(
                                    &server,
                                    stream,
                                    &stop,
                                    &peers_for_thread,
                                    &faults,
                                );
                            });
                    }
                })
                .expect("spawn replication accept thread")
        };
        Ok(ReplicationHub {
            addr,
            stop,
            peers,
            faults,
            accept: Some(accept),
        })
    }

    /// The address replicas connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The chaos hooks of this hub's streamers (see [`ReplFaults`]).
    pub fn faults(&self) -> &ReplFaults {
        &self.faults
    }

    /// Severs every live replica connection (they see EOF immediately)
    /// without stopping the listener — replicas reconnect and re-sync
    /// (via the delta log when their epoch is still on it). This is
    /// the failure-injection hook the replica failure tests use;
    /// operationally it is a rolling "resync everyone".
    pub fn disconnect_all(&self) {
        for peer in self.peers.lock().drain(..) {
            let _ = peer.shutdown(Shutdown::Both);
        }
    }

    /// Live replica connection count.
    pub fn replica_count(&self) -> usize {
        self.peers.lock().len()
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.disconnect_all();
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(wake_addr(self.addr));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// The address a shutdown wake-up should connect to: the bound address
/// itself, unless the listener was bound to the wildcard — `0.0.0.0`
/// (or `[::]`) is not a connectable destination on every platform, so
/// the wake-up targets loopback on the bound port instead.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let loopback: IpAddr = match addr {
            SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(loopback, addr.port())
    } else {
        addr
    }
}

/// One replica's streamer: read the HELLO, answer with a snapshot or a
/// resume + backlog, then stream every publication.
fn stream_to_replica(
    server: &DashServer,
    mut stream: TcpStream,
    stop: &AtomicBool,
    peers: &Mutex<Vec<TcpStream>>,
    faults: &ReplFaults,
) -> io::Result<()> {
    // Captured before streaming: the peer (replica-side) address is
    // the connection's unique identity — every accepted socket shares
    // the listener's *local* address — and it becomes unreadable once
    // the socket dies.
    let peer = stream.peer_addr().ok();
    let result = (|| {
        stream.set_read_timeout(Some(TAP_POLL))?;
        let hello = read_frame_until(&mut stream, stop, Some(Instant::now() + HELLO_DEADLINE))?;
        let Some((tag, payload)) = hello else {
            return Ok(());
        };
        if tag != FRAME_HELLO {
            return Err(invalid("replication stream must start with a hello"));
        }
        let (has_state, epoch) = read_hello_payload(&payload)?;
        // Registered atomically under the writer lock: every event the
        // feed will deliver is contiguous with the snapshot epoch (or
        // the resume backlog), gap-free.
        let events = match server.replication_feed_from(has_state.then_some(epoch)) {
            CatchUp::Tail(tail) => {
                write_frame(&mut stream, FRAME_RESUME, &tail.base.to_le_bytes())?;
                for event in &tail.backlog {
                    send_delta(&mut stream, event, faults)?;
                }
                tail.events
            }
            CatchUp::Snapshot(feed) => {
                let payload = snapshot_payload(feed.snapshot.epoch, &feed.snapshot.engine);
                if faults.kill_mid_snapshot.swap(false, Ordering::SeqCst) {
                    return kill_mid_frame(&mut stream, FRAME_SNAPSHOT, &payload);
                }
                write_frame(&mut stream, FRAME_SNAPSHOT, &payload)?;
                feed.events
            }
        };
        loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            match events.recv_timeout(TAP_POLL) {
                Ok(event) => send_delta(&mut stream, &event, faults)?,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                // Disconnected covers both hub shutdown and laggard
                // eviction — either way this streamer is done; closing
                // the socket tells the replica to reconnect.
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    })();
    // Deregister exactly this connection's handle, whatever ended the
    // stream (handles whose peer address is unreadable are dead too —
    // drop them along the way).
    if peer.is_some() {
        peers
            .lock()
            .retain(|p| p.peer_addr().ok().is_some_and(|a| Some(a) != peer));
    }
    result
}

// ---------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------

/// Tunables of a replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Serving configuration of the replica's local [`DashServer`]
    /// (cache, batching — shard count is dictated by the primary's
    /// dump and ignored here).
    pub serve: ServeConfig,
    /// Delay between reconnect attempts after a lost primary.
    pub retry: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            serve: ServeConfig::default(),
            retry: Duration::from_millis(200),
        }
    }
}

/// Replica-side counters and state.
#[derive(Debug)]
struct ReplicaInner {
    app: WebApplication,
    config: ReplicaConfig,
    /// Where the sync loop connects; retargetable for failover.
    target: Mutex<SocketAddr>,
    /// The local serving stack over the mirrored engine. `None` until
    /// the first bootstrap completes; *replaced* (never mutated in
    /// place) on re-bootstrap, so readers always hold a fully
    /// consistent server.
    server: RwLock<Option<Arc<DashServer>>>,
    /// A clone of the live replication socket, so retarget/promote can
    /// sever the stream from outside the sync thread.
    live: Mutex<Option<TcpStream>>,
    /// Primary epoch of the last applied snapshot or delta.
    epoch: AtomicU64,
    connected: AtomicBool,
    bootstraps: AtomicU64,
    catchups: AtomicU64,
    deltas_applied: AtomicU64,
    promoted: AtomicBool,
    stop: AtomicBool,
    sync_done: AtomicBool,
}

impl ReplicaInner {
    /// Severs the live replication stream (if any); the sync thread
    /// sees EOF and re-enters its connect loop — or exits, if `stop`
    /// was raised first.
    fn sever(&self) {
        if let Some(live) = self.live.lock().as_ref() {
            let _ = live.shutdown(Shutdown::Both);
        }
    }
}

/// A read replica: connects to a [`ReplicationHub`], bootstraps from
/// the snapshot frame (or resumes from the delta log when
/// reconnecting), tails the delta stream, and serves reads from its
/// own [`DashServer`] — identical bytes to the primary at every epoch.
/// Reconnects forever (with [`ReplicaConfig::retry`] backoff) until
/// dropped; while disconnected it keeps serving the last published
/// snapshot.
///
/// Failover hooks: [`Replica::retarget`] repoints the sync loop at a
/// new hub (after someone else was promoted); [`Replica::promote`]
/// stops mirroring and returns the local server so *this* node can
/// become the primary — its epochs continue the cluster sequence, and
/// its own delta log (filled by the mirrored publishes) lets the other
/// replicas resume from it without re-snapshotting.
#[derive(Debug)]
pub struct Replica {
    inner: Arc<ReplicaInner>,
    sync: Option<JoinHandle<()>>,
}

impl Replica {
    /// Connects to a primary's replication address and starts the sync
    /// loop. `app` is the web application the fragments came from
    /// (application analysis artifacts ship out of band — they are
    /// static per deployment, unlike the index).
    pub fn connect(addr: SocketAddr, app: WebApplication, config: ReplicaConfig) -> Replica {
        let inner = Arc::new(ReplicaInner {
            app,
            config,
            target: Mutex::new(addr),
            server: RwLock::new(None),
            live: Mutex::new(None),
            epoch: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            bootstraps: AtomicU64::new(0),
            catchups: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            sync_done: AtomicBool::new(false),
        });
        let sync = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dash-replica-sync".to_string())
                .spawn(move || sync_loop(&inner))
                .expect("spawn replica sync thread")
        };
        Replica {
            inner,
            sync: Some(sync),
        }
    }

    /// The local serving stack, once bootstrapped. The returned server
    /// stays valid (and serves its last state) even if the replica
    /// re-bootstraps behind it.
    pub fn server(&self) -> Option<Arc<DashServer>> {
        self.inner.server.read().clone()
    }

    /// Serves a search from the replica's current state. Empty before
    /// the first bootstrap completes (use [`Replica::wait_ready`]).
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        match self.server() {
            Some(server) => server.search(request),
            None => Vec::new(),
        }
    }

    /// Primary epoch of the replica's current state.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// Whether the replication stream is currently up.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.load(Ordering::SeqCst)
    }

    /// How many times the replica bootstrapped from a full snapshot
    /// (1 = initial sync only; a reconnect re-bootstraps only when the
    /// delta log could not cover the gap).
    pub fn bootstraps(&self) -> u64 {
        self.inner.bootstraps.load(Ordering::SeqCst)
    }

    /// How many reconnects were answered with a delta-log `RESUME`
    /// instead of a snapshot.
    pub fn catchups(&self) -> u64 {
        self.inner.catchups.load(Ordering::SeqCst)
    }

    /// Deltas applied through the replication stream (across all
    /// connections).
    pub fn deltas_applied(&self) -> u64 {
        self.inner.deltas_applied.load(Ordering::SeqCst)
    }

    /// Whether [`Replica::promote`] has been called.
    pub fn is_promoted(&self) -> bool {
        self.inner.promoted.load(Ordering::SeqCst)
    }

    /// Repoints the sync loop at a different hub — the failover path
    /// after a promotion elsewhere. The current stream (if any) is
    /// severed; the next connect HELLOs the new hub with the replica's
    /// current epoch, so a hub whose delta log covers it answers with
    /// a cheap `RESUME` (a promoted ex-replica's log does, for every
    /// peer that was at or behind its promotion epoch).
    pub fn retarget(&self, addr: SocketAddr) {
        *self.inner.target.lock() = addr;
        self.inner.sever();
    }

    /// Stops mirroring and returns the local server so this node can
    /// serve as the next primary. The sync loop is terminated (waited
    /// for, bounded), so no replicated publish can race the new
    /// primary's own. Returns `None` if the replica never bootstrapped
    /// — a stateless node cannot be promoted.
    ///
    /// The returned server's epoch continues the cluster-wide
    /// sequence, and its delta log holds the mirrored publications, so
    /// surviving replicas [`Replica::retarget`]ed at a hub over this
    /// server resume via the delta log instead of re-snapshotting.
    pub fn promote(&self) -> Option<Arc<DashServer>> {
        let server = self.server()?;
        self.inner.promoted.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.sever();
        // Bounded wait for the sync thread to park: once it has, no
        // further replicated delta can be published behind our back.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !self.inner.sync_done.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.inner.connected.store(false, Ordering::SeqCst);
        Some(server)
    }

    /// Blocks until the first bootstrap completes (true) or the
    /// timeout elapses (false).
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.server().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Blocks until the replica has reached at least `epoch` (true) or
    /// the timeout elapses (false).
    pub fn wait_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.epoch() < epoch || self.server().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Blocks until the connected flag reads `want` (true) or the
    /// timeout elapses (false).
    pub fn wait_connected(&self, want: bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.is_connected() != want {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.sever();
        if let Some(sync) = self.sync.take() {
            let _ = sync.join();
        }
    }
}

/// The replica's connect → hello → bootstrap/resume → tail → retry
/// loop.
fn sync_loop(inner: &ReplicaInner) {
    while !inner.stop.load(Ordering::Relaxed) {
        let addr = *inner.target.lock();
        if let Ok(stream) = TcpStream::connect(addr) {
            // Short read timeout: the tail loop polls the stop flag
            // between timeouts, and read_full resumes partial frames.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            *inner.live.lock() = stream.try_clone().ok();
            let _ = sync_once(stream, inner);
            *inner.live.lock() = None;
        }
        inner.connected.store(false, Ordering::SeqCst);
        // Interruptible retry sleep.
        let deadline = Instant::now() + inner.config.retry;
        while Instant::now() < deadline && !inner.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    inner.sync_done.store(true, Ordering::SeqCst);
}

/// One connection's worth of replication: hello, bootstrap or resume,
/// then tail deltas until the stream dies or the replica stops.
fn sync_once(mut stream: TcpStream, inner: &ReplicaInner) -> io::Result<()> {
    // Hello: tell the hub what state we already hold, so a brief
    // disconnect is repaired from the delta log instead of a full
    // re-snapshot.
    let has_state = inner.server.read().is_some();
    let epoch = inner.epoch.load(Ordering::SeqCst);
    write_frame(&mut stream, FRAME_HELLO, &hello_payload(has_state, epoch))?;
    let Some((tag, payload)) = read_frame(&mut stream, &inner.stop)? else {
        return Ok(());
    };
    match tag {
        FRAME_SNAPSHOT => {
            let (epoch, rest) = read_epoch(&payload)?;
            // Arena-image load: columns bulk-read into the arenas, no
            // index rebuild. A torn or corrupted image errors here
            // (every section is checksummed) and the reconnect retries.
            let engine = ShardedEngine::builder(inner.app.clone())
                .source(IngestSource::Image(rest))
                .build()
                .map_err(|e| invalid(&format!("snapshot load failed: {e}")))?;
            // Opened *at the primary's epoch*: local publications of
            // replicated deltas keep cluster-wide epoch numbering (see
            // the module docs).
            let server = Arc::new(DashServer::from_engine_at_epoch(
                engine,
                inner.config.serve.clone(),
                epoch,
            ));
            *inner.server.write() = Some(server);
            inner.epoch.store(epoch, Ordering::SeqCst);
            inner.bootstraps.fetch_add(1, Ordering::SeqCst);
            crate::obs::global_counter!("dash_repl_bootstraps_total").inc();
            dash_obs::Registry::global()
                .gauge("dash_repl_epoch")
                .set(epoch);
        }
        FRAME_RESUME => {
            let (base, _) = read_epoch(&payload)?;
            if !has_state || base != epoch {
                return Err(invalid("resume base does not match replica state"));
            }
            inner.catchups.fetch_add(1, Ordering::SeqCst);
            crate::obs::global_counter!("dash_repl_catchups_total").inc();
        }
        other => return Err(invalid(&format!("unexpected bootstrap frame tag {other}"))),
    }
    inner.connected.store(true, Ordering::SeqCst);
    // Tail: apply every delta through the local publish path,
    // gap-checking epochs — a missed frame must kill the connection
    // (the reconnect repairs it), never silently diverge the mirror.
    loop {
        let Some((tag, payload)) = read_frame(&mut stream, &inner.stop)? else {
            return Ok(());
        };
        if tag != FRAME_DELTA {
            return Err(invalid(&format!("unexpected frame tag {tag}")));
        }
        let (epoch, rest) = read_epoch(&payload)?;
        let mut rest = rest;
        let delta = wire::read_delta(&mut rest)?;
        // Gap between this frame and the next epoch the replica
        // expects: 0 on an in-order stream (replayed frames saturate
        // to 0). A nonzero value is about to kill the connection.
        dash_obs::Registry::global()
            .gauge("dash_repl_epoch_lag")
            .set(epoch.saturating_sub(inner.epoch.load(Ordering::SeqCst) + 1));
        // The signature rides along for protocol completeness (a
        // non-DashServer consumer needs it to invalidate caches); the
        // local publish path recomputes an identical one from the
        // mirrored pre-delta state.
        let _signature = wire::read_signature(&mut rest)?;
        let current = inner.epoch.load(Ordering::SeqCst);
        if epoch <= current {
            continue; // replayed frame from a reconnect race
        }
        if epoch != current + 1 {
            return Err(invalid(&format!(
                "delta epoch gap: have {current}, received {epoch}"
            )));
        }
        let server = inner
            .server
            .read()
            .clone()
            .expect("server present after bootstrap");
        server.publish(delta);
        inner.epoch.store(epoch, Ordering::SeqCst);
        inner.deltas_applied.fetch_add(1, Ordering::SeqCst);
        crate::obs::global_counter!("dash_repl_deltas_applied_total").inc();
        dash_obs::Registry::global()
            .gauge("dash_repl_epoch")
            .set(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::IndexDelta;

    #[test]
    fn frame_codec_roundtrips_and_resumes_across_timeouts() {
        // Loopback socket pair; 10ms read timeout on the read half.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let stop = AtomicBool::new(false);

        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        // Write the frame in two chunks with a pause: the reader must
        // time out mid-frame and resume without tearing.
        let mut framed = vec![FRAME_DELTA];
        framed.extend((payload.len() as u64).to_le_bytes());
        framed.extend(&payload);
        let half = framed.len() / 2;
        let (first, second) = framed.split_at(half);
        let first = first.to_vec();
        let second = second.to_vec();
        let writer = std::thread::spawn(move || {
            tx.write_all(&first).unwrap();
            tx.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            tx.write_all(&second).unwrap();
            tx.flush().unwrap();
        });
        let (tag, got) = read_frame(&mut rx, &stop).unwrap().unwrap();
        writer.join().unwrap();
        assert_eq!(tag, FRAME_DELTA);
        assert_eq!(got, payload);
    }

    #[test]
    fn torn_stream_is_an_error_not_a_partial_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let stop = AtomicBool::new(false);
        let mut framed = vec![FRAME_SNAPSHOT];
        framed.extend(100u64.to_le_bytes());
        framed.extend(vec![7u8; 30]); // 30 of the promised 100 bytes
        tx.write_all(&framed).unwrap();
        drop(tx); // mid-frame kill
        assert!(read_frame(&mut rx, &stop).is_err());
    }

    #[test]
    fn delta_payload_roundtrips_through_epoch_framing() {
        let event = PublishEvent {
            epoch: 42,
            delta: IndexDelta::default(),
            signature: Default::default(),
        };
        let payload = delta_payload(&event);
        let (epoch, mut rest) = read_epoch(&payload).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(wire::read_delta(&mut rest).unwrap(), event.delta);
        assert_eq!(wire::read_signature(&mut rest).unwrap(), event.signature);
        assert!(rest.is_empty());
    }

    #[test]
    fn hello_payload_roundtrips() {
        assert_eq!(
            read_hello_payload(&hello_payload(true, 7)).unwrap(),
            (true, 7)
        );
        assert_eq!(
            read_hello_payload(&hello_payload(false, 0)).unwrap(),
            (false, 0)
        );
        assert!(read_hello_payload(&[1, 2, 3]).is_err());
    }

    #[test]
    fn hello_deadline_expires_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _tx = TcpStream::connect(addr).unwrap(); // connects, never speaks
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        let stop = AtomicBool::new(false);
        let begin = Instant::now();
        let result = read_frame_until(
            &mut rx,
            &stop,
            Some(Instant::now() + Duration::from_millis(30)),
        );
        assert!(matches!(result, Err(e) if e.kind() == io::ErrorKind::TimedOut));
        assert!(begin.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn drop_counter_consumes_exactly_n_frames() {
        let faults = ReplFaults::default();
        faults.drop_deltas.store(2, Ordering::SeqCst);
        assert!(faults.take_drop());
        assert!(faults.take_drop());
        assert!(!faults.take_drop(), "only the armed count is dropped");
    }
}
