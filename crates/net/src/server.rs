//! The HTTP front-end: a readiness-driven event loop (`event.rs`)
//! owning every socket, dispatching route handling to a fixed worker
//! pool, serving three routes over a [`DashServer`] (or a [`Replica`]
//! mirroring one):
//!
//! * `GET /search?kw=…&kw=…&k=…&s=…` — top-k db-page search through
//!   the full serving path (cache → micro-batcher → snapshot); the
//!   response is the byte-stable JSON hit list of [`json::hits_to_json`].
//! * `POST /update` — a binary [`UpdateBody`]: either a
//!   [`RecordChange`] batch applied to the primary's database and
//!   routed through [`DashServer::apply_changes`], or a raw
//!   [`IndexDelta`] routed through [`DashServer::publish`]. A replica
//!   with an [`Upstream`] transparently *forwards* the body to the
//!   primary and answers with the primary's ack — any node accepts
//!   writes; one without answers `503`. A **promoted** replica serves
//!   `Publish` bodies itself (it *is* the primary now).
//! * `GET /stats` — serving counters: qps over uptime, cache hit
//!   rate, snapshot epoch, batching factor — plus the node's `role`
//!   (`"primary"` / `"replica"`; a promoted replica reports
//!   `"primary"`, which is how the routing front tier discovers the
//!   new primary after a failover).
//!
//! Connections are persistent (HTTP/1.1 keep-alive) and cost a buffer
//! each, not a thread: the event loop multiplexes them all
//! nonblockingly, so open-connection count is bounded by
//! [`NetConfig::max_connections`] (overflow gets a fast `503`), not by
//! the worker pool. Repeat `GET /search` requests are answered from a
//! pre-serialized response cache (`response_cache.rs`) — rendered
//! bytes keyed and invalidated by the same delta-signature machinery
//! as the serve-tier result cache, making a hot cache hit a single
//! `write(2)` on the loop thread.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dash_core::{wire, IndexDelta, RecordChange, SearchRequest};
use dash_relation::Database;
use dash_serve::DashServer;
use parking_lot::Mutex;

use crate::event::{self, Done, Job, NetCounters};
use crate::forward::Upstream;
use crate::http::{invalid, Request, Response};
use crate::json;
use crate::obs::NetObs;
use crate::repl::Replica;
use crate::response_cache::{ResponseCache, ResponseCacheStats};

/// Update-body kind tags (first byte of a `POST /update` body).
const UPDATE_CHANGES: u8 = 0;
const UPDATE_PUBLISH: u8 = 1;
/// Change-op tags inside a changes body.
const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Tunables of the socket front-end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Route-handling worker threads. Concurrency of *handling*, not
    /// of connections — idle keep-alive peers cost no worker.
    pub workers: usize,
    /// Open-connection cap; a connect past it is answered `503` and
    /// closed immediately (never silently stalled).
    pub max_connections: usize,
    /// Bound of the loop→worker job queue; a request arriving with the
    /// queue full is answered `503` immediately (load shedding).
    pub queue_depth: usize,
    /// Entry cap of the pre-serialized response cache (0 disables it).
    pub response_cache_entries: usize,
    /// Byte budget of the pre-serialized response cache (0 = no byte
    /// bound).
    pub response_cache_bytes: usize,
    /// Honor a `debug_sleep_us` query parameter by stalling the worker
    /// that long (capped at 1s) before handling — diagnostic fault
    /// injection for the slow-request log. Off by default; never
    /// enable on a production front-end.
    pub allow_debug_sleep: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 8,
            max_connections: 10_240,
            queue_depth: 1024,
            response_cache_entries: 512,
            response_cache_bytes: 4 << 20,
            allow_debug_sleep: false,
        }
    }
}

/// One base-table change shipped to `POST /update`: the operation
/// plus the record (`RecordChange` carries relation + record; the op
/// tells the server whether to insert it into or delete it from its
/// database before re-crawling the affected fragments).
#[derive(Debug, Clone, PartialEq)]
pub enum NetChange {
    /// Insert the record.
    Insert(RecordChange),
    /// Delete the (exact) record.
    Delete(RecordChange),
}

/// A decoded `POST /update` body.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateBody {
    /// Base-table record changes: applied to the primary's database,
    /// then routed through the bulk delta path
    /// ([`DashServer::apply_changes`]).
    Changes(Vec<NetChange>),
    /// A prebuilt delta published as-is ([`DashServer::publish`]) —
    /// the path synthetic update traffic (loadgen) uses.
    Publish(IndexDelta),
}

/// Encodes an update body (the client half).
pub fn encode_update(body: &UpdateBody) -> Vec<u8> {
    let mut out = Vec::new();
    match body {
        UpdateBody::Changes(changes) => {
            out.push(UPDATE_CHANGES);
            out.extend((changes.len() as u64).to_le_bytes());
            for change in changes {
                let (op, change) = match change {
                    NetChange::Insert(c) => (OP_INSERT, c),
                    NetChange::Delete(c) => (OP_DELETE, c),
                };
                out.push(op);
                wire::write_change(&mut out, change).expect("Vec<u8> writes are infallible");
            }
        }
        UpdateBody::Publish(delta) => {
            out.push(UPDATE_PUBLISH);
            wire::write_delta(&mut out, delta).expect("Vec<u8> writes are infallible");
        }
    }
    out
}

/// Decodes an update body (the server half).
///
/// # Errors
///
/// `InvalidData` on unknown tags, torn payloads, or trailing bytes
/// after a valid body — a clean prefix followed by garbage means a
/// concatenated or corrupted request, and silently accepting it would
/// apply a different update than the client believes it sent.
pub fn decode_update(bytes: &[u8]) -> io::Result<UpdateBody> {
    let mut reader = bytes;
    let body = decode_update_body(&mut reader)?;
    if !reader.is_empty() {
        return Err(invalid(&format!(
            "{} trailing bytes after update body",
            reader.len()
        )));
    }
    Ok(body)
}

fn decode_update_body(reader: &mut &[u8]) -> io::Result<UpdateBody> {
    let mut tag = [0u8; 1];
    reader.read_exact(&mut tag)?;
    match tag[0] {
        UPDATE_CHANGES => {
            let mut count = [0u8; 8];
            reader.read_exact(&mut count)?;
            let count = u64::from_le_bytes(count);
            if count > (1 << 24) {
                return Err(invalid("change count out of bounds"));
            }
            let mut changes = Vec::with_capacity(count.min(1 << 16) as usize);
            for _ in 0..count {
                let mut op = [0u8; 1];
                reader.read_exact(&mut op)?;
                let change = wire::read_change(&mut *reader)?;
                changes.push(match op[0] {
                    OP_INSERT => NetChange::Insert(change),
                    OP_DELETE => NetChange::Delete(change),
                    other => return Err(invalid(&format!("unknown change op {other}"))),
                });
            }
            Ok(UpdateBody::Changes(changes))
        }
        UPDATE_PUBLISH => Ok(UpdateBody::Publish(wire::read_delta(&mut *reader)?)),
        other => Err(invalid(&format!("unknown update tag {other}"))),
    }
}

/// What the server answers an update with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Fragments removed by the resulting delta.
    pub removed: usize,
    /// Fragments (re)inserted.
    pub added: usize,
    /// The publication epoch after the update.
    pub epoch: u64,
}

pub(crate) fn ack_to_json(ack: &UpdateAck) -> String {
    format!(
        "{{\"removed\":{},\"added\":{},\"epoch\":{}}}",
        ack.removed, ack.added, ack.epoch
    )
}

pub(crate) fn ack_from_json(text: &str) -> io::Result<UpdateAck> {
    let doc = json::parse(text)?;
    let get = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| invalid(&format!("missing {key}")))
    };
    Ok(UpdateAck {
        removed: get("removed")? as usize,
        added: get("added")? as usize,
        epoch: get("epoch")?,
    })
}

/// How long a forwarding replica waits for its own mirror to reach the
/// forwarded write's epoch before answering — the read-your-writes
/// window: a client that wrote through this replica and immediately
/// searches it sees its write, as long as replication keeps up.
const FORWARD_WAIT: Duration = Duration::from_secs(2);

/// What the front-end serves: a writable primary (server + the
/// database the record changes mutate) or a read replica (optionally
/// forwarding writes upstream).
#[derive(Debug, Clone)]
pub enum Backend {
    /// The writable primary.
    Primary {
        /// The serving stack.
        server: Arc<DashServer>,
        /// The authoritative database record changes apply to, kept in
        /// lockstep with the engine under one lock.
        db: Arc<Mutex<Database>>,
    },
    /// A read replica. With an upstream, writes are transparently
    /// forwarded to the primary; without one they answer `503`. After
    /// [`Replica::promote`] the node serves `Publish` writes itself.
    Replica {
        /// The mirroring replica.
        replica: Arc<Replica>,
        /// Where to forward writes (the primary's HTTP address),
        /// retargetable on failover.
        upstream: Option<Arc<Upstream>>,
    },
}

impl Backend {
    /// The serving stack the response cache keys its tap to, when one
    /// is live: the primary's server, or a replica's current mirror
    /// (whose identity changes on re-bootstrap — the cache detects the
    /// swap by Arc pointer and flushes).
    pub(crate) fn cache_server(&self) -> Option<Arc<DashServer>> {
        match self {
            Backend::Primary { server, .. } => Some(Arc::clone(server)),
            Backend::Replica { replica, .. } => replica.server(),
        }
    }

    fn search(&self, request: &SearchRequest) -> Result<Vec<dash_core::SearchHit>, Response> {
        match self {
            Backend::Primary { server, .. } => Ok(server.search(request)),
            Backend::Replica { replica, .. } => match replica.server() {
                Some(server) => Ok(server.search(request)),
                None => Err(Response::error(503, "replica not bootstrapped yet")),
            },
        }
    }

    fn update(&self, body: UpdateBody) -> Result<UpdateAck, Response> {
        match self {
            Backend::Primary { server, db } => match body {
                UpdateBody::Publish(delta) => {
                    let (stats, epoch) = server.publish_with_epoch(delta);
                    Ok(UpdateAck {
                        removed: stats.removed,
                        added: stats.added,
                        epoch,
                    })
                }
                UpdateBody::Changes(changes) => apply_changes_to(server, db, changes),
            },
            Backend::Replica { replica, upstream } => {
                if replica.is_promoted() {
                    // This node *is* the primary now. Prebuilt deltas
                    // publish directly (epoch numbering continues the
                    // cluster sequence). Record-change batches need the
                    // authoritative base tables, which never replicate —
                    // only the index does — so they stay unavailable
                    // until an operator restores a database alongside.
                    let Some(server) = replica.server() else {
                        return Err(Response::error(503, "promoted node has no state"));
                    };
                    return match body {
                        UpdateBody::Publish(delta) => {
                            let (stats, epoch) = server.publish_with_epoch(delta);
                            Ok(UpdateAck {
                                removed: stats.removed,
                                added: stats.added,
                                epoch,
                            })
                        }
                        UpdateBody::Changes(_) => Err(Response::error(
                            503,
                            "promoted from a replica: base-table changes need the \
                             authoritative database",
                        )),
                    };
                }
                let Some(upstream) = upstream else {
                    return Err(Response::error(
                        503,
                        "read replica: updates go to the primary",
                    ));
                };
                match upstream.forward(&body) {
                    Ok(ack) => {
                        // Read-your-writes: wait (bounded) for the
                        // mirror to catch up to the acked epoch before
                        // answering. A lagging mirror still acks — the
                        // write is durable on the primary; the client
                        // can compare the ack epoch against /stats.
                        replica.wait_epoch(ack.epoch, FORWARD_WAIT);
                        Ok(ack)
                    }
                    Err(e) => Err(Response::error(
                        502,
                        &format!("forwarding to primary failed: {e}"),
                    )),
                }
            }
        }
    }

    fn stats_json(&self) -> String {
        let (role, server) = match self {
            Backend::Primary { server, .. } => ("primary", Some(Arc::clone(server))),
            // A promoted replica *is* the primary: reporting the role
            // here is what lets the routing front tier re-discover the
            // write target after a failover.
            Backend::Replica { replica, .. } => (
                if replica.is_promoted() {
                    "primary"
                } else {
                    "replica"
                },
                replica.server(),
            ),
        };
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"role\":\"{role}\""));
        if let Some(server) = server {
            let stats = server.stats();
            let uptime = server.uptime().as_secs_f64();
            let lookups = stats.cache.hits + stats.cache.misses;
            out.push_str(&format!(
                ",\"epoch\":{},\"searches\":{},\"qps\":{:.2},\"cache_hits\":{},\
                 \"cache_misses\":{},\"cache_hit_rate\":{:.4},\"batches\":{},\
                 \"batched_requests\":{},\"published\":{},\"cached_results\":{},\
                 \"uptime_ms\":{}",
                server.epoch(),
                stats.searches,
                stats.searches as f64 / uptime.max(1e-9),
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.hits as f64 / (lookups.max(1)) as f64,
                stats.batches,
                stats.batched_requests,
                stats.published,
                server.cached_results(),
                server.uptime().as_millis(),
            ));
        }
        if let Backend::Replica { replica, upstream } = self {
            out.push_str(&format!(
                ",\"connected\":{},\"replica_epoch\":{},\"bootstraps\":{},\"catchups\":{},\
                 \"deltas_applied\":{},\"promoted\":{}",
                replica.is_connected(),
                replica.epoch(),
                replica.bootstraps(),
                replica.catchups(),
                replica.deltas_applied(),
                replica.is_promoted(),
            ));
            if let Some(upstream) = upstream {
                out.push_str(&format!(
                    ",\"forwarded\":{},\"forward_retries\":{}",
                    upstream.forwarded(),
                    upstream.retries(),
                ));
            }
        }
        out.push('}');
        out
    }
}

/// Applies a record-change batch to the primary's database and engine
/// in lockstep — the shared write path behind `POST /update` changes
/// bodies, whether they arrived directly or were forwarded from a
/// replica.
///
/// One lock span across db mutation + delta publication keeps database
/// and engine in lockstep for concurrent updaters. The batch is
/// applied to a staged copy first: a mid-batch failure (unknown
/// relation, schema mismatch) must leave the authoritative database
/// untouched — a half-applied batch would diverge db and engine
/// forever, since nothing gets published.
fn apply_changes_to(
    server: &DashServer,
    db: &Mutex<Database>,
    changes: Vec<NetChange>,
) -> Result<UpdateAck, Response> {
    let mut db = db.lock();
    let mut staged = db.clone();
    let mut batch = Vec::with_capacity(changes.len());
    for change in changes {
        match change {
            NetChange::Insert(change) => {
                let applied = staged
                    .table_mut(&change.relation)
                    .and_then(|t| t.insert(change.record.clone()));
                if let Err(e) = applied {
                    return Err(Response::error(400, &format!("insert failed: {e}")));
                }
                batch.push(change);
            }
            NetChange::Delete(change) => {
                match staged.table_mut(&change.relation) {
                    Ok(table) => {
                        table.delete_where(|r| *r == change.record);
                    }
                    Err(e) => return Err(Response::error(400, &format!("delete failed: {e}"))),
                }
                batch.push(change);
            }
        }
    }
    match server.apply_changes_with_epoch(&staged, &batch) {
        Ok((stats, epoch)) => {
            *db = staged;
            Ok(UpdateAck {
                removed: stats.removed,
                added: stats.added,
                epoch,
            })
        }
        Err(e) => Err(Response::error(400, &format!("apply failed: {e}"))),
    }
}

/// The socket front-end: event loop + worker pool over a [`Backend`].
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<event::Counters>,
    cache: Arc<ResponseCache>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Serves a primary on an already-bound listener (bind `:0` for an
    /// ephemeral port). `db` is the database the engine was built from;
    /// `POST /update` record changes mutate it.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn serve_primary(
        server: Arc<DashServer>,
        db: Database,
        listener: TcpListener,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        Self::serve(
            Backend::Primary {
                server,
                db: Arc::new(Mutex::new(db)),
            },
            listener,
            config,
        )
    }

    /// Serves a replica on an already-bound listener. Writes answer
    /// `503` — use [`NetServer::serve_replica_forwarding`] for a
    /// replica that relays them to the primary.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn serve_replica(
        replica: Arc<Replica>,
        listener: TcpListener,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        Self::serve(
            Backend::Replica {
                replica,
                upstream: None,
            },
            listener,
            config,
        )
    }

    /// Serves a replica that transparently forwards `POST /update` to
    /// the primary through `upstream` (share one [`Upstream`] across
    /// servers to share its persistent connection and failover
    /// retargeting).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn serve_replica_forwarding(
        replica: Arc<Replica>,
        upstream: Arc<Upstream>,
        listener: TcpListener,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        Self::serve(
            Backend::Replica {
                replica,
                upstream: Some(upstream),
            },
            listener,
            config,
        )
    }

    /// Serves any backend.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn serve(
        backend: Backend,
        listener: TcpListener,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let obs = Arc::new(NetObs::new(config.allow_debug_sleep));
        let counters = Arc::new(event::Counters::new(&obs.registry));
        let cache = Arc::new(ResponseCache::new(
            config.response_cache_entries,
            config.response_cache_bytes,
        ));
        let (jobs, queue) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let queue = Arc::new(Mutex::new(queue));
        let (done, completions) = mpsc::channel::<Done>();
        let workers = (0..config.workers.max(1))
            .map(|at| {
                let queue = Arc::clone(&queue);
                let done = done.clone();
                let backend = backend.clone();
                let cache = Arc::clone(&cache);
                let obs = Arc::clone(&obs);
                std::thread::Builder::new()
                    .name(format!("dash-net-worker-{at}"))
                    .spawn(move || loop {
                        // Drop the lock before handling: other workers
                        // must keep draining while this one computes.
                        let job = { queue.lock().recv() };
                        let Ok(Job {
                            slot,
                            gen,
                            request,
                            enqueued,
                        }) = job
                        else {
                            return; // loop gone: the queue sender dropped
                        };
                        obs.queue_depth.sub(1);
                        if obs.queue_wait_ns.is_enabled() {
                            obs.queue_wait_ns
                                .record(enqueued.elapsed().as_nanos() as u64);
                        }
                        let (out, close_after) = event::respond(&request, &backend, &cache, &obs);
                        if done
                            .send(Done {
                                slot,
                                gen,
                                out,
                                close_after,
                            })
                            .is_err()
                        {
                            return;
                        }
                    })
                    .expect("spawn net worker")
            })
            .collect();
        let event = {
            let backend = backend.clone();
            let config = config.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let cache = Arc::clone(&cache);
            let obs = Arc::clone(&obs);
            std::thread::Builder::new()
                .name("dash-net-event".to_string())
                .spawn(move || {
                    event::run(
                        listener,
                        backend,
                        &config,
                        &stop,
                        counters,
                        cache,
                        obs,
                        jobs,
                        completions,
                    );
                    // `jobs` drops here: the workers' queue closes and
                    // the pool winds down.
                })
                .expect("spawn net event loop")
        };
        Ok(NetServer {
            addr,
            stop,
            counters,
            cache,
            event: Some(event),
            workers,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the connection-handling counters (accepts, open
    /// connections, overflow/shed `503`s, bad requests, timeouts).
    pub fn counters(&self) -> NetCounters {
        self.counters.snapshot()
    }

    /// A snapshot of the pre-serialized response cache's counters.
    pub fn response_cache_stats(&self) -> ResponseCacheStats {
        self.cache.stats()
    }

    /// Live entries in the pre-serialized response cache.
    pub fn cached_responses(&self) -> usize {
        self.cache.len()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // The event loop's sleep is tick-bounded, so the flag alone
        // suffices — no self-connect wake-up (which used to target
        // `self.addr` verbatim and hung on wildcard binds, where
        // `0.0.0.0:port` is not connectable on every platform).
        self.stop.store(true, Ordering::Relaxed);
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Routes one request.
pub(crate) fn route(request: &Request, backend: &Backend) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/search") => match parse_search(request) {
            Ok(search) => match backend.search(&search) {
                Ok(hits) => Response::json(json::hits_to_json(&hits)),
                Err(error) => error,
            },
            Err(e) => Response::error(400, &e.to_string()),
        },
        ("POST", "/update") => match decode_update(&request.body) {
            Ok(body) => match backend.update(body) {
                Ok(ack) => Response::json(ack_to_json(&ack)),
                Err(error) => error,
            },
            Err(e) => Response::error(400, &e.to_string()),
        },
        ("GET", "/stats") => Response::json(backend.stats_json()),
        ("GET", _) | ("POST", _) => Response::error(404, "unknown route"),
        _ => Response::error(405, "unsupported method"),
    }
}

/// Decodes `GET /search` query parameters into a [`SearchRequest`].
pub(crate) fn parse_search(request: &Request) -> io::Result<SearchRequest> {
    let keywords = request.params("kw");
    if keywords.is_empty() {
        return Err(invalid("at least one kw parameter required"));
    }
    let mut search = SearchRequest::new(&keywords);
    if let Some(k) = request.param("k") {
        search = search.k(k.parse().map_err(|_| invalid("bad k"))?);
    }
    if let Some(s) = request.param("s") {
        search = search.min_size(s.parse().map_err(|_| invalid("bad s"))?);
    }
    Ok(search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::{Fragment, FragmentId};
    use dash_relation::{Record, Value};

    #[test]
    fn update_bodies_roundtrip() {
        let changes = UpdateBody::Changes(vec![
            NetChange::Insert(RecordChange::new(
                "restaurant",
                Record::new(vec![Value::Int(1), Value::str("A")]),
            )),
            NetChange::Delete(RecordChange::new("comment", Record::new(vec![Value::Null]))),
        ]);
        assert_eq!(decode_update(&encode_update(&changes)).unwrap(), changes);
        let publish = UpdateBody::Publish(IndexDelta::new(
            vec![FragmentId::new(vec![Value::str("Thai"), Value::Int(10)])],
            vec![Fragment::new(
                FragmentId::new(vec![Value::str("Lao"), Value::Int(3)]),
                [("larb".to_string(), 2u64)].into_iter().collect(),
                1,
            )],
        ));
        assert_eq!(decode_update(&encode_update(&publish)).unwrap(), publish);
        assert!(decode_update(&[9, 9, 9]).is_err());
        assert!(decode_update(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_after_a_valid_update_body_are_rejected() {
        let publish = UpdateBody::Publish(IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("Lao"), Value::Int(3)]),
            [("larb".to_string(), 2u64)].into_iter().collect(),
            1,
        )]));
        let mut bytes = encode_update(&publish);
        assert!(decode_update(&bytes).is_ok(), "clean body decodes");
        // A concatenated/corrupted body must not decode as if clean.
        bytes.push(0);
        let err = decode_update(&bytes).expect_err("trailing byte rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut changes = encode_update(&UpdateBody::Changes(vec![NetChange::Insert(
            RecordChange::new("restaurant", Record::new(vec![Value::Int(1)])),
        )]));
        changes.extend_from_slice(b"junk");
        assert!(decode_update(&changes).is_err());
    }

    #[test]
    fn net_counters_snapshot_is_the_registry_view() {
        // `NetServer::counters` and the `dash_net_*` series must be
        // the same handles — bumping one view moves the other.
        let registry = dash_obs::Registry::new();
        let counters = event::Counters::new(&registry);
        counters.accepted.inc();
        counters.accepted.inc();
        counters.open.add(2);
        counters.open.sub(1);
        counters.shed_jobs.inc();
        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.open, 1);
        assert_eq!(snap.shed_jobs, 1);
        assert_eq!(snap.overflows, 0);
        let text = registry.render();
        assert!(text.contains("dash_net_accepted_total 2"), "{text}");
        assert!(text.contains("dash_net_open_connections 1"), "{text}");
        assert!(text.contains("dash_net_shed_jobs_total 1"), "{text}");
    }

    #[test]
    fn acks_roundtrip_through_json() {
        let ack = UpdateAck {
            removed: 3,
            added: 7,
            epoch: 12,
        };
        assert_eq!(ack_from_json(&ack_to_json(&ack)).unwrap(), ack);
    }
}
