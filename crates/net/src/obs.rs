//! The front-end's observability bundle: one [`Registry`] per
//! [`NetServer`](crate::NetServer) (tests run several fronts per
//! process; their counters must not bleed into each other), the
//! stage-latency histograms the event loop records into, and the
//! worst-N slow-request log behind `GET /debug/slow`.
//!
//! ## Metric names (`GET /metrics`)
//!
//! Everything the front-end records is `dash_net_*`; the exposition
//! additionally merges the backing `DashServer`'s `dash_serve_*`
//! registry and the process-global registry (`dash_shard_*`,
//! `dash_repl_*`, `dash_router_*`, `dash_ingest_*`) — one scrape
//! covers every layer. See the metrics reference table in the crate
//! docs ([`crate`]).
//!
//! Stage attribution: a request's life is `head → body → handle →
//! write`, measured from the event loop's own sweep clock (the
//! `Instant` each iteration already takes — tracing adds no clock
//! reads on the hot path beyond the span boundaries). `handle`
//! includes worker-queue wait; `dash_net_queue_wait_ns` isolates that
//! component.

use std::sync::Arc;

use dash_obs::{Counter, Gauge, Histogram, Registry, SlowLog};

/// Worst-request entries retained by the slow log.
const SLOW_CAPACITY: usize = 32;

/// Per-front-end observability state, shared by the event loop and
/// every worker.
#[derive(Debug)]
pub(crate) struct NetObs {
    /// This front-end's registry (`dash_net_*` series live here).
    pub(crate) registry: Arc<Registry>,
    /// Worst-N requests with per-stage breakdowns (`GET /debug/slow`).
    pub(crate) slow: SlowLog,
    /// Honor `debug_sleep_us` query parameters (test/diagnostic
    /// injection; off by default — see
    /// `NetConfig::allow_debug_sleep`).
    pub(crate) allow_debug_sleep: bool,
    /// Request-line + header read/parse time.
    pub(crate) head_ns: Arc<Histogram>,
    /// Body read time (zero-length bodies record ~0).
    pub(crate) body_ns: Arc<Histogram>,
    /// Dispatch → response ready (queue wait + route handling).
    pub(crate) handle_ns: Arc<Histogram>,
    /// Response flush time (first byte queued → last byte written).
    pub(crate) write_ns: Arc<Histogram>,
    /// End-to-end: first request byte → response fully written.
    pub(crate) request_ns: Arc<Histogram>,
    /// Time a job sat in the worker queue before a worker picked it up.
    pub(crate) queue_wait_ns: Arc<Histogram>,
    /// Jobs currently queued or running on the worker pool.
    pub(crate) queue_depth: Arc<Gauge>,
    /// Hot-sweep connection visits (readiness polls of active peers).
    pub(crate) hot_visits: Arc<Counter>,
    /// Cold-cursor connection visits (budgeted idle-peer polls).
    pub(crate) cold_visits: Arc<Counter>,
}

impl NetObs {
    pub(crate) fn new(allow_debug_sleep: bool) -> NetObs {
        let registry = Arc::new(Registry::new());
        NetObs {
            slow: SlowLog::new(SLOW_CAPACITY),
            allow_debug_sleep,
            head_ns: registry.histogram("dash_net_head_ns"),
            body_ns: registry.histogram("dash_net_body_ns"),
            handle_ns: registry.histogram("dash_net_handle_ns"),
            write_ns: registry.histogram("dash_net_write_ns"),
            request_ns: registry.histogram("dash_net_request_ns"),
            queue_wait_ns: registry.histogram("dash_net_queue_wait_ns"),
            queue_depth: registry.gauge("dash_net_queue_depth"),
            hot_visits: registry.counter("dash_net_hot_visits_total"),
            cold_visits: registry.counter("dash_net_cold_visits_total"),
            registry,
        }
    }
}

/// A process-global counter resolved once per call site — the bump
/// pattern the replication/routing layers use for metrics that have no
/// per-front-end home (a replica's sync thread outlives front-ends).
macro_rules! global_counter {
    ($name:literal) => {{
        static CELL: std::sync::OnceLock<std::sync::Arc<dash_obs::Counter>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| dash_obs::Registry::global().counter($name))
    }};
}
pub(crate) use global_counter;
