//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for the workspace to compile without
//! registry access: the `Serialize`/`Deserialize` marker traits and the
//! derive macros (which emit marker impls). No actual serialization runs
//! through these — Dash's persistence is the hand-rolled binary codec in
//! `dash-core::persist`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait implemented by the stand-in `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker trait implemented by the stand-in `#[derive(Deserialize)]`.
pub trait Deserialize {}
