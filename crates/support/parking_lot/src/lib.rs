//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (the only part of it the workspace uses). A poisoned std lock means a
//! panicking worker thread; propagating that panic matches parking_lot's
//! behavior closely enough for the simulated cluster.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        let readers = (l.read(), l.read());
        assert_eq!((*readers.0, *readers.1), (42, 42));
        drop(readers);
        assert_eq!(l.into_inner(), 42);
    }
}
