//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (the only part of it the workspace uses). A poisoned std lock means a
//! panicking worker thread; propagating that panic matches parking_lot's
//! behavior closely enough for the simulated cluster.

use std::sync::{self, MutexGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 800);
    }
}
