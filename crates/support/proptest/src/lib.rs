//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and tuple strategies, a small regex-subset
//! string strategy, `prop_oneof!` / `proptest!` / `prop_assert*!` macros,
//! `collection::vec`, `option::of` and `sample::select`.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   own name, so runs are reproducible with no persistence files —
//!   exactly what a tier-1 CI gate wants.
//! * **No shrinking**: a failing case reports its case number and panics.
//!   Re-running reproduces it verbatim (see above), so shrinking is a
//!   convenience, not a necessity.

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is overkill for a deterministic
            // runner with no shrinking; 64 keeps tier-1 fast.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vec-length specification.
    pub trait IntoSizeRange {
        /// The inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// A strategy generating vectors of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.random_range(self.min..=self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// A strategy generating `None` a quarter of the time and `Some` of
    /// the inner value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// A strategy picking one element of `choices` uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select { choices }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.random_range(0..self.choices.len())].clone()
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy's concrete type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = strategy::FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        strategy::FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (full domain for integer types).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` shorthand module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Derives a 64-bit seed from a test's name, so each property has its own
/// reproducible stream.
#[doc(hidden)]
pub fn seed_of(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The property-test entry macro. Accepts an optional
/// `#![proptest_config(..)]` header followed by test functions whose
/// arguments use `pattern in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::strategy::TestRng::from_seed(
                $crate::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

/// `prop_assert!`: panics (no shrinking) with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `prop_assert_eq!`: panics (no shrinking) with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `prop_assert_ne!`: panics (no shrinking) with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// `prop_oneof!`: a uniform union of same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}
