//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// The RNG driving all generation: a seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of an output type, with the combinators the
/// workspace's tests use. Unlike real proptest there is no shrinking:
/// `generate` produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating until one passes
    /// (panics after 1000 straight rejections, mirroring proptest's
    /// rejection cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `expand` wraps the strategy-so-far
    /// into a larger one, up to `levels` nestings deep. `_desired_size`
    /// and `_expected_branch` are accepted for API compatibility.
    fn prop_recursive<F, S>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..levels {
            // At each level, generation picks the shallower alternative
            // half the time, so depth stays bounded and varied.
            let deeper = expand(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 straight values: {}", self.reason);
    }
}

/// A uniform choice between type-erased alternatives (what
/// `prop_oneof!` expands to).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `alternatives` (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "empty prop_oneof!");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Full-domain strategy for primitives (what `any::<T>()` returns).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(pub PhantomData<T>);

macro_rules! full_range_ints {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
full_range_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// String-literal strategies: the literal is a regex (subset) and the
/// strategy generates matching strings. Supported syntax: literal
/// characters, `[...]` classes with ranges, `\PC` (printable
/// non-control), and `{n}` / `{m,n}` counts.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Piece {
    /// One of these characters, `min..=max` times.
    Class {
        chars: Vec<char>,
        min: u32,
        max: u32,
    },
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let class: Vec<char> = match c {
            '[' => {
                let mut raw = Vec::new();
                for m in chars.by_ref() {
                    if m == ']' {
                        break;
                    }
                    raw.push(m);
                }
                let mut set = Vec::new();
                let mut i = 0;
                while i < raw.len() {
                    // `lo-hi` range (a trailing or leading '-' is literal).
                    if i + 2 < raw.len() && raw[i + 1] == '-' {
                        for ch in raw[i]..=raw[i + 2] {
                            set.push(ch);
                        }
                        i += 3;
                    } else {
                        set.push(raw[i]);
                        i += 1;
                    }
                }
                set
            }
            '\\' => match chars.next() {
                // `\PC`: printable (non-control). ASCII printable is a
                // faithful subset for deterministic tests.
                Some('P') => {
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    (' '..='~').collect()
                }
                Some(escaped) => vec![escaped],
                None => vec!['\\'],
            },
            literal => vec![literal],
        };
        // Optional `{n}` / `{m,n}` count.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for m in chars.by_ref() {
                if m == '}' {
                    break;
                }
                spec.push(m);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece::Class {
            chars: class,
            min,
            max,
        });
    }
    pieces
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_pattern(pattern) {
        let Piece::Class { chars, min, max } = piece;
        if chars.is_empty() {
            continue;
        }
        let count = if min >= max {
            min
        } else {
            rng.random_range(min..=max)
        };
        for _ in 0..count {
            out.push(chars[rng.random_range(0..chars.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (0i64..5, 10u8..=12).generate(&mut r);
            assert!((0..5).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_filter_just() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|x| x * 2)
            .prop_filter("even>4", |x| *x > 4);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v > 4 && v % 2 == 0);
        }
        assert_eq!(Just(7).generate(&mut r), 7);
    }

    #[test]
    fn regex_subset_classes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "\\PC{0,60}".generate(&mut r);
            assert!(t.len() <= 60);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_covers_all_alternatives() {
        let mut r = rng();
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let mut r = rng();
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, rgt)| Tree::Node(Box::new(l), Box::new(rgt)))
            });
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }
}
