//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness subset the workspace's benches use
//! (`bench_function`, `benchmark_group`, `iter`, `iter_batched`,
//! `criterion_group!` / `criterion_main!`) with a lean wall-clock
//! protocol: warm up briefly, then time fixed-size batches and report the
//! median. On top of the human-readable output every run writes a
//! machine-readable `BENCH_<suite>.json` (p50 ns/iter + ops/s per
//! benchmark) so successive PRs can track the perf trajectory — set
//! `DASH_BENCH_DIR` to choose where, defaulting to the working directory.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs every
/// variant one setup per measured batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark path (`group/name` or bare name).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub p50_ns: f64,
    /// Iterations per second implied by the median.
    pub ops_per_sec: f64,
    /// Samples taken.
    pub samples: usize,
    /// The process's peak resident set size when the measurement was
    /// recorded, in bytes (`VmHWM` from `/proc/self/status` on Linux,
    /// 0 where unavailable). Scale suites track memory alongside
    /// latency with this — note it is a process high-water mark, so it
    /// only ever grows across a suite's rows.
    pub peak_rss_bytes: u64,
}

/// The process's peak resident set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, 0 on other platforms (the stand-in
/// has no libc to ask). A high-water mark — monotone over the process
/// lifetime.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kib * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurements: Vec<Measurement>,
    sample_size: usize,
    measure_time: Duration,
    warmup_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
        Criterion {
            measurements: Vec::new(),
            sample_size: if fast { 10 } else { 30 },
            measure_time: Duration::from_millis(if fast { 60 } else { 400 }),
            warmup_time: Duration::from_millis(if fast { 20 } else { 120 }),
        }
    }
}

/// The per-benchmark timing callback target.
pub struct Bencher<'a> {
    runner: &'a BenchRunner,
    result: Option<Measurement>,
    name: String,
}

struct BenchRunner {
    sample_size: usize,
    measure_time: Duration,
    warmup_time: Duration,
}

impl BenchRunner {
    /// Times `routine` (already closed over its input production) and
    /// returns the median ns/iter over `sample_size` samples.
    fn run<F: FnMut(u64) -> Duration>(&self, mut batch: F) -> (f64, usize) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        let mut per_iter = Duration::from_nanos(100);
        while warm_start.elapsed() < self.warmup_time {
            let spent = batch(1);
            iters_done += 1;
            if spent > Duration::ZERO {
                per_iter = spent;
            }
        }
        let _ = iters_done;
        // Pick a batch size so one sample lasts roughly
        // measure_time / sample_size.
        let target = self.measure_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch_iters = (target / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let spent = batch(batch_iters);
            samples.push(spent.as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        (samples[samples.len() / 2], samples.len())
    }
}

impl Bencher<'_> {
    /// Times `routine` run back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let (p50_ns, samples) = self.runner.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                hint_black_box(routine());
            }
            start.elapsed()
        });
        self.record(p50_ns, samples);
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let (p50_ns, samples) = self.runner.run(|iters| {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                hint_black_box(routine(input));
                spent += start.elapsed();
            }
            spent
        });
        self.record(p50_ns, samples);
    }

    fn record(&mut self, p50_ns: f64, samples: usize) {
        self.result = Some(Measurement {
            name: self.name.clone(),
            p50_ns,
            ops_per_sec: if p50_ns > 0.0 { 1e9 / p50_ns } else { 0.0 },
            samples,
            peak_rss_bytes: peak_rss_bytes(),
        });
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let runner = BenchRunner {
            sample_size: self.sample_size,
            measure_time: self.measure_time,
            warmup_time: self.warmup_time,
        };
        let mut bencher = Bencher {
            runner: &runner,
            result: None,
            name: name.to_string(),
        };
        f(&mut bencher);
        if let Some(m) = bencher.result {
            println!(
                "{:<48} time: [{}]  ({:.0} ops/s)",
                m.name,
                format_ns(m.p50_ns),
                m.ops_per_sec
            );
            self.measurements.push(m);
        }
        self
    }

    /// Opens a named group; benchmark names gain a `group/` prefix.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Records an externally measured value under the standard report
    /// schema (printed and written to the JSON like any benchmark).
    /// Suites whose harness produces its own statistics — e.g. a
    /// closed-loop load generator reporting p99 latency and sustained
    /// qps, which no `iter()` loop can express — use this to land
    /// their rows in the same `BENCH_<suite>.json` trajectory.
    pub fn record_measurement(&mut self, name: &str, p50_ns: f64, ops_per_sec: f64) -> &mut Self {
        let m = Measurement {
            name: name.to_string(),
            p50_ns,
            ops_per_sec,
            samples: 1,
            peak_rss_bytes: peak_rss_bytes(),
        };
        println!(
            "{:<48} time: [{}]  ({:.0} ops/s)",
            m.name,
            format_ns(m.p50_ns),
            m.ops_per_sec
        );
        self.measurements.push(m);
        self
    }

    /// Writes `BENCH_<suite>.json` into `DASH_BENCH_DIR` (default: cwd).
    pub fn write_report(&self, suite: &str) {
        if self.measurements.is_empty() {
            return;
        }
        let dir = std::env::var("DASH_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{suite}.json");
        let mut json = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"name\": \"{}\", \"p50_ns\": {:.1}, \"ops_per_sec\": {:.1}, \"samples\": {}, \
                 \"peak_rss_bytes\": {}}}",
                m.name.replace('"', "'"),
                m.p50_ns,
                m.ops_per_sec,
                m.samples,
                m.peak_rss_bytes
            ));
        }
        json.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// A group of related benchmarks (`criterion.benchmark_group(..)`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(&full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (bookkeeping only).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors `criterion_group!`: defines a runner function executing the
/// listed benchmark functions against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: defines `main`, runs every group and writes
/// the JSON report (suite name = benchmark binary stem).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.write_report(&$crate::suite_name());
        }
    };
}

/// The suite name for reports: the benchmark executable's stem, minus
/// cargo's `-<hash>` suffix.
pub fn suite_name() -> String {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match exe.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            stem.to_string()
        }
        _ => exe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("DASH_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("noop-ish", |b| b.iter(|| black_box(1u64 + 1)));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].p50_ns >= 0.0);
        assert!(c.measurements()[0].ops_per_sec > 0.0);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "a running process has a resident set");
        }
        std::env::set_var("DASH_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.record_measurement("row", 100.0, 1e7);
        // The mark is monotone; concurrent tests may grow it between
        // the two reads, so assert ordering, not equality.
        assert!(c.measurements()[0].peak_rss_bytes <= peak_rss_bytes());
    }

    #[test]
    fn groups_prefix_names() {
        std::env::set_var("DASH_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("x", |b| b.iter(|| black_box(2u64 * 2)));
        g.finish();
        assert_eq!(c.measurements()[0].name, "grp/x");
    }
}
