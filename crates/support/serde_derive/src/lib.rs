//! Offline stand-in for `serde_derive`.
//!
//! The real crates-io registry is unreachable in this build environment,
//! and nothing in the workspace actually serializes through serde (the
//! persistence layer is a hand-rolled binary codec). The `Serialize` /
//! `Deserialize` derives therefore only need to *exist* so that
//! `#[derive(Serialize, Deserialize)]` attributes on workspace types
//! compile; they emit marker-trait impls for the annotated type.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generic parameter names)` of the annotated item by
/// scanning for the identifier after `struct`/`enum` and the parameter
/// identifiers inside its `<...>` list (bounds and defaults are skipped).
fn type_header(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter();
    // Skip attributes and visibility until the struct/enum keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name?;
    // Collect generic parameter names, if a `<...>` group follows.
    let mut params = Vec::new();
    let mut rest = tokens.peekable();
    if matches!(rest.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        rest.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        for tt in rest.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Ident(ident) if depth == 1 && expect_param => {
                    let word = ident.to_string();
                    if word != "const" {
                        params.push(word);
                        expect_param = false;
                    }
                }
                _ => {
                    if depth == 1 {
                        expect_param = false;
                    }
                }
            }
        }
    }
    Some((name, params))
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let Some((name, params)) = type_header(input) else {
        return TokenStream::new();
    };
    let generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    format!("impl{generics} {trait_path} for {name}{generics} {{}}")
        .parse()
        .unwrap_or_default()
}

/// Stand-in `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Stand-in `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
