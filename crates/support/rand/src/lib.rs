//! Offline stand-in for `rand`.
//!
//! Implements the subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `RngExt::random_range` over integer
//! and float ranges — on top of xoshiro256++ seeded via splitmix64.
//! Deterministic for a given seed (the dataset generators and keyword
//! samplers rely on that), with no claim of crates-io `StdRng` stream
//! compatibility.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Range sampling helpers, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range, like the
    /// real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// A range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire); the
/// slight modulo bias is irrelevant at the workspace's sample counts.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Distributions beyond the uniform ranges, mirroring `rand_distr`.
pub mod distr {
    use super::{RngCore, RngExt};

    /// A Zipf distribution over ranks `0..n`: rank `i` is drawn with
    /// probability proportional to `1 / (i + 1)^s`. This is the
    /// workspace's one model of skewed popularity — the scale-corpus
    /// generator draws keyword and term-frequency ranks from it, and
    /// `loadgen` draws query keywords from the *same* distribution so
    /// benchmark traffic hits the corpus the way it was built (hot
    /// terms dominate both).
    ///
    /// Sampling is inverse-CDF over a precomputed cumulative table:
    /// O(n) memory once, O(log n) per draw, exact for any `s ≥ 0`
    /// (`s = 0` degenerates to uniform). Deterministic for a given
    /// generator stream.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        /// `cdf[i]` = P(rank ≤ i); the last entry is 1.0.
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// A Zipf distribution over `n` ranks with exponent `s`.
        ///
        /// # Panics
        ///
        /// Panics when `n == 0` or `s` is negative/non-finite.
        pub fn new(n: usize, s: f64) -> Zipf {
            assert!(n > 0, "cannot build a Zipf distribution over 0 ranks");
            assert!(
                s >= 0.0 && s.is_finite(),
                "Zipf exponent must be finite and non-negative"
            );
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for i in 0..n {
                total += 1.0 / ((i + 1) as f64).powf(s);
                cdf.push(total);
            }
            for p in &mut cdf {
                *p /= total;
            }
            // Guard against summation round-off leaving the tail short.
            *cdf.last_mut().expect("n > 0") = 1.0;
            Zipf { cdf }
        }

        /// Draws one rank in `0..len()`.
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let u: f64 = rng.random_range(0.0..1.0);
            self.cdf
                .partition_point(|&p| p <= u)
                .min(self.cdf.len() - 1)
        }

        /// Number of ranks the distribution draws from.
        pub fn len(&self) -> usize {
            self.cdf.len()
        }

        /// Whether the distribution has no ranks (never true — `new`
        /// rejects `n == 0` — but the conventional pair of `len`).
        pub fn is_empty(&self) -> bool {
            self.cdf.is_empty()
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = super::distr::Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 100);
            counts[rank] += 1;
        }
        // Rank 0 must dwarf the tail; the head must carry most mass.
        assert!(
            counts[0] > 10 * counts[50].max(1),
            "head {:?}",
            &counts[..3]
        );
        let head: usize = counts[..10].iter().sum();
        assert!(head > 5_000, "head mass {head}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = super::distr::Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let zipf = super::distr::Zipf::new(1000, 1.0);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1 << 60)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1 << 60)).collect();
        assert_ne!(xs, ys);
    }
}
