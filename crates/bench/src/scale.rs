//! Synthetic million-fragment corpus generation (ROADMAP item 3).
//!
//! Every corpus the repo benched before this module existed was tiny
//! (fooddb ≈5 fragments, TPC-H Q2 micro), so the columnar/delta
//! design's O(affected-group) claims were never *measured*. This
//! generator emits deterministic, seeded fragment corpora in the TPC-H
//! Q2 shape — identifier `[Int(custkey), Int(quantity)]`, equality
//! group = custkey, range attribute = quantity — at configurable scale:
//! fragment counts into the millions, configurable equality-group
//! count (and thereby size), Zipf-distributed keyword popularity and
//! term frequencies (natural-language-shaped skew, the same
//! [`rand::distr::Zipf`] sampler `loadgen` draws query keywords from).
//!
//! **Streaming**: fragments are produced group by group —
//! [`ScaleCorpus::shard_batches`] yields one shard's worth at a time,
//! so building a sharded engine over a million fragments never holds
//! the whole corpus and the indexes in memory together
//! (the builder's [`IngestSource::Batches`] consumes and drops each
//! batch before the next is generated).
//!
//! **Deterministic**: every fragment is a pure function of
//! `(seed, group, quantity)` — its RNG stream is derived from those
//! three alone, so any slice of the corpus (one batch, one group, one
//! re-generated fragment for delta traffic) reproduces bit-identically
//! regardless of iteration order.
//!
//! [`IngestSource::Batches`]: dash_core::IngestSource::Batches

use std::collections::BTreeMap;

use dash_core::{Fragment, FragmentId};
use dash_relation::Value;
use rand::distr::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of one synthetic corpus. The default is the scale tier's
/// reference shape: 1M fragments over 10k equality groups (100
/// fragments each), a 20k-word vocabulary at Zipf 1.1, ~6 distinct
/// keywords per fragment.
#[derive(Debug, Clone)]
pub struct ScaleCorpus {
    /// Total fragments to emit.
    pub fragments: usize,
    /// Equality-group (custkey) count; group size is
    /// `fragments / groups` (the last group takes the remainder).
    pub groups: usize,
    /// Keyword vocabulary size. Words are ranked hot-first: rank 0 is
    /// the most popular term ([`ScaleCorpus::vocab`] returns them in
    /// that order, ready for a skewed `loadgen` profile).
    pub vocab: usize,
    /// Zipf exponent of keyword popularity (which terms a fragment
    /// mentions).
    pub keyword_skew: f64,
    /// Zipf exponent of term frequency (how often a mentioned term
    /// repeats inside the fragment).
    pub tf_skew: f64,
    /// Distinct keyword draws per fragment (duplicates merge, so the
    /// realized distinct count is slightly lower under heavy skew).
    pub keywords_per_fragment: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for ScaleCorpus {
    fn default() -> Self {
        ScaleCorpus {
            fragments: 1_000_000,
            groups: 10_000,
            vocab: 20_000,
            keyword_skew: 1.1,
            tf_skew: 1.3,
            keywords_per_fragment: 6,
            seed: 0x5CA1E,
        }
    }
}

/// The scale cap from the environment (`DASH_SCALE_FRAGMENTS`), or
/// `default` when unset/unparsable. CI's `scale` job caps the smoke
/// run to ~100k fragments with this; the full tier runs at 1M.
pub fn env_fragments(default: usize) -> usize {
    std::env::var("DASH_SCALE_FRAGMENTS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl ScaleCorpus {
    /// A corpus of `fragments` total fragments keeping the default
    /// shape's ratios (1 group per 100 fragments, 1 vocab word per 50),
    /// with floors so tiny smoke corpora stay well-formed.
    pub fn sized(fragments: usize) -> Self {
        let fragments = fragments.max(1);
        ScaleCorpus {
            fragments,
            groups: (fragments / 100).max(1),
            vocab: (fragments / 50).max(100),
            ..ScaleCorpus::default()
        }
    }

    /// The vocabulary, hot-first: `word(0)` is the most popular term.
    /// Feed this (with a matching `keyword_skew`) to a `loadgen`
    /// profile and query traffic draws from the same skewed
    /// distribution the corpus was built with.
    pub fn vocab(&self) -> Vec<String> {
        (0..self.vocab).map(word).collect()
    }

    /// Fragments of one equality group (custkey `group + 1`), in
    /// identifier order — quantities `1..=size(group)`. Pure: depends
    /// only on the corpus shape and seed.
    pub fn group_fragments(&self, group: usize) -> Vec<Fragment> {
        let kw = Zipf::new(self.vocab, self.keyword_skew);
        self.group_with(&kw, group)
    }

    /// One specific fragment, regenerated from scratch — delta traffic
    /// uses this to rebuild (and then perturb) fragments it wants to
    /// upsert, without holding the corpus.
    pub fn fragment(&self, group: usize, quantity: i64) -> Fragment {
        let kw = Zipf::new(self.vocab, self.keyword_skew);
        self.fragment_with(&kw, group, quantity)
    }

    /// The corpus as `shards` contiguous batches of whole equality
    /// groups, balanced by fragment count — exactly the partition
    /// contract the `IngestSource::Batches` build expects
    /// (contiguous, disjoint, ascending group-key runs). Each batch is
    /// generated lazily; drop it before pulling the next and peak
    /// memory stays one shard's worth.
    pub fn shard_batches(&self, shards: usize) -> impl Iterator<Item = Vec<Fragment>> + '_ {
        let shards = shards.max(1);
        let kw = Zipf::new(self.vocab, self.keyword_skew);
        let bounds: Vec<(usize, usize)> = (0..shards)
            .map(|s| (s * self.groups / shards, (s + 1) * self.groups / shards))
            .collect();
        bounds.into_iter().map(move |(lo, hi)| {
            let mut batch = Vec::new();
            for group in lo..hi {
                batch.extend(self.group_with(&kw, group));
            }
            batch
        })
    }

    /// Fragments of group `group` against a prebuilt keyword sampler
    /// (the cumulative table is O(vocab) — build it once per sweep,
    /// not once per group).
    fn group_with(&self, kw: &Zipf, group: usize) -> Vec<Fragment> {
        (1..=self.group_size(group) as i64)
            .map(|quantity| self.fragment_with(kw, group, quantity))
            .collect()
    }

    /// Fragment count of group `group`: the even share, plus the
    /// remainder on the last group.
    fn group_size(&self, group: usize) -> usize {
        let base = self.fragments / self.groups.max(1);
        if group + 1 == self.groups {
            base + self.fragments % self.groups.max(1)
        } else {
            base
        }
    }

    fn fragment_with(&self, kw: &Zipf, group: usize, quantity: i64) -> Fragment {
        // Stream derived from (seed, group, quantity) alone: splitmix64
        // seeding decorrelates even adjacent coordinates.
        let coords = ((group as u64) << 24) ^ quantity as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ coords.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let tf = Zipf::new(64, self.tf_skew);
        let mut occurrences: BTreeMap<String, u64> = BTreeMap::new();
        for _ in 0..self.keywords_per_fragment.max(1) {
            let count = tf.sample(&mut rng) as u64 + 1;
            *occurrences.entry(word(kw.sample(&mut rng))).or_insert(0) += count;
        }
        let record_count = rng.random_range(1u64..=4);
        Fragment::new(
            FragmentId::new(vec![Value::Int(group as i64 + 1), Value::Int(quantity)]),
            occurrences,
            record_count,
        )
    }
}

/// The vocabulary word at `rank` (0 = hottest). Fixed-width so lexical
/// order equals rank order.
fn word(rank: usize) -> String {
    format!("kw{rank:06}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleCorpus {
        ScaleCorpus {
            fragments: 250,
            groups: 10,
            vocab: 200,
            ..ScaleCorpus::default()
        }
    }

    #[test]
    fn emits_exactly_the_configured_count_with_unique_ids() {
        let corpus = tiny();
        let all: Vec<Fragment> = corpus.shard_batches(4).flatten().collect();
        assert_eq!(all.len(), 250);
        let ids: std::collections::BTreeSet<_> = all.iter().map(|f| f.id.clone()).collect();
        assert_eq!(ids.len(), 250, "identifiers must be unique");
    }

    #[test]
    fn batches_are_contiguous_ascending_group_runs() {
        let corpus = tiny();
        let batches: Vec<Vec<Fragment>> = corpus.shard_batches(3).collect();
        assert_eq!(batches.len(), 3);
        let mut prev_max: Option<Value> = None;
        for batch in &batches {
            assert!(!batch.is_empty());
            let keys: Vec<&Value> = batch.iter().map(|f| &f.id.0[0]).collect();
            let lo = keys.iter().min().unwrap();
            if let Some(p) = &prev_max {
                assert!(*lo > p, "shard key ranges must ascend");
            }
            prev_max = Some((*keys.iter().max().unwrap()).clone());
        }
    }

    #[test]
    fn generation_is_deterministic_and_order_independent() {
        let corpus = tiny();
        let one: Vec<Fragment> = corpus.shard_batches(1).flatten().collect();
        let four: Vec<Fragment> = corpus.shard_batches(4).flatten().collect();
        assert_eq!(one, four, "partitioning must not change the corpus");
        // A single regenerated fragment matches its in-corpus twin.
        let probe = &one[42];
        let (group, quantity) = match (&probe.id.0[0], &probe.id.0[1]) {
            (Value::Int(g), Value::Int(q)) => ((*g - 1) as usize, *q),
            other => panic!("unexpected id shape {other:?}"),
        };
        assert_eq!(&corpus.fragment(group, quantity), probe);
    }

    #[test]
    fn keyword_popularity_is_skewed_hot_first() {
        let corpus = tiny();
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for fragment in corpus.shard_batches(1).flatten() {
            for term in fragment.keyword_occurrences.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
        }
        let hot = df.get(&word(0)).copied().unwrap_or(0);
        let cold = df.get(&word(150)).copied().unwrap_or(0);
        assert!(hot > 4 * cold.max(1), "hot {hot} vs cold {cold}");
    }

    #[test]
    fn env_cap_parses_and_falls_back() {
        // Parser behavior only (mutating the environment races other
        // test threads): unset/garbage falls back to the default.
        assert_eq!(env_fragments(123), 123);
    }

    #[test]
    fn sized_keeps_ratio_floors() {
        let small = ScaleCorpus::sized(30);
        assert_eq!(small.groups, 1);
        assert_eq!(small.vocab, 100);
        let big = ScaleCorpus::sized(1_000_000);
        assert_eq!(big.groups, 10_000);
        assert_eq!(big.vocab, 20_000);
    }
}
