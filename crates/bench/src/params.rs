//! Table I — the experiment parameter grid.

use dash_tpch::Scale;

/// Dataset scales evaluated (Table I row 1).
pub const DATASETS: [Scale; 3] = [Scale::Small, Scale::Medium, Scale::Large];

/// Requested result counts `k` (Table I row 3).
pub const K_VALUES: [usize; 4] = [1, 5, 10, 20];

/// Db-page size thresholds `s` (Table I row 4).
pub const S_VALUES: [u64; 4] = [100, 200, 500, 1000];

/// Keywords sampled per temperature class (Section VII-B: "30 hot
/// keywords, 30 warm keywords and 30 cold keywords").
pub const KEYWORDS_PER_CLASS: usize = 30;

/// Query identifiers evaluated (Table I row 2).
pub const QUERY_NAMES: [&str; 3] = ["Q1", "Q2", "Q3"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_table_1() {
        assert_eq!(DATASETS.len(), 3);
        assert_eq!(K_VALUES, [1, 5, 10, 20]);
        assert_eq!(S_VALUES, [100, 200, 500, 1000]);
        assert_eq!(KEYWORDS_PER_CLASS, 30);
    }
}
