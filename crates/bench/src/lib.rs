//! # dash-bench
//!
//! The experiment harness regenerating every table and figure of the Dash
//! paper's evaluation (Section VII). Each binary prints the same rows or
//! series the paper reports:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I — experiment parameter grid |
//! | `table2` | Table II — dataset sizes per relation |
//! | `table3` | Table III — application queries Q1/Q2/Q3 |
//! | `fig10`  | Figure 10 — crawl+index elapsed time, SW vs INT, stacked phase breakdown |
//! | `table4` | Table IV — fragment-graph build time, #fragments, avg keywords |
//! | `fig11`  | Figure 11 — top-k search latency vs `s`, `k`, keyword temperature |
//! | `ablation` | fragments vs the naive all-pages baseline (motivating comparison) |
//!
//! Run `cargo run -p dash-bench --release --bin <name>`; `fig10`, `table4`
//! and `fig11` accept an optional scale argument (`small`, `medium`,
//! `large`) to trim runtime. Criterion micro-benchmarks live under
//! `benches/`.
//!
//! Every `cargo bench` run also writes a machine-readable
//! `BENCH_<suite>.json` (per-benchmark p50 ns/iter and ops/s) into
//! `DASH_BENCH_DIR` (default: the working directory), so successive PRs
//! can track the build/search perf trajectory; set `DASH_BENCH_FAST=1`
//! for a quick smoke pass.

pub mod datasets;
pub mod experiments;
pub mod keywords;
pub mod params;
pub mod report;
pub mod scale;

pub use datasets::{application_for, dataset, QueryId};
pub use keywords::{select_keywords, KeywordTemperature};
