//! Hot/warm/cold keyword selection (Section VII-B).
//!
//! "We order all keywords according to their DFs. Among all those, 30 hot
//! keywords, 30 warm keywords and 30 cold keywords are extracted from top
//! 10%, middle 10% and bottom 10% of the keywords."

use dash_core::DashEngine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Keyword frequency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeywordTemperature {
    /// Sampled from the top 10% by fragment frequency.
    Hot,
    /// Sampled from the middle 10%.
    Warm,
    /// Sampled from the bottom 10%.
    Cold,
}

impl KeywordTemperature {
    /// All three, hottest first.
    pub fn all() -> [KeywordTemperature; 3] {
        [
            KeywordTemperature::Hot,
            KeywordTemperature::Warm,
            KeywordTemperature::Cold,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KeywordTemperature::Hot => "hot",
            KeywordTemperature::Warm => "warm",
            KeywordTemperature::Cold => "cold",
        }
    }
}

/// Samples `count` keywords of the requested temperature from the
/// engine's fragment-frequency distribution, deterministically for a
/// given seed.
pub fn select_keywords(
    engine: &DashEngine,
    temperature: KeywordTemperature,
    count: usize,
    seed: u64,
) -> Vec<String> {
    let ranked = engine.index().inverted.keywords_by_df();
    if ranked.is_empty() {
        return Vec::new();
    }
    let n = ranked.len();
    let decile = (n / 10).max(1);
    let slice: Vec<&(&str, usize)> = match temperature {
        KeywordTemperature::Hot => ranked.iter().take(decile).collect(),
        KeywordTemperature::Warm => {
            let mid = n / 2;
            let lo = mid.saturating_sub(decile / 2);
            ranked.iter().skip(lo).take(decile).collect()
        }
        KeywordTemperature::Cold => ranked.iter().skip(n - decile).collect(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let pick = slice[rng.random_range(0..slice.len())];
        out.push(pick.0.to_string());
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::DashConfig;
    use dash_webapp::fooddb;

    #[test]
    fn temperatures_order_by_df() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        let hot = select_keywords(&engine, KeywordTemperature::Hot, 5, 1);
        let cold = select_keywords(&engine, KeywordTemperature::Cold, 5, 1);
        assert!(!hot.is_empty());
        assert!(!cold.is_empty());
        let df = |w: &str| engine.index().inverted.df(w);
        let max_cold = cold.iter().map(|w| df(w)).max().unwrap();
        let max_hot = hot.iter().map(|w| df(w)).max().unwrap();
        assert!(max_hot >= max_cold);
    }

    #[test]
    fn deterministic_for_seed() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        let a = select_keywords(&engine, KeywordTemperature::Warm, 10, 7);
        let b = select_keywords(&engine, KeywordTemperature::Warm, 10, 7);
        assert_eq!(a, b);
    }
}
