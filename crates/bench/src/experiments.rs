//! The experiment implementations behind the report binaries.

use std::time::Instant;

use dash_core::baseline::NaiveEngine;
use dash_core::{CrawlAlgorithm, DashConfig, DashEngine, FragmentGraph, SearchRequest};
use dash_mapreduce::ClusterConfig;
use dash_tpch::Scale;

use crate::datasets::{application_for, dataset, QueryId};
use crate::keywords::{select_keywords, KeywordTemperature};
use crate::params::{KEYWORDS_PER_CLASS, K_VALUES, S_VALUES};

/// One bar of Figure 10: a (scale, query, algorithm) cell with its
/// stacked per-phase simulated elapsed time.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Dataset scale name.
    pub scale: &'static str,
    /// Query name.
    pub query: &'static str,
    /// `"SW"` or `"INT"`.
    pub algorithm: &'static str,
    /// Per-phase simulated seconds, in workflow order (the stacked bar).
    pub breakdown: Vec<(String, f64)>,
    /// Total simulated elapsed seconds (the bar height).
    pub total_secs: f64,
    /// Total bytes shuffled (the quantity INT minimizes).
    pub shuffle_bytes: u64,
    /// Real wall-clock seconds of the in-process execution.
    pub wall_secs: f64,
    /// Number of fragments derived.
    pub fragments: usize,
}

/// Runs the Figure 10 grid: both algorithms × the given queries × scales.
pub fn fig10(scales: &[Scale], queries: &[QueryId], cluster: &ClusterConfig) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for &scale in scales {
        let db = dataset(scale);
        for &query in queries {
            let app = application_for(query, &db);
            for (algorithm, name) in [
                (CrawlAlgorithm::Stepwise, "SW"),
                (CrawlAlgorithm::Integrated, "INT"),
            ] {
                let out = dash_core::crawl::run(&app, &db, cluster, algorithm)
                    .expect("crawl succeeds on generated data");
                rows.push(Fig10Row {
                    scale: scale.name(),
                    query: query.name(),
                    algorithm: name,
                    breakdown: out.stats.label_breakdown(),
                    total_secs: out.stats.sim_total_secs(),
                    shuffle_bytes: out.stats.shuffle_bytes(),
                    wall_secs: out.stats.wall_total_secs(),
                    fragments: out.fragments.len(),
                });
            }
        }
    }
    rows
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Query name.
    pub query: &'static str,
    /// Fragment-graph build time, seconds (single machine, as in the
    /// paper).
    pub build_secs: f64,
    /// Number of db-page fragments.
    pub fragments: usize,
    /// Average keywords per fragment.
    pub avg_keywords: f64,
    /// Graph edges (extra diagnostic; not in the paper's table).
    pub edges: usize,
}

/// Runs Table IV for the given scale (the paper uses medium).
pub fn table4(scale: Scale, cluster: &ClusterConfig) -> Vec<Table4Row> {
    let db = dataset(scale);
    QueryId::all()
        .into_iter()
        .map(|query| {
            let app = application_for(query, &db);
            let out = dash_core::crawl::run(&app, &db, cluster, CrawlAlgorithm::Integrated)
                .expect("crawl succeeds on generated data");
            let catalog = dash_core::FragmentCatalog::from_fragments(&out.fragments);
            let graph =
                FragmentGraph::build(&catalog, &out.fragments, app.query.range_selection_index())
                    .expect("graph builds from crawl output");
            Table4Row {
                query: query.name(),
                build_secs: graph.build_secs(),
                fragments: graph.node_count(),
                avg_keywords: graph.avg_keywords(),
                edges: graph.edge_count(),
            }
        })
        .collect()
}

/// One cell of Figure 11: average search latency for a
/// (temperature, s, k) setting.
#[derive(Debug, Clone)]
pub struct Fig11Cell {
    /// Keyword temperature class.
    pub temperature: &'static str,
    /// Size threshold `s`.
    pub s: u64,
    /// Result count `k`.
    pub k: usize,
    /// Average elapsed milliseconds per search.
    pub avg_ms: f64,
    /// Average number of hits actually returned.
    pub avg_hits: f64,
}

/// Builds the engine Figure 11 measures (Q2 on the given scale — the
/// paper's configuration with `medium`).
pub fn fig11_engine(scale: Scale, cluster: &ClusterConfig) -> DashEngine {
    let db = dataset(scale);
    let app = application_for(QueryId::Q2, &db);
    DashEngine::build(
        &app,
        &db,
        &DashConfig {
            cluster: cluster.clone(),
            algorithm: CrawlAlgorithm::Integrated,
            ..DashConfig::default()
        },
    )
    .expect("engine builds on generated data")
}

/// Runs the Figure 11 grid against a prebuilt engine.
pub fn fig11(engine: &DashEngine) -> Vec<Fig11Cell> {
    let mut cells = Vec::new();
    for temperature in KeywordTemperature::all() {
        let keywords = select_keywords(engine, temperature, KEYWORDS_PER_CLASS, 0xF16);
        for &s in &S_VALUES {
            for &k in &K_VALUES {
                let mut total = std::time::Duration::ZERO;
                let mut hits_total = 0usize;
                for kw in &keywords {
                    let request = SearchRequest::new(&[kw.as_str()]).k(k).min_size(s);
                    let start = Instant::now();
                    let hits = engine.search(&request);
                    total += start.elapsed();
                    hits_total += hits.len();
                }
                let n = keywords.len().max(1) as f64;
                cells.push(Fig11Cell {
                    temperature: temperature.name(),
                    s,
                    k,
                    avg_ms: total.as_secs_f64() * 1000.0 / n,
                    avg_hits: hits_total as f64 / n,
                });
            }
        }
    }
    cells
}

/// One row of the fragments-vs-naive ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What is being counted.
    pub metric: &'static str,
    /// Value for Dash's fragment index.
    pub fragment_index: String,
    /// Value for the naive all-pages index.
    pub naive_index: String,
}

/// Compares Dash's fragment index against the naive all-pages baseline on
/// one query (Section IV's motivating argument, quantified).
pub fn ablation(scale: Scale, query: QueryId, max_pages: usize) -> Vec<AblationRow> {
    let db = dataset(scale);
    let app = application_for(query, &db);
    let fragments =
        dash_core::crawl::reference::fragments(&app, &db).expect("reference crawl succeeds");
    let engine = DashEngine::from_fragments(
        app.clone(),
        &fragments,
        dash_mapreduce::WorkflowStats::new(),
    )
    .expect("engine builds");
    let naive = NaiveEngine::from_fragments(app, &fragments, max_pages).expect("baseline builds");
    let naive_stats = naive.stats();

    let fragment_postings: usize = engine
        .index()
        .inverted
        .keywords_by_df()
        .iter()
        .map(|(_, df)| df)
        .sum();
    let truncated = if naive_stats.truncated {
        " (capped)"
    } else {
        ""
    };

    vec![
        AblationRow {
            metric: "indexed documents",
            fragment_index: engine.fragment_count().to_string(),
            naive_index: format!("{}{truncated}", naive_stats.pages),
        },
        AblationRow {
            metric: "total postings",
            fragment_index: fragment_postings.to_string(),
            naive_index: format!("{}{truncated}", naive_stats.total_postings),
        },
        AblationRow {
            metric: "indexed keyword occurrences",
            fragment_index: fragments
                .iter()
                .map(|f| f.total_keywords)
                .sum::<u64>()
                .to_string(),
            naive_index: format!("{}{truncated}", naive_stats.total_keywords),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cluster() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn fig10_small_q1_shapes() {
        let rows = fig10(&[Scale::Small], &[QueryId::Q1], &fast_cluster());
        assert_eq!(rows.len(), 2);
        let sw = &rows[0];
        let int = &rows[1];
        assert_eq!(sw.algorithm, "SW");
        assert_eq!(int.algorithm, "INT");
        // Both derive the same fragments.
        assert_eq!(sw.fragments, int.fragments);
        // INT shuffles fewer bytes even when job startup makes it slower
        // on tiny operands.
        assert!(int.shuffle_bytes < sw.shuffle_bytes);
        assert_eq!(sw.breakdown.len(), 3); // SW-Jn, SW-Grp, SW-Idx
        assert_eq!(int.breakdown.len(), 3); // INT-Jn, INT-Ext, INT-Cnsd
    }

    #[test]
    fn table4_reports_all_queries() {
        let rows = table4(Scale::Small, &fast_cluster());
        assert_eq!(rows.len(), 3);
        // Q2 and Q3 share selection attributes → identical fragment
        // counts (the paper's Table IV shows 7,481,097 for both).
        assert_eq!(rows[1].fragments, rows[2].fragments);
        // Q3 joins `part` in, so its fragments carry more keywords.
        assert!(rows[2].avg_keywords > rows[1].avg_keywords);
    }

    #[test]
    fn fig11_latency_grid() {
        let engine = fig11_engine(Scale::Small, &fast_cluster());
        let cells = fig11(&engine);
        assert_eq!(cells.len(), 3 * S_VALUES.len() * K_VALUES.len());
        assert!(cells.iter().all(|c| c.avg_ms >= 0.0));
        // Hot keywords return hits.
        let hot_hits: f64 = cells
            .iter()
            .filter(|c| c.temperature == "hot")
            .map(|c| c.avg_hits)
            .sum();
        assert!(hot_hits > 0.0);
    }

    #[test]
    fn ablation_shows_redundancy() {
        let rows = ablation(Scale::Small, QueryId::Q1, 2_000_000);
        let docs_frag: usize = rows[0].fragment_index.parse().unwrap();
        let docs_naive: usize = rows[0]
            .naive_index
            .trim_end_matches(" (capped)")
            .parse()
            .unwrap();
        assert!(docs_naive > docs_frag);
    }
}
