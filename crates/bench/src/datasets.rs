//! Dataset and application construction shared by the experiment
//! binaries and benches.

use dash_relation::Database;
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::WebApplication;

/// The paper's three application queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// (R ⋈ N) ⋈ C — tiny operands R, N.
    Q1,
    /// (C ⋈ O) ⋈ L — the three large common operands.
    Q2,
    /// (C ⋈ O) ⋈ (L ⋈ P) — Q2 plus `part`.
    Q3,
}

impl QueryId {
    /// All three, in paper order.
    pub fn all() -> [QueryId; 3] {
        [QueryId::Q1, QueryId::Q2, QueryId::Q3]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
        }
    }
}

/// Generates (deterministically) the TPC-H dataset at `scale`.
pub fn dataset(scale: Scale) -> Database {
    generate(&TpchConfig::new(scale))
}

/// Analyzes the query's servlet against `db`.
///
/// # Panics
///
/// Panics if the bundled servlets fail analysis against a generated
/// TPC-H database — that would be a bug, not an input error.
pub fn application_for(query: QueryId, db: &Database) -> WebApplication {
    let result = match query {
        QueryId::Q1 => dash_tpch::q1_application(db),
        QueryId::Q2 => dash_tpch::q2_application(db),
        QueryId::Q3 => dash_tpch::q3_application(db),
    };
    result.expect("bundled servlet analyzes cleanly")
}

/// Parses a scale name from a CLI argument.
pub fn parse_scale(text: &str) -> Option<Scale> {
    match text.to_ascii_lowercase().as_str() {
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        "large" => Some(Scale::Large),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applications_resolve() {
        let db = dataset(Scale::Small);
        for q in QueryId::all() {
            let app = application_for(q, &db);
            assert_eq!(app.name, q.name());
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("Medium"), Some(Scale::Medium));
        assert_eq!(parse_scale("x"), None);
    }
}
