//! Regenerates Figure 10: database crawling + fragment indexing elapsed
//! time (simulated on the paper's 4-node cluster model), stepwise (SW)
//! vs integrated (INT), with the stacked per-phase breakdown.
//!
//! Usage: `fig10 [small|medium|large]...` — defaults to all three scales.

use dash_bench::datasets::{parse_scale, QueryId};
use dash_bench::experiments::fig10;
use dash_bench::params::DATASETS;
use dash_bench::report::{human_secs, render_table};
use dash_mapreduce::ClusterConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scales: Vec<_> = if args.is_empty() {
        DATASETS.to_vec()
    } else {
        args.iter().filter_map(|a| parse_scale(a)).collect()
    };
    if scales.is_empty() {
        eprintln!("usage: fig10 [small|medium|large]...");
        std::process::exit(2);
    }

    println!("FIGURE 10 — DATABASE CRAWLING AND FRAGMENT INDEXING PERFORMANCE");
    println!(
        "(simulated elapsed time on a 4-node Hadoop-class cluster model, data volume\n\
         extrapolated 300x to the paper's TPC-H sizes — see ClusterConfig::paper_scale)\n"
    );

    let rows = fig10(&scales, &QueryId::all(), &ClusterConfig::paper_scale());

    let mut table = Vec::new();
    for row in &rows {
        let breakdown = row
            .breakdown
            .iter()
            .map(|(label, secs)| format!("{label}={}", human_secs(*secs)))
            .collect::<Vec<_>>()
            .join("  ");
        table.push(vec![
            row.scale.to_string(),
            row.query.to_string(),
            row.algorithm.to_string(),
            human_secs(row.total_secs),
            format!("{:.1}MB", row.shuffle_bytes as f64 / 1e6),
            row.fragments.to_string(),
            breakdown,
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "scale",
                "query",
                "alg",
                "sim elapsed",
                "shuffled",
                "fragments",
                "phase breakdown"
            ],
            &table,
        )
    );

    // The paper's headline comparisons.
    println!();
    let mut savings: Vec<f64> = Vec::new();
    for pair in rows.chunks(2) {
        let (sw, int) = (&pair[0], &pair[1]);
        let saving = 100.0 * (sw.total_secs - int.total_secs) / sw.total_secs;
        savings.push(saving);
        println!(
            "{:<6} {:<3}  INT vs SW: {:+.1}% elapsed ({} vs {})",
            sw.scale,
            sw.query,
            -saving,
            human_secs(int.total_secs),
            human_secs(sw.total_secs),
        );
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    let best = savings.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\nINT saves {avg:.1}% elapsed time on average, {best:.1}% in the best case \
         (paper: 21.4% average, 64% best; SW wins only on tiny operands)"
    );
}
