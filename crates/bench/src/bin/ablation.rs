//! Quantifies the fragment-index design choice: Dash's fragment index vs
//! the naive materialize-every-db-page baseline of Section IV.
//!
//! Usage: `ablation [small|medium|large]` — defaults to small (the page
//! space is quadratic; the cap trips quickly beyond that).

use dash_bench::datasets::{parse_scale, QueryId};
use dash_bench::experiments::ablation;
use dash_bench::report::render_table;
use dash_tpch::Scale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| parse_scale(&a))
        .unwrap_or(Scale::Small);

    println!(
        "ABLATION — FRAGMENT INDEX vs NAIVE ALL-PAGES BASELINE (Q1, {})\n",
        scale.name()
    );
    let rows = ablation(scale, QueryId::Q1, 2_000_000);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.metric.to_string(),
                r.fragment_index.clone(),
                r.naive_index.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["metric", "fragment index (Dash)", "all db-pages (naive)"],
            &table
        )
    );
    println!(
        "\n(the naive page space is quadratic in range-attribute cardinality and \
         re-indexes every shared record once per covering page — the redundancy \
         the paper's Example 1 describes)"
    );
}
