//! Regenerates Figure 11: top-k search latency for cold/warm/hot
//! keywords across the (k, s) grid, on Q2's fragment index.
//!
//! Usage: `fig11 [small|medium|large]` — defaults to medium (the
//! paper's setting).

use dash_bench::datasets::parse_scale;
use dash_bench::experiments::{fig11, fig11_engine};
use dash_bench::params::{K_VALUES, S_VALUES};
use dash_bench::report::render_table;
use dash_mapreduce::ClusterConfig;
use dash_tpch::Scale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| parse_scale(&a))
        .unwrap_or(Scale::Medium);

    println!(
        "FIGURE 11 — TOP-k SEARCH PERFORMANCE (Q2, {}; average ms per search)\n",
        scale.name()
    );
    eprintln!("building Q2 engine ({})...", scale.name());
    let engine = fig11_engine(scale, &ClusterConfig::default());
    eprintln!("engine ready: {} fragments\n", engine.fragment_count());

    let cells = fig11(&engine);
    // One row per (temperature, s); one column per k.
    let mut table = Vec::new();
    for temperature in ["cold", "warm", "hot"] {
        for &s in &S_VALUES {
            let mut row = vec![format!("{temperature} terms"), s.to_string()];
            for &k in &K_VALUES {
                let cell = cells
                    .iter()
                    .find(|c| c.temperature == temperature && c.s == s && c.k == k)
                    .expect("full grid");
                row.push(format!("{:.4}", cell.avg_ms));
            }
            table.push(row);
        }
    }
    let header: Vec<String> = ["keywords", "s"]
        .iter()
        .map(|s| s.to_string())
        .chain(K_VALUES.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print!("{}", render_table(&header_refs, &table));

    let max_ms = cells.iter().map(|c| c.avg_ms).fold(0.0, f64::max);
    println!(
        "\nmax average search time {max_ms:.4} ms \
         (paper: all under 0.27 ms; cold flat, hot slowest, s matters more when hot)"
    );
}
