//! Regenerates Table III: the three application queries, as recovered by
//! Dash's servlet analysis (not hand-written — the printed SQL is the
//! analyzer's output).

use dash_bench::datasets::{application_for, dataset, QueryId};
use dash_tpch::Scale;

fn main() {
    println!("TABLE III — THE THREE EXPERIMENTED APPLICATION QUERIES");
    println!("(recovered from servlet source by Dash's web-application analysis)\n");
    let db = dataset(Scale::Small);
    for query in QueryId::all() {
        let app = application_for(query, &db);
        println!("{}: {}", query.name(), app.sql);
        println!(
            "    operands: {:?}; query-string fields: {:?}\n",
            app.query.relations,
            app.field_params
                .iter()
                .map(|(f, _)| f.as_str())
                .collect::<Vec<_>>()
        );
    }
}
