//! Regenerates Table II: per-relation dataset sizes at the three scales.

use dash_bench::datasets::dataset;
use dash_bench::params::DATASETS;
use dash_bench::report::{human_bytes, render_table};
use dash_tpch::relation_sizes;

fn main() {
    println!("TABLE II — THE THREE EXPERIMENTED DATA SETS\n");
    let mut rows = Vec::new();
    for scale in DATASETS {
        let db = dataset(scale);
        let sizes = relation_sizes(&db);
        let mut row = vec![scale.name().to_string()];
        row.extend(sizes.iter().map(|(_, b)| human_bytes(*b)));
        rows.push(row);
    }
    print!(
        "{}",
        render_table(&["", "R", "N", "C", "O", "L", "P"], &rows)
    );
    println!(
        "\n(paper shape: R and N tiny and scale-invariant; L dominates; \
         small : medium : large ≈ 1 : 5 : 10)"
    );
}
