//! Regenerates Table I: the experiment parameter grid.

use dash_bench::params::{DATASETS, KEYWORDS_PER_CLASS, K_VALUES, QUERY_NAMES, S_VALUES};
use dash_bench::report::render_table;

fn main() {
    println!("TABLE I — EXPERIMENT PARAMETERS\n");
    let rows = vec![
        vec![
            "datasets".to_string(),
            DATASETS
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec!["application queries".to_string(), QUERY_NAMES.join(", ")],
        vec![
            "no. of returned db-pages (k)".to_string(),
            K_VALUES
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec![
            "db-page threshold size (s)".to_string(),
            S_VALUES
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ],
        vec![
            "keywords".to_string(),
            format!(
                "cold (bottom 10%), warm (middle 10%), hot (top 10%) — {KEYWORDS_PER_CLASS} each"
            ),
        ],
    ];
    print!("{}", render_table(&["Parameter", "Values"], &rows));
}
