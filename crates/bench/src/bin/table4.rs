//! Regenerates Table IV: fragment-graph building time, fragment counts
//! and average keywords per fragment for Q1–Q3.
//!
//! Usage: `table4 [small|medium|large]` — defaults to medium (the
//! paper's setting).

use dash_bench::datasets::parse_scale;
use dash_bench::experiments::table4;
use dash_bench::report::render_table;
use dash_mapreduce::ClusterConfig;
use dash_tpch::Scale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| parse_scale(&a))
        .unwrap_or(Scale::Medium);

    println!(
        "TABLE IV — DB-PAGE FRAGMENT GRAPH BUILDING PERFORMANCE ({})\n",
        scale.name()
    );
    let rows = table4(scale, &ClusterConfig::default());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.to_string(),
                format!("{:.3} sec", r.build_secs),
                r.fragments.to_string(),
                format!("{:.1}", r.avg_keywords),
                r.edges.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "",
                "building time",
                "#db-page fragments",
                "average #keywords",
                "#edges"
            ],
            &table,
        )
    );
    println!(
        "\n(paper shape: Q2 and Q3 share fragment counts; Q3's fragments carry \
         the most keywords; single-machine build)"
    );
}
