//! Plain-text table/series formatting for the experiment binaries.

/// Formats a byte count the way Table II prints sizes (`B`, `KB`, `MB`).
pub fn human_bytes(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else if bytes < 1024 * 1024 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{:.0}MB", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Formats seconds the way Figure 10 annotates bars (`s`, `min`, `hrs`).
pub fn human_secs(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.1} s")
    } else if secs < 7200.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.1} hrs", secs / 3600.0)
    }
}

/// Renders an aligned text table: a header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(human_bytes(389), "389B");
        assert_eq!(human_bytes(2048), "2KB");
        assert_eq!(human_bytes(23 * 1024 * 1024), "23MB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(human_secs(3.15), "3.1 s");
        assert_eq!(human_secs(300.0), "5.0 min");
        assert_eq!(human_secs(9.8 * 3600.0), "9.8 hrs");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["xx".into(), "y".into()], vec!["1".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xx"));
    }
}
