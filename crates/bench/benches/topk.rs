//! Criterion micro-benchmarks for the top-k search algorithm (the
//! Figure 11 measurement, in real wall-clock time).

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::{select_keywords, KeywordTemperature};
use dash_core::{DashConfig, DashEngine, SearchRequest};
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::fooddb;

fn engine_tpch_q2() -> DashEngine {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    DashEngine::build(&app, &db, &DashConfig::default()).expect("engine builds")
}

fn bench_topk(c: &mut Criterion) {
    // Running example, Example 7's exact request.
    let db = fooddb::database();
    let app = fooddb::search_application().expect("analyzes");
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).expect("builds");
    c.bench_function("topk/fooddb/burger-k2-s20", |b| {
        let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
        b.iter(|| engine.search(&request))
    });

    // TPC-H Q2 at micro scale: the paper's keyword temperature classes.
    let engine = engine_tpch_q2();
    let mut group = c.benchmark_group("topk/tpch-q2");
    for temperature in KeywordTemperature::all() {
        let keywords = select_keywords(&engine, temperature, 10, 7);
        if keywords.is_empty() {
            continue;
        }
        for (label, s) in [("s100", 100u64), ("s1000", 1000u64)] {
            group.bench_function(format!("{}-{label}", temperature.name()), |b| {
                let requests: Vec<SearchRequest> = keywords
                    .iter()
                    .map(|w| SearchRequest::new(&[w.as_str()]).k(10).min_size(s))
                    .collect();
                let mut i = 0usize;
                b.iter(|| {
                    let hits = engine.search(&requests[i % requests.len()]);
                    i += 1;
                    hits
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
