//! The `serve` suite: closed-loop serving performance of
//! `dash-serve::DashServer` — p50/p99 end-to-end search latency and
//! sustained qps under mixed search/update traffic, at 1 and 4 shards,
//! plus the micro-costs of the serving path (cache hit, batched miss).
//!
//! Unlike the other suites, the headline rows are *not* `iter()`
//! loops: the closed-loop load generator measures every request
//! end-to-end (cache → bounded queue → micro-batch → snapshot search)
//! and reports its own percentiles, recorded into `BENCH_serve.json`
//! via `record_measurement` — `p50_ns` carries the stated latency
//! percentile (for `*-qps` rows, the implied per-request time) and
//! `ops_per_sec` the implied/sustained rate. CI's load smoke
//! regenerates this file every run and fails if qps reads zero.

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::{select_keywords, KeywordTemperature};
use dash_core::crawl::reference;
use dash_core::{DashEngine, SearchRequest};
use dash_mapreduce::WorkflowStats;
use dash_serve::loadgen::{self, LoadProfile};
use dash_serve::{DashServer, ServeConfig};
use dash_tpch::{generate, Scale, TpchConfig};

fn bench_serve(c: &mut Criterion) {
    // TPC-H Q2 at micro scale — the Figure 11 workload, big enough
    // that per-search work dominates the serving overhead.
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("builds");

    // Traffic mix: hot/warm/cold keywords, fragments churned by the
    // update stream drawn from the crawl itself.
    let mut vocab: Vec<String> = Vec::new();
    for temperature in KeywordTemperature::all() {
        vocab.extend(select_keywords(&single, temperature, 8, 11));
    }
    let update_pool: Vec<_> = fragments.iter().take(32).cloned().collect();
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let profile = LoadProfile {
        clients: 4,
        ops_per_client: if fast { 200 } else { 800 },
        update_every: 20,
        seed: 11,
        ..LoadProfile::default()
    };

    for shards in [1usize, 4] {
        let server = DashServer::from_fragments(
            app.clone(),
            &fragments,
            ServeConfig::default().shards(shards),
        )
        .expect("server builds");
        let report = loadgen::run(&server, &vocab, &update_pool, &profile);
        println!(
            "serve/s{shards} closed-loop run: {}\n{}",
            report.summary(),
            report.stage_table
        );
        c.record_measurement(
            &format!("serve/s{shards}/mixed-p50"),
            report.p50_ns as f64,
            1e9 / (report.p50_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("serve/s{shards}/mixed-p99"),
            report.p99_ns as f64,
            1e9 / (report.p99_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("serve/s{shards}/mixed-qps"),
            1e9 / report.qps.max(1e-9),
            report.qps,
        );
    }

    // Micro-costs of the serving path itself, on the 1-shard server.
    let server = DashServer::from_fragments(app.clone(), &fragments, ServeConfig::default())
        .expect("server builds");
    let hot = select_keywords(&single, KeywordTemperature::Hot, 1, 7)
        .pop()
        .expect("a hot keyword");
    let request = SearchRequest::new(&[hot.as_str()]).k(10).min_size(1000);
    let mut group = c.benchmark_group("serve/path");
    server.search(&request); // warm the cache
    group.bench_function("cache-hit", |b| b.iter(|| server.search(&request)));
    let uncached =
        DashServer::from_fragments(app, &fragments, ServeConfig::default().cache_capacity(0))
            .expect("server builds");
    group.bench_function("uncached-batched-miss", |b| {
        b.iter(|| uncached.search(&request))
    });
    group.bench_function("engine-direct", |b| {
        b.iter(|| uncached.snapshot().engine.search(&request))
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
