//! The tie-plateau suite: corpora whose inverted lists carry large
//! runs of *identical* TF·IDF seed scores.
//!
//! PR 2 made the top-k seeding loop draw through score ties (`<=`
//! bound) — the property that makes the pop order schedule-independent
//! and the sharded trace merge exact. The price is that a keyword whose
//! list is one giant equal-score plateau seeds the *whole* plateau
//! before the first pop, where the old strict bound stopped after one
//! entry. The paper's workloads (fooddb, TPC-H Q2) have almost no ties,
//! so the earlier suites never priced that cost; this one does, on
//! corpora built to be worst-case:
//!
//! * `flat/…` — every fragment has the plateau keyword at the same
//!   occurrence count and the same total, so ALL seed scores are one
//!   bit-identical value;
//! * `half/…` — half the corpus ties, half varies (the realistic
//!   "many reposts of the same boilerplate" shape).
//!
//! Singles and sharded engines both run: sharding splits a plateau
//! across shards, so per-shard seeding shrinks while the merge still
//! interleaves the tied pops deterministically.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use dash_core::{DashEngine, Fragment, FragmentId, IngestSource, SearchRequest, ShardedEngine};
use dash_mapreduce::WorkflowStats;
use dash_relation::Value;
use dash_webapp::fooddb;

/// Groups × members-per-group fragments; every fragment carries the
/// `"plateau"` keyword. `tied` fragments use identical (occurrences,
/// total) pairs — one global score plateau — while the rest scale their
/// occurrence counts, giving distinct TFs.
fn corpus(groups: usize, per_group: usize, tied: usize) -> Vec<Fragment> {
    let mut fragments = Vec::with_capacity(groups * per_group);
    let mut n = 0usize;
    for g in 0..groups {
        for m in 0..per_group {
            let mut occ: BTreeMap<String, u64> = BTreeMap::new();
            if n < tied {
                occ.insert("plateau".to_string(), 2);
                occ.insert("filler".to_string(), 8);
            } else {
                // Varying TF: distinct occurrence/total ratios.
                occ.insert("plateau".to_string(), 1 + (n % 7) as u64);
                occ.insert("filler".to_string(), 5 + (n % 11) as u64);
            }
            fragments.push(Fragment::new(
                FragmentId::new(vec![Value::str(format!("G{g:03}")), Value::Int(m as i64)]),
                occ,
                1,
            ));
            n += 1;
        }
    }
    fragments
}

fn bench_corpus(c: &mut Criterion, label: &str, fragments: &[Fragment]) {
    let app = fooddb::search_application().expect("analyzes");
    let single = DashEngine::from_fragments(app.clone(), fragments, WorkflowStats::new())
        .expect("single builds");
    // k small against a huge plateau: seeding cost dominates emission.
    let narrow = SearchRequest::new(&["plateau"]).k(10).min_size(1);
    // Expansion across each group's chain, still under full ties.
    let expanding = SearchRequest::new(&["plateau"]).k(10).min_size(50);

    let mut group = c.benchmark_group(&format!("plateau/{label}"));
    group.bench_function("single/k10-s1", |b| b.iter(|| single.search(&narrow)));
    group.bench_function("single/k10-s50", |b| b.iter(|| single.search(&expanding)));
    for shards in [1usize, 2, 4] {
        let engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(fragments))
            .build()
            .expect("sharded builds");
        group.bench_function(format!("s{shards}/k10-s1"), |b| {
            b.iter(|| engine.search(&narrow))
        });
        group.bench_function(format!("s{shards}/k10-s50"), |b| {
            b.iter(|| engine.search(&expanding))
        });
    }
    group.finish();
}

fn bench_plateau(c: &mut Criterion) {
    // 64 groups × 32 fragments = 2048 postings, all one score.
    let flat = corpus(64, 32, usize::MAX);
    bench_corpus(c, "flat2048", &flat);
    // Same shape, half tied / half varying.
    let half = corpus(64, 32, 1024);
    bench_corpus(c, "half2048", &half);
}

criterion_group!(benches, bench_plateau);
criterion_main!(benches);
