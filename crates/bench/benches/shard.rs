//! Criterion micro-benchmarks for the sharded engine: top-k latency,
//! batched throughput and incremental-maintenance cost as a function of
//! the shard count, against the single-engine baseline, on the TPC-H Q2
//! micro workload and the paper's running example. The `shards` axis is
//! the point: on an N-core serving node the per-shard searches run on
//! the persistent shard worker pool, so `BENCH_shard.json` records how
//! the same workload scales as the handle space is partitioned (on a
//! single-core host every shard runs inline on the caller, so the axis
//! instead measures the partition + trace-merge overhead, which must
//! stay small — the acceptance bar is fooddb s1 within 10% of the
//! single engine).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dash_bench::{select_keywords, KeywordTemperature};
use dash_core::crawl::reference;
use dash_core::{DashConfig, DashEngine, IngestSource, RecordChange, SearchRequest, ShardedEngine};
use dash_mapreduce::WorkflowStats;
use dash_relation::{Record, Value};
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::fooddb;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_shard(c: &mut Criterion) {
    // TPC-H Q2 at micro scale, the Figure 11 workload.
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("builds");

    // A mixed 16-request batch across keyword temperatures, the
    // `search_many` workload.
    let mut batch: Vec<SearchRequest> = Vec::new();
    for temperature in KeywordTemperature::all() {
        for (i, word) in select_keywords(&single, temperature, 6, 7)
            .iter()
            .enumerate()
        {
            batch.push(
                SearchRequest::new(&[word.as_str()])
                    .k(10)
                    .min_size([100u64, 1000][i % 2]),
            );
        }
    }
    batch.truncate(16);
    let hot = select_keywords(&single, KeywordTemperature::Hot, 1, 7)
        .pop()
        .expect("a hot keyword");
    let hot_request = SearchRequest::new(&[hot.as_str()]).k(10).min_size(1000);

    let mut group = c.benchmark_group("shard/tpch-q2");
    group.bench_function("single/search-hot", |b| {
        b.iter(|| single.search(&hot_request))
    });
    group.bench_function("single/batch16", |b| b.iter(|| single.search_many(&batch)));
    for shards in SHARD_COUNTS {
        let engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(&fragments))
            .build()
            .expect("sharded builds");
        group.bench_function(format!("s{shards}/search-hot"), |b| {
            b.iter(|| engine.search(&hot_request))
        });
        group.bench_function(format!("s{shards}/batch16"), |b| {
            b.iter(|| engine.search_many(&batch))
        });
    }
    group.finish();

    // The paper's running example: tiny index, merge overhead dominates.
    let db = fooddb::database();
    let app = fooddb::search_application().expect("analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("builds");
    let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
    let mut group = c.benchmark_group("shard/fooddb");
    group.bench_function("single/burger-k2-s20", |b| {
        b.iter(|| single.search(&request))
    });
    for shards in [1usize, 2] {
        let engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(&fragments))
            .build()
            .expect("sharded builds");
        group.bench_function(format!("s{shards}/burger-k2-s20"), |b| {
            b.iter(|| engine.search(&request))
        });
    }
    group.finish();

    // The maintenance axis: one record insert + delete cycle through
    // the unified delta write path, single vs sharded — shard-local
    // application means the sharded engines pay per-shard work plus an
    // O(shards) offset refresh, never a rebuild (`s4/full-rebuild`
    // prices what PR 2's build-once engine had to do instead).
    let db = fooddb::database();
    let app = fooddb::search_application().expect("analyzes");
    let record = Record::new(vec![
        Value::Int(990),
        Value::str("Churn Diner"),
        Value::str("Mexican"),
        Value::Int(11),
        Value::str("4.1"),
    ]);
    let mut db_with = db.clone();
    db_with
        .table_mut("restaurant")
        .expect("restaurant table")
        .insert(record.clone())
        .expect("insert");
    let fragments = reference::fragments(&app, &db).expect("crawl");

    let mut group = c.benchmark_group("shard/maintenance");
    {
        let mut engine = DashEngine::build(&app, &db, &DashConfig::default()).expect("builds");
        group.bench_function("single/insert-delete", |b| {
            b.iter(|| {
                engine
                    .apply_insert(&db_with, "restaurant", &record)
                    .unwrap();
                engine.apply_delete(&db, "restaurant", &record).unwrap();
            })
        });
    }
    for shards in [1usize, 2, 4] {
        let mut engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(&fragments))
            .build()
            .expect("sharded builds");
        group.bench_function(format!("s{shards}/insert-delete"), |b| {
            b.iter(|| {
                engine
                    .apply_insert(&db_with, "restaurant", &record)
                    .unwrap();
                engine.apply_delete(&db, "restaurant", &record).unwrap();
            })
        });
    }
    // What an update cost before shard-local maintenance existed.
    group.bench_function("s4/full-rebuild", |b| {
        b.iter(|| {
            ShardedEngine::builder(app.clone())
                .shards(4)
                .source(IngestSource::Fragments(&fragments))
                .build()
                .expect("sharded builds")
        })
    });
    group.finish();

    // The bulk write path: an 8-record batch applied as ONE bulk delta
    // (shadow joins batched per relation + one scoped re-crawl) versus
    // the same batch fed through the per-record loop (a shadow join
    // AND a full-corpus recompute join per record). The gap is the
    // ROADMAP's "batch the shadow joins" win, and it widens linearly
    // with batch size.
    let batch_records: Vec<Record> = (0..8)
        .map(|i| {
            Record::new(vec![
                Value::Int(900 + i),
                Value::str("Bulk Cantina"),
                Value::str(["Mexican", "Korean"][i as usize % 2]),
                Value::Int(6 + i),
                Value::str("4.0"),
            ])
        })
        .collect();
    let mut db_bulk = db.clone();
    for record in &batch_records {
        db_bulk
            .table_mut("restaurant")
            .expect("restaurant table")
            .insert(record.clone())
            .expect("insert");
    }
    let changes: Vec<RecordChange> = batch_records
        .iter()
        .map(|r| RecordChange::new("restaurant", r.clone()))
        .collect();
    let base = ShardedEngine::builder(app.clone())
        .shards(4)
        .source(IngestSource::Fragments(&fragments))
        .build()
        .expect("sharded builds");
    let mut group = c.benchmark_group("shard/maintenance-bulk");
    group.bench_function("s4/bulk-8-inserts", |b| {
        b.iter_batched(
            || base.fork(),
            |mut engine| engine.apply_changes(&db_bulk, &changes).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("s4/per-record-8-inserts", |b| {
        b.iter_batched(
            || base.fork(),
            |mut engine| {
                for record in &batch_records {
                    engine.apply_insert(&db_bulk, "restaurant", record).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
