//! Criterion micro-benchmarks for index construction: the columnar
//! inverted fragment index (and the full catalog + inverted + graph
//! build) vs the naive all-pages inverted file (the design choice
//! Section IV motivates).

use criterion::{criterion_group, criterion_main, Criterion};
use dash_core::baseline::NaiveEngine;
use dash_core::crawl::reference;
use dash_core::index::InvertedFragmentIndex;
use dash_core::{Fragment, FragmentCatalog, FragmentIndex};
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::WebApplication;

fn q1_parts() -> (WebApplication, Vec<Fragment>) {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q1_application(&db).expect("Q1 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    (app, fragments)
}

fn bench_index(c: &mut Criterion) {
    let (app, fragments) = q1_parts();
    let catalog = FragmentCatalog::from_fragments(&fragments);

    c.bench_function("index/inverted-fragment-index", |b| {
        b.iter(|| InvertedFragmentIndex::build(&catalog, &fragments))
    });

    c.bench_function("index/full-build", |b| {
        b.iter(|| {
            FragmentIndex::build(&fragments, app.query.range_selection_index()).expect("builds")
        })
    });

    let mut group = c.benchmark_group("index/naive-baseline");
    group.sample_size(10);
    group.bench_function("all-pages", |b| {
        b.iter(|| NaiveEngine::from_fragments(app.clone(), &fragments, 100_000).expect("builds"))
    });
    group.finish();

    c.bench_function("index/idf-lookup", |b| {
        let index = InvertedFragmentIndex::build(&catalog, &fragments);
        let keywords: Vec<String> = index
            .keywords_by_df()
            .iter()
            .take(64)
            .map(|(w, _)| w.to_string())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let w = &keywords[i % keywords.len()];
            i += 1;
            index.idf(w)
        })
    });

    c.bench_function("index/occurrence-probe", |b| {
        let index = InvertedFragmentIndex::build(&catalog, &fragments);
        let hot = index.keywords_by_df()[0].0.to_string();
        let kw = index.kw(&hot).expect("hot keyword interned");
        let frags: Vec<_> = fragments
            .iter()
            .map(|f| catalog.frag(&f.id).expect("interned"))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let frag = frags[i % frags.len()];
            i += 1;
            index.occurrences(kw, frag)
        })
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
