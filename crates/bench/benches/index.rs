//! Criterion micro-benchmarks for index construction: the inverted
//! fragment index vs the naive all-pages inverted file (the design
//! choice Section IV motivates).

use criterion::{criterion_group, criterion_main, Criterion};
use dash_core::baseline::NaiveEngine;
use dash_core::crawl::reference;
use dash_core::index::InvertedFragmentIndex;
use dash_core::Fragment;
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::WebApplication;

fn q1_parts() -> (WebApplication, Vec<Fragment>) {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q1_application(&db).expect("Q1 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    (app, fragments)
}

fn bench_index(c: &mut Criterion) {
    let (app, fragments) = q1_parts();

    c.bench_function("index/inverted-fragment-index", |b| {
        b.iter(|| InvertedFragmentIndex::build(&fragments))
    });

    let mut group = c.benchmark_group("index/naive-baseline");
    group.sample_size(10);
    group.bench_function("all-pages", |b| {
        b.iter(|| NaiveEngine::from_fragments(app.clone(), &fragments, 100_000).expect("builds"))
    });
    group.finish();

    c.bench_function("index/idf-lookup", |b| {
        let index = InvertedFragmentIndex::build(&fragments);
        let keywords: Vec<String> = index
            .keywords_by_df()
            .iter()
            .take(64)
            .map(|(w, _)| w.to_string())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let w = &keywords[i % keywords.len()];
            i += 1;
            index.idf(w)
        })
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
