//! The `ingest` suite: what the distributed (mapreduce-backed) build
//! costs relative to the direct single-process build, and what its
//! fault tolerance and restartability are worth — the numbers ROADMAP
//! item 4 asked for. Every row is a single-shot `record_measurement`
//! over the same synthetic Zipf corpus (`dash_bench::scale`, TPC-H Q2
//! shape), second-of-two-runs warm like the `scale` suite:
//!
//! | Row | Measures |
//! |---|---|
//! | `ingest/direct-build` | in-process partition + per-shard build (`IngestSource::Fragments`) |
//! | `ingest/mapreduce-build` | the two-job workflow end to end, fault-free |
//! | `ingest/mapreduce-faulty` | same workflow with map+reduce retries injected — the fault-retry overhead |
//! | `ingest/resume-restart` | warm restart from spilled dumps — the kill-and-resume path |
//!
//! All four paths produce byte-identical engines (asserted here via
//! shard sizes and fragment counts; `tests/ingest_equivalence.rs`
//! proves image-level identity), so the rows price pure orchestration:
//! simulated-time metering, shuffle bookkeeping, retried attempts, and
//! spill encode/decode. Corpus size defaults to 100k fragments (10k in
//! `DASH_BENCH_FAST` smoke runs), capped by `DASH_SCALE_FRAGMENTS` —
//! CI's `ingest` job gates `mapreduce-build` against `direct-build`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::scale::{env_fragments, ScaleCorpus};
use dash_core::{distributed_build, Fragment, IngestConfig, IngestSource, ShardedEngine};
use dash_mapreduce::FaultPlan;
use dash_tpch::{generate, Scale, TpchConfig};

const SHARDS: usize = 4;

fn bench_ingest(c: &mut Criterion) {
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let count = env_fragments(if fast { 10_000 } else { 100_000 });
    let corpus = ScaleCorpus::sized(count);
    println!(
        "ingest corpus: {} fragments, {} groups, {} shards",
        corpus.fragments, corpus.groups, SHARDS
    );

    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 50;
    config.base_parts = 65;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    drop(db);

    let fragments: Vec<Fragment> = corpus.shard_batches(1).flatten().collect();

    // Direct build: the in-process partition + per-shard index build
    // the workflow must reproduce byte for byte. Two runs, second is
    // the row (allocator-warm, like the scale suite).
    let mut direct_ns = 0.0;
    let mut want_sizes = Vec::new();
    for _ in 0..2 {
        let begin = Instant::now();
        let engine = ShardedEngine::builder(app.clone())
            .shards(SHARDS)
            .source(IngestSource::Fragments(&fragments))
            .build()
            .expect("direct build");
        direct_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(engine.fragment_count(), corpus.fragments);
        want_sizes = engine.shard_sizes();
    }
    c.record_measurement(
        "ingest/direct-build",
        direct_ns,
        corpus.fragments as f64 / (direct_ns / 1e9),
    );

    // The two-job mapreduce workflow, fault-free: partition plan +
    // shard build + driver assembly, no spilling.
    let mr_config = IngestConfig {
        shards: SHARDS,
        ..IngestConfig::default()
    };
    let mut mr_ns = 0.0;
    for _ in 0..2 {
        let begin = Instant::now();
        let output = distributed_build(&app, &fragments, &mr_config).expect("workflow build");
        let engine = ShardedEngine::builder(app.clone())
            .source(IngestSource::Distributed(output))
            .build()
            .expect("workflow engine");
        mr_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(engine.shard_sizes(), want_sizes);
    }
    c.record_measurement(
        "ingest/mapreduce-build",
        mr_ns,
        corpus.fragments as f64 / (mr_ns / 1e9),
    );

    // The same workflow under injected faults: one map attempt and one
    // reduce attempt fail in every job and are retried — the row
    // prices what a lost worker costs a real build.
    let faulty_config = IngestConfig {
        shards: SHARDS,
        faults: FaultPlan::new()
            .fail_map(0, 0)
            .fail_map(1, 0)
            .fail_reduce(0, 0),
        ..IngestConfig::default()
    };
    let mut faulty_ns = 0.0;
    let mut retries = 0u64;
    for _ in 0..2 {
        let begin = Instant::now();
        let output = distributed_build(&app, &fragments, &faulty_config).expect("survives faults");
        retries = output.report.map_attempts + output.report.reduce_attempts;
        let engine = ShardedEngine::builder(app.clone())
            .source(IngestSource::Distributed(output))
            .build()
            .expect("faulted engine");
        faulty_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(engine.shard_sizes(), want_sizes);
    }
    c.record_measurement(
        "ingest/mapreduce-faulty",
        faulty_ns,
        corpus.fragments as f64 / (faulty_ns / 1e9),
    );
    println!(
        "fault-retry overhead: {:.1}ms faulty vs {:.1}ms clean ({:.2}x, {} task attempts)",
        faulty_ns / 1e6,
        mr_ns / 1e6,
        faulty_ns / mr_ns.max(1.0),
        retries
    );

    // Restart from spill: one priming run persists the dumps, then the
    // timed run resumes from them — the kill-and-restart recovery path
    // (decode dumps + assemble, no mapreduce jobs at all).
    let spill = scratch_dir();
    let spill_config = IngestConfig {
        shards: SHARDS,
        spill_dir: Some(spill.clone()),
        ..IngestConfig::default()
    };
    distributed_build(&app, &fragments, &spill_config).expect("priming run spills");
    let mut resume_ns = 0.0;
    for _ in 0..2 {
        let begin = Instant::now();
        let output = distributed_build(&app, &fragments, &spill_config).expect("resumes");
        assert!(output.report.resumed_dumps, "resume must hit the dumps");
        let engine = ShardedEngine::builder(app.clone())
            .source(IngestSource::Distributed(output))
            .build()
            .expect("resumed engine");
        resume_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(engine.shard_sizes(), want_sizes);
    }
    let _ = std::fs::remove_dir_all(&spill);
    c.record_measurement(
        "ingest/resume-restart",
        resume_ns,
        corpus.fragments as f64 / (resume_ns / 1e9),
    );
    println!(
        "build paths: direct {:.1}ms, mapreduce {:.1}ms ({:.2}x), resume {:.1}ms",
        direct_ns / 1e6,
        mr_ns / 1e6,
        mr_ns / direct_ns.max(1.0),
        resume_ns / 1e6
    );
}

/// A per-process scratch directory for the spill files.
fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dash-ingest-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
