//! Criterion micro-benchmarks for database crawling + fragment indexing:
//! stepwise vs integrated (the Figure 10 comparison, at micro scale, in
//! real wall-clock time rather than simulated cluster time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dash_core::crawl::{self, CrawlAlgorithm};
use dash_mapreduce::ClusterConfig;
use dash_relation::Database;
use dash_tpch::{generate, Scale, TpchConfig};
use dash_webapp::{fooddb, WebApplication};

fn tiny_tpch() -> Database {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    generate(&config)
}

fn bench_crawl(c: &mut Criterion) {
    let cluster = ClusterConfig::default();

    // Running example: both algorithms, full pipeline.
    let fooddb = fooddb::database();
    let search = fooddb::search_application().expect("running example analyzes");
    let mut group = c.benchmark_group("crawl/fooddb");
    for (name, algorithm) in [
        ("stepwise", CrawlAlgorithm::Stepwise),
        ("integrated", CrawlAlgorithm::Integrated),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (),
                |_| crawl::run(&search, &fooddb, &cluster, algorithm).expect("crawl"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // TPC-H Q1 at micro scale.
    let db = tiny_tpch();
    let q1: WebApplication = dash_tpch::q1_application(&db).expect("Q1 analyzes");
    let mut group = c.benchmark_group("crawl/tpch-q1");
    group.sample_size(10);
    for (name, algorithm) in [
        ("stepwise", CrawlAlgorithm::Stepwise),
        ("integrated", CrawlAlgorithm::Integrated),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (),
                |_| crawl::run(&q1, &db, &cluster, algorithm).expect("crawl"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
