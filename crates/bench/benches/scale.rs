//! The `scale` suite: the million-fragment numbers ROADMAP item 3
//! asked for, measured over the synthetic Zipf corpus
//! (`dash_bench::scale`). Every headline row is a single-shot
//! `record_measurement` — a million-fragment build is seconds, not
//! something an `iter()` loop can sample — with `p50_ns` carrying the
//! measured wall time (or latency percentile, for search rows) and
//! `peak_rss_bytes` the process high-water mark when the row landed:
//!
//! | Row | Measures |
//! |---|---|
//! | `scale/build` | streamed generate + 4-shard index build, end to end |
//! | `scale/search-p50`, `scale/search-p99` | top-k latency over Zipf-skewed keyword traffic |
//! | `scale/arena-load` | the builder's `IngestSource::Image` — the zero-parse bulk-read path |
//! | `scale/parse-rebuild` | v1 decode + full `build` — what bootstrap cost before arena images |
//! | `scale/full-rebuild` | index rebuild from in-memory fragments (no decode) |
//! | `scale/delta-apply` | one group-local delta through `apply_delta` |
//!
//! The arena-load vs parse-rebuild gap is the replica-bootstrap win
//! (the SNAPSHOT frame ships the image); delta-apply vs full-rebuild
//! is the paper's O(affected-group) maintenance claim, finally priced
//! at scale. Corpus size defaults to 1M fragments (20k in
//! `DASH_BENCH_FAST` smoke runs) and is capped by
//! `DASH_SCALE_FRAGMENTS` — CI's `scale` job runs ~100k.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::scale::{env_fragments, ScaleCorpus};
use dash_core::{persist, IndexDelta, IngestSource, SearchRequest, ShardedEngine};
use dash_serve::loadgen::percentile;
use dash_tpch::{generate, Scale, TpchConfig};
use rand::distr::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SHARDS: usize = 4;

fn bench_scale(c: &mut Criterion) {
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let count = env_fragments(if fast { 20_000 } else { 1_000_000 });
    let corpus = ScaleCorpus::sized(count);
    println!(
        "scale corpus: {} fragments, {} groups, {} vocab words, {} shards",
        corpus.fragments, corpus.groups, corpus.vocab, SHARDS
    );

    // The application shape the corpus mimics: TPC-H Q2 (group =
    // custkey, range = quantity), analyzed against a micro database —
    // analysis wants the schema, not the rows; the fragments are
    // synthetic.
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 50;
    config.base_parts = 65;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    drop(db);

    // Build: streamed generation + per-shard index build, one batch in
    // memory at a time. This is the cold-start cost the arena image
    // exists to avoid paying twice.
    let begin = Instant::now();
    let mut engine = ShardedEngine::builder(app.clone())
        .source(IngestSource::Batches(Box::new(
            corpus.shard_batches(SHARDS),
        )))
        .build()
        .expect("scale corpus builds");
    let build_ns = begin.elapsed().as_nanos() as f64;
    assert_eq!(engine.fragment_count(), corpus.fragments);
    c.record_measurement(
        "scale/build",
        build_ns,
        corpus.fragments as f64 / (build_ns / 1e9),
    );

    // Search latency over traffic drawn from the SAME Zipf the corpus
    // was built with (hot terms dominate queries like they dominate
    // postings).
    let requests = skewed_requests(&corpus, if fast { 200 } else { 1_000 });
    let mut latencies: Vec<u64> = requests
        .iter()
        .map(|request| {
            let begin = Instant::now();
            let hits = criterion::black_box(engine.search(request));
            let spent = begin.elapsed().as_nanos() as u64;
            assert!(hits.len() <= request.k);
            spent
        })
        .collect();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50) as f64;
    let p99 = percentile(&latencies, 99) as f64;
    c.record_measurement("scale/search-p50", p50, 1e9 / p50.max(1.0));
    c.record_measurement("scale/search-p99", p99, 1e9 / p99.max(1.0));

    // Arena-image load vs v1 parse-and-rebuild: the replica-bootstrap
    // comparison. Same engine, same bytes-in-memory setting — the only
    // variable is the load path. Each path runs twice and the SECOND
    // run is the row: the first warms the allocator pool, so the
    // number prices the load algorithm rather than the kernel's
    // first-touch page zeroing (which otherwise dominates both paths
    // on a cold heap and varies wildly across virtualization setups —
    // a long-lived replica re-bootstrapping matches the warm run).
    let mut image = Vec::new();
    engine.write_image(&mut image).expect("image dumps");
    let mut arena_ns = 0.0;
    for _ in 0..2 {
        let begin = Instant::now();
        let loaded = ShardedEngine::builder(app.clone())
            .source(IngestSource::Image(&image))
            .build()
            .expect("arena image loads");
        arena_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(loaded.fragment_count(), engine.fragment_count());
        drop(loaded);
    }
    println!("arena image: {} bytes", image.len());
    drop(image);
    c.record_measurement(
        "scale/arena-load",
        arena_ns,
        corpus.fragments as f64 / (arena_ns / 1e9),
    );

    let shards = engine.dump_shards();
    let mut rebuild_ns = 0.0;
    for _ in 0..2 {
        let begin = Instant::now();
        let rebuilt = ShardedEngine::builder(app.clone())
            .source(IngestSource::ShardDumps(&shards))
            .build()
            .expect("rebuilds");
        rebuild_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(rebuilt.fragment_count(), engine.fragment_count());
        drop(rebuilt);
    }
    c.record_measurement(
        "scale/full-rebuild",
        rebuild_ns,
        corpus.fragments as f64 / (rebuild_ns / 1e9),
    );

    let mut v1 = Vec::new();
    persist::write_sharded_fragments(&mut v1, &shards).expect("v1 dumps");
    drop(shards);
    let mut parse_ns = 0.0;
    for _ in 0..2 {
        let begin = Instant::now();
        let decoded = persist::read_sharded_fragments(v1.as_slice()).expect("v1 parses");
        let reparsed = ShardedEngine::builder(app.clone())
            .source(IngestSource::ShardDumps(&decoded))
            .build()
            .expect("parse-rebuild");
        parse_ns = begin.elapsed().as_nanos() as f64;
        assert_eq!(reparsed.fragment_count(), engine.fragment_count());
        drop(reparsed);
        drop(decoded);
    }
    drop(v1);
    c.record_measurement(
        "scale/parse-rebuild",
        parse_ns,
        corpus.fragments as f64 / (parse_ns / 1e9),
    );
    println!(
        "load paths: arena {:.1}ms vs parse-rebuild {:.1}ms ({:.1}x)",
        arena_ns / 1e6,
        parse_ns / 1e6,
        parse_ns / arena_ns.max(1.0)
    );

    // Delta apply: churn ten fragments of one equality group — the
    // O(affected-group) write path — against `scale/full-rebuild`, the
    // price of the same logical change without incremental
    // maintenance.
    let churn = 10.min(corpus.fragments / corpus.groups).max(1);
    let upserts: Vec<_> = (1..=churn as i64)
        .map(|quantity| {
            let mut fragment = corpus.fragment(0, quantity);
            if let Some(count) = fragment.keyword_occurrences.values_mut().next() {
                *count += 1;
            }
            fragment
        })
        .collect();
    let removes = upserts.iter().map(|f| f.id.clone()).collect();
    let delta = IndexDelta::new(removes, upserts);
    let begin = Instant::now();
    let stats = engine.apply_delta(delta);
    let delta_ns = begin.elapsed().as_nanos() as f64;
    assert_eq!(stats.added, churn);
    c.record_measurement(
        "scale/delta-apply",
        delta_ns,
        churn as f64 / (delta_ns / 1e9),
    );
    println!(
        "maintenance: delta {:.2}ms vs full rebuild {:.1}ms ({:.0}x)",
        delta_ns / 1e6,
        rebuild_ns / 1e6,
        rebuild_ns / delta_ns.max(1.0)
    );
}

/// `n` single/double-keyword requests whose vocabulary ranks are drawn
/// from the corpus's own Zipf exponent.
fn skewed_requests(corpus: &ScaleCorpus, n: usize) -> Vec<SearchRequest> {
    let zipf = Zipf::new(corpus.vocab, corpus.keyword_skew);
    let vocab = corpus.vocab();
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    (0..n)
        .map(|i| {
            let words = 1 + i % 2;
            let keywords: Vec<&str> = (0..words)
                .map(|_| vocab[zipf.sample(&mut rng)].as_str())
                .collect();
            SearchRequest::new(&keywords)
                .k(10)
                .min_size(rng.random_range(1u64..=8))
        })
        .collect()
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
