//! The `net` suite: closed-loop serving performance **over real
//! sockets** — end-to-end p50/p99 search latency and sustained qps of
//! the HTTP front-end under mixed search/update traffic, at 1 and 4
//! shards, plus the micro-costs of the socket path itself (an HTTP
//! round-trip for a cache hit vs the in-process call — the price of
//! the wire).
//!
//! Rows mirror `BENCH_serve.json` (`serve/s{n}/mixed-*` ↔
//! `net/s{n}/socket-*`), so diffing the two files prices HTTP framing,
//! JSON (de)serialization and kernel socket hops in isolation. CI's
//! `net` job regenerates this file every run and fails if qps reads
//! zero.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::{select_keywords, KeywordTemperature};
use dash_core::crawl::reference;
use dash_core::{DashEngine, Fragment, FragmentId, IndexDelta, SearchRequest};
use dash_mapreduce::WorkflowStats;
use dash_net::{loadgen as netload, NetClient, NetConfig, NetServer};
use dash_net::{Replica, ReplicaConfig, ReplicationHub};
use dash_relation::Value;
use dash_serve::loadgen::LoadProfile;
use dash_serve::{DashServer, ServeConfig};
use dash_tpch::{generate, Scale, TpchConfig};

/// Re-entry point for the concurrency axis: a bench process spawned
/// with `DASH_CONN_HOLD="<addr> <count>"` is not a benchmark — it
/// parks `count` idle keep-alive connections against `addr` (its own
/// fd budget, separate from the parent's), reports how many it
/// opened, and holds them until the parent closes its stdin.
fn hold_connections(spec: &str) -> ! {
    use std::io::{BufRead, Write};
    let mut parts = spec.split_whitespace();
    let addr: std::net::SocketAddr = parts
        .next()
        .and_then(|a| a.parse().ok())
        .expect("DASH_CONN_HOLD is '<addr> <count>'");
    let count: usize = parts
        .next()
        .and_then(|n| n.parse().ok())
        .expect("DASH_CONN_HOLD is '<addr> <count>'");
    let mut held = Vec::with_capacity(count);
    for _ in 0..count {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(_) => break,
        }
    }
    println!("ready {}", held.len());
    std::io::stdout().flush().expect("report to parent");
    let mut line = String::new();
    while std::io::stdin().lock().read_line(&mut line).unwrap_or(0) > 0 {}
    std::process::exit(0)
}

fn bench_net(c: &mut Criterion) {
    if let Some(spec) = std::env::var_os("DASH_CONN_HOLD") {
        hold_connections(spec.to_string_lossy().as_ref());
    }

    // The serve suite's workload, behind sockets: TPC-H Q2 at micro
    // scale, hot/warm/cold keyword mix, update churn from the crawl.
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("builds");

    let mut vocab: Vec<String> = Vec::new();
    for temperature in KeywordTemperature::all() {
        vocab.extend(select_keywords(&single, temperature, 8, 11));
    }
    let update_pool: Vec<_> = fragments.iter().take(32).cloned().collect();
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let profile = LoadProfile {
        clients: 4,
        ops_per_client: if fast { 200 } else { 800 },
        update_every: 20,
        seed: 11,
        ..LoadProfile::default()
    };

    for shards in [1usize, 4] {
        let server = Arc::new(
            DashServer::from_fragments(
                app.clone(),
                &fragments,
                ServeConfig::default().shards(shards),
            )
            .expect("server builds"),
        );
        let net = NetServer::serve_primary(
            server,
            db.clone(),
            TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
            NetConfig::default(),
        )
        .expect("net server starts");
        let report = netload::run(net.addr(), &vocab, &update_pool, &profile);
        assert_eq!(report.errors, 0, "socket load must run clean");
        println!(
            "net/s{shards} closed-loop run: {}\n{}",
            report.summary(),
            report.stage_table
        );
        c.record_measurement(
            &format!("net/s{shards}/socket-p50"),
            report.p50_ns as f64,
            1e9 / (report.p50_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("net/s{shards}/socket-p99"),
            report.p99_ns as f64,
            1e9 / (report.p99_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("net/s{shards}/socket-qps"),
            1e9 / report.qps.max(1e-9),
            report.qps,
        );
    }

    // Micro-costs: one HTTP round-trip for a cache-hit search vs the
    // same request in-process — the socket layer's floor.
    let server = Arc::new(
        DashServer::from_fragments(app.clone(), &fragments, ServeConfig::default())
            .expect("server builds"),
    );
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        db,
        TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
        NetConfig::default(),
    )
    .expect("net server starts");
    let hot = select_keywords(&single, KeywordTemperature::Hot, 1, 7)
        .pop()
        .expect("a hot keyword");
    let request = SearchRequest::new(&[hot.as_str()]).k(10).min_size(1000);
    server.search(&request); // warm the cache
    let mut client = NetClient::connect(net.addr()).expect("client connects");
    let mut group = c.benchmark_group("net/path");
    group.bench_function("http-cache-hit", |b| {
        b.iter(|| client.search(&request).expect("search over socket"))
    });
    group.bench_function("in-process-cache-hit", |b| {
        b.iter(|| server.search(&request))
    });
    group.finish();

    // Concurrency axis: the same cache-hit search, measured while an
    // idle herd of keep-alive connections is parked on the front-end —
    // the event loop's sweep cost must track *active* connections, not
    // open ones. 100 and 1k park in-process; 10k would need ~20k fds
    // in one process (client + server side), past the container's
    // limit, so two `DASH_CONN_HOLD` child processes park 5k each and
    // only the server-side fds land here.
    let iters = if fast { 120 } else { 400 };
    for (label, herd) in [
        ("conns-100", 100usize),
        ("conns-1k", 1_000),
        ("conns-10k", 10_000),
    ] {
        let mut local: Vec<std::net::TcpStream> = Vec::new();
        let mut children: Vec<std::process::Child> = Vec::new();
        let mut parked = 0usize;
        if herd <= 1_000 {
            for _ in 0..herd {
                local.push(std::net::TcpStream::connect(net.addr()).expect("herd connects"));
            }
            parked = local.len();
        } else {
            use std::io::BufRead;
            let exe = std::env::current_exe().expect("bench exe");
            for _ in 0..2 {
                children.push(
                    std::process::Command::new(&exe)
                        .env("DASH_CONN_HOLD", format!("{} {}", net.addr(), herd / 2))
                        .stdin(std::process::Stdio::piped())
                        .stdout(std::process::Stdio::piped())
                        .spawn()
                        .expect("holder spawns"),
                );
            }
            for child in &mut children {
                let mut line = String::new();
                std::io::BufReader::new(child.stdout.take().expect("holder stdout"))
                    .read_line(&mut line)
                    .expect("holder reports");
                parked += line
                    .trim()
                    .strip_prefix("ready ")
                    .and_then(|n| n.parse::<usize>().ok())
                    .expect("holder readiness line");
            }
        }
        assert!(
            parked * 10 >= herd * 9,
            "{label}: only parked {parked} of {herd} connections"
        );
        // The herd counts as open only once the loop accepted it (the
        // +1 is the measuring client's own connection).
        let deadline = Instant::now() + Duration::from_secs(60);
        while (net.counters().open as usize) < parked + 1 {
            assert!(
                Instant::now() < deadline,
                "{label}: open={} never reached {}",
                net.counters().open,
                parked + 1
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let begin = Instant::now();
            client.search(&request).expect("search under herd");
            samples.push(begin.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = samples[samples.len() / 2];
        c.record_measurement(&format!("net/concurrency/{label}"), p50, 1e9 / p50.max(1.0));
        drop(local);
        for mut child in children {
            drop(child.stdin.take());
            let _ = child.wait();
        }
    }

    // Failover axis: what recovery costs on the replication tier — the
    // snapshot bootstrap a fresh replica pays to join, the delta-log
    // catch-up a briefly partitioned replica pays instead, and the
    // write-availability gap from killing the primary to a promoted
    // replica acking its next publication. CI's `cluster` job gates on
    // these rows being present and nonzero.
    let serve = ServeConfig::default().shards(2);
    let server = Arc::new(
        DashServer::from_fragments(app.clone(), &fragments, serve.clone()).expect("server builds"),
    );
    let hub = ReplicationHub::start(
        Arc::clone(&server),
        TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
    )
    .expect("hub starts");
    let timeout = Duration::from_secs(30);
    let fresh_delta = |n: u64| {
        IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("failover-churn"), Value::Int(7)]),
            [("failover".to_string(), 1 + n % 5)].into_iter().collect(),
            1,
        )])
    };

    let begin = Instant::now();
    let replica = Replica::connect(
        hub.addr(),
        app,
        ReplicaConfig {
            serve,
            retry: Duration::from_millis(5),
        },
    );
    assert!(replica.wait_ready(timeout), "replica bootstraps");
    let bootstrap_ns = begin.elapsed().as_nanos() as f64;
    c.record_measurement(
        "net/failover/snapshot-bootstrap",
        bootstrap_ns,
        1e9 / bootstrap_ns.max(1.0),
    );

    // Partition the replica, publish past it, reconnect: the repair
    // must run through the delta log (no second snapshot transfer).
    let parked = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let dead = parked.local_addr().expect("parked addr");
    drop(parked); // nothing listens here now
    replica.retarget(dead);
    assert!(replica.wait_connected(false, timeout), "partitioned");
    let mut epoch = server.epoch();
    for n in 0..8 {
        epoch = server.publish_with_epoch(fresh_delta(n)).1;
    }
    let begin = Instant::now();
    replica.retarget(hub.addr());
    assert!(replica.wait_epoch(epoch, timeout), "replica caught up");
    let catchup_ns = begin.elapsed().as_nanos() as f64;
    assert_eq!(replica.bootstraps(), 1, "repair used the delta log");
    c.record_measurement(
        "net/failover/delta-catchup",
        catchup_ns,
        1e9 / catchup_ns.max(1.0),
    );

    // Kill the primary; the write gap closes when the promoted replica
    // acks the next publication in the same epoch sequence.
    let begin = Instant::now();
    drop(hub);
    let promoted = replica.promote().expect("replica has state");
    let (_, acked) = promoted.publish_with_epoch(fresh_delta(99));
    let promotion_ns = begin.elapsed().as_nanos() as f64;
    assert_eq!(acked, epoch + 1, "promotion continues the epoch sequence");
    c.record_measurement(
        "net/failover/promotion-gap",
        promotion_ns,
        1e9 / promotion_ns.max(1.0),
    );
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
