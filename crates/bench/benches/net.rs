//! The `net` suite: closed-loop serving performance **over real
//! sockets** — end-to-end p50/p99 search latency and sustained qps of
//! the HTTP front-end under mixed search/update traffic, at 1 and 4
//! shards, plus the micro-costs of the socket path itself (an HTTP
//! round-trip for a cache hit vs the in-process call — the price of
//! the wire).
//!
//! Rows mirror `BENCH_serve.json` (`serve/s{n}/mixed-*` ↔
//! `net/s{n}/socket-*`), so diffing the two files prices HTTP framing,
//! JSON (de)serialization and kernel socket hops in isolation. CI's
//! `net` job regenerates this file every run and fails if qps reads
//! zero.

use std::net::TcpListener;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dash_bench::{select_keywords, KeywordTemperature};
use dash_core::crawl::reference;
use dash_core::{DashEngine, SearchRequest};
use dash_mapreduce::WorkflowStats;
use dash_net::{loadgen as netload, NetClient, NetConfig, NetServer};
use dash_serve::loadgen::LoadProfile;
use dash_serve::{DashServer, ServeConfig};
use dash_tpch::{generate, Scale, TpchConfig};

fn bench_net(c: &mut Criterion) {
    // The serve suite's workload, behind sockets: TPC-H Q2 at micro
    // scale, hot/warm/cold keyword mix, update churn from the crawl.
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("builds");

    let mut vocab: Vec<String> = Vec::new();
    for temperature in KeywordTemperature::all() {
        vocab.extend(select_keywords(&single, temperature, 8, 11));
    }
    let update_pool: Vec<_> = fragments.iter().take(32).cloned().collect();
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let profile = LoadProfile {
        clients: 4,
        ops_per_client: if fast { 200 } else { 800 },
        update_every: 20,
        seed: 11,
        ..LoadProfile::default()
    };

    for shards in [1usize, 4] {
        let server = Arc::new(
            DashServer::from_fragments(
                app.clone(),
                &fragments,
                ServeConfig::default().shards(shards),
            )
            .expect("server builds"),
        );
        let net = NetServer::serve_primary(
            server,
            db.clone(),
            TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
            NetConfig::default(),
        )
        .expect("net server starts");
        let report = netload::run(net.addr(), &vocab, &update_pool, &profile);
        assert_eq!(report.errors, 0, "socket load must run clean");
        c.record_measurement(
            &format!("net/s{shards}/socket-p50"),
            report.p50_ns as f64,
            1e9 / (report.p50_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("net/s{shards}/socket-p99"),
            report.p99_ns as f64,
            1e9 / (report.p99_ns as f64).max(1.0),
        );
        c.record_measurement(
            &format!("net/s{shards}/socket-qps"),
            1e9 / report.qps.max(1e-9),
            report.qps,
        );
    }

    // Micro-costs: one HTTP round-trip for a cache-hit search vs the
    // same request in-process — the socket layer's floor.
    let server = Arc::new(
        DashServer::from_fragments(app, &fragments, ServeConfig::default()).expect("server builds"),
    );
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        db,
        TcpListener::bind("127.0.0.1:0").expect("ephemeral port"),
        NetConfig::default(),
    )
    .expect("net server starts");
    let hot = select_keywords(&single, KeywordTemperature::Hot, 1, 7)
        .pop()
        .expect("a hot keyword");
    let request = SearchRequest::new(&[hot.as_str()]).k(10).min_size(1000);
    server.search(&request); // warm the cache
    let mut client = NetClient::connect(net.addr()).expect("client connects");
    let mut group = c.benchmark_group("net/path");
    group.bench_function("http-cache-hit", |b| {
        b.iter(|| client.search(&request).expect("search over socket"))
    });
    group.bench_function("in-process-cache-hit", |b| {
        b.iter(|| server.search(&request))
    });
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
