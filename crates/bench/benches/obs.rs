//! The `obs` suite: the price of observing — what one span, one
//! counter bump, one histogram record and one full registry render
//! cost, enabled and disabled. Instrumentation only stays on in
//! production if it is effectively free, so CI gates the enabled
//! span's amortized cost under 1µs (it measures tens of ns; the
//! budget is deliberately loose to absorb noisy shared runners) and
//! the disabled path under the enabled one.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dash_obs::{Registry, SpanGuard};

/// Amortized nanoseconds per call over `iters` iterations, after a
/// 10% warmup pass.
fn per_op_ns(iters: u64, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        op();
    }
    let begin = Instant::now();
    for _ in 0..iters {
        op();
    }
    begin.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_obs(c: &mut Criterion) {
    let fast = std::env::var_os("DASH_BENCH_FAST").is_some();
    let iters: u64 = if fast { 200_000 } else { 2_000_000 };

    let registry = Registry::new();
    let hist = registry.histogram("dash_bench_span_ns");
    let counter = registry.counter("dash_bench_ops_total");

    // One full span: start (enabled check + clock read) and drop
    // (clock read + bucket index + two relaxed fetch_adds).
    let span_enabled = per_op_ns(iters, || drop(black_box(SpanGuard::start(&hist))));
    registry.set_enabled(false);
    let span_disabled = per_op_ns(iters, || drop(black_box(SpanGuard::start(&hist))));
    registry.set_enabled(true);

    let counter_inc = per_op_ns(iters, || counter.inc());
    let mut lcg = 0u64;
    let record = per_op_ns(iters, || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        hist.record(lcg >> 32);
    });

    // A populated registry render — the per-scrape cost of /metrics
    // at a realistic series count (24 counters, 8 histograms).
    let scrape = Registry::new();
    for i in 0..24u64 {
        scrape.counter(&format!("dash_bench_c{i}_total")).add(i);
    }
    for i in 0..8u64 {
        let h = scrape.histogram(&format!("dash_bench_h{i}_ns"));
        for s in 0..1_000u64 {
            h.record(s * s);
        }
    }
    let render = per_op_ns(if fast { 2_000 } else { 20_000 }, || {
        black_box(scrape.render());
    });

    // The headline gate, enforced here so a local `cargo bench` fails
    // exactly like CI's jq gate on the JSON row.
    assert!(
        span_enabled < 1_000.0,
        "enabled span costs {span_enabled:.0}ns — over the 1µs budget"
    );

    println!(
        "obs micro-costs: span-enabled {span_enabled:.1}ns, span-disabled {span_disabled:.1}ns, \
         counter-inc {counter_inc:.1}ns, histogram-record {record:.1}ns, render {render:.0}ns"
    );
    for (name, ns) in [
        ("span-enabled", span_enabled),
        ("span-disabled", span_disabled),
        ("counter-inc", counter_inc),
        ("histogram-record", record),
        ("render-scrape", render),
    ] {
        c.record_measurement(&format!("obs/{name}"), ns, 1e9 / ns.max(1e-9));
    }
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
