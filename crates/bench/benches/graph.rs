//! Criterion micro-benchmarks for fragment-graph construction (the
//! Table IV measurement) — bulk build vs the paper's incremental
//! insertion, plus the O(1) handle-native locate on the top-k hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dash_core::crawl::reference;
use dash_core::{Frag, Fragment, FragmentCatalog, FragmentGraph};
use dash_tpch::{generate, Scale, TpchConfig};

fn q2_fragments() -> (Vec<Fragment>, Option<usize>) {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    (fragments, app.query.range_selection_index())
}

fn bench_graph(c: &mut Criterion) {
    let (fragments, range_pos) = q2_fragments();
    let catalog = FragmentCatalog::from_fragments(&fragments);

    c.bench_function("graph/bulk-build", |b| {
        b.iter(|| FragmentGraph::build(&catalog, &fragments, range_pos).expect("builds"))
    });

    c.bench_function("graph/catalog-intern", |b| {
        b.iter(|| FragmentCatalog::from_fragments(&fragments))
    });

    c.bench_function("graph/incremental-insert", |b| {
        b.iter_batched(
            || FragmentGraph::build(&catalog, &[], range_pos).expect("empty graph"),
            |mut graph| {
                for f in &fragments {
                    graph.insert(&catalog, f);
                }
                graph
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("graph/locate+neighbors", |b| {
        let graph = FragmentGraph::build(&catalog, &fragments, range_pos).expect("builds");
        let frags: Vec<Frag> = fragments
            .iter()
            .map(|f| catalog.frag(&f.id).expect("interned"))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let frag = frags[i % frags.len()];
            i += 1;
            let node = graph.locate(frag).expect("present");
            graph.neighbors(node)
        })
    });
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
