//! Incremental fragment-index maintenance — the paper's first
//! future-work item (Section VIII): "some efficient update mechanisms
//! that can efficiently update (affected portions of) a fragment index
//! are desirable".
//!
//! ## The delta write path
//!
//! Every mutation — single-engine or sharded — flows through one
//! abstraction, the [`IndexDelta`]: the set of fragment identifiers
//! whose index entries are stale (`removes`) plus the freshly derived
//! fragments to splice in (`adds`). The pipeline is
//!
//! 1. **find** — a base-table delta (inserted or deleted record)
//!    touches exactly the fragments whose identifiers appear in the
//!    join rows the record participates in; [`affected_fragment_ids`]
//!    finds them by joining a one-record shadow of the delta's relation
//!    against the rest of the database;
//! 2. **build** — [`build_delta`] recomputes the affected fragments
//!    from the current database and packages them as an [`IndexDelta`];
//! 3. **apply** — [`FragmentIndex::apply`] splices the delta into every
//!    structure atomically: per-keyword posting splices are batched
//!    into **one** arena rewrite + one TF re-sort, and per-group graph
//!    splices touch only the affected groups' columns. No full rebuild.
//!
//! [`DashEngine`] applies a delta to its one index;
//! [`ShardedEngine`](crate::sharded::ShardedEngine) routes each delta
//! entry to the shard owning its equality group and applies the
//! sub-deltas on the shard worker pool — per-shard work only, with
//! search results staying byte-identical to a freshly built single
//! engine (see `crate::sharded`).

use std::collections::{BTreeMap, BTreeSet};

use dash_relation::{Database, Record, Table, Value};
use dash_webapp::WebApplication;

use crate::crawl::reference;
use crate::engine::DashEngine;
use crate::fragment::{Fragment, FragmentId};
use crate::index::graph::group_key;
use crate::index::FragmentIndex;
use crate::Result;

/// A batched, atomic mutation of a fragment index: which identifiers'
/// entries are stale, and the fresh fragments replacing them. The unit
/// of the unified write path — built once per database change
/// ([`build_delta`]), applied per index ([`FragmentIndex::apply`]) or
/// routed per shard
/// ([`ShardedEngine::apply_delta`](crate::sharded::ShardedEngine::apply_delta)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexDelta {
    /// Identifiers whose current index entries must go (stale versions
    /// and emptied identifiers). An identifier that is also re-added
    /// below is replaced, not dropped.
    pub removes: Vec<FragmentId>,
    /// Freshly derived fragments to (re)insert. Duplicated identifiers
    /// are allowed (concatenated deltas produce them); the last entry
    /// for an identifier wins.
    pub adds: Vec<Fragment>,
}

impl IndexDelta {
    /// A delta that removes and (re)inserts the given sets.
    pub fn new(removes: Vec<FragmentId>, adds: Vec<Fragment>) -> Self {
        IndexDelta { removes, adds }
    }

    /// A pure-removal delta.
    pub fn removing(removes: Vec<FragmentId>) -> Self {
        IndexDelta {
            removes,
            adds: Vec::new(),
        }
    }

    /// A pure-insertion delta.
    pub fn adding(adds: Vec<Fragment>) -> Self {
        IndexDelta {
            removes: Vec::new(),
            adds,
        }
    }

    /// Whether the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.adds.is_empty()
    }

    /// The equality-group keys this delta touches — every remove's and
    /// every add's identifier reduced by [`group_key`]. This is the
    /// group half of a [`DeltaSignature`]; the serving layer's result
    /// cache invalidates exactly the entries whose candidate groups
    /// intersect it.
    pub fn touched_groups(&self, range_position: Option<usize>) -> BTreeSet<Vec<Value>> {
        self.removes
            .iter()
            .chain(self.adds.iter().map(|f| &f.id))
            .map(|id| group_key(id, range_position))
            .collect()
    }

    /// The add-side half of a [`DeltaSignature`]: the group keys plus
    /// every keyword the delta's fresh fragments introduce. Keywords a
    /// *removal* takes out of the index are not in the delta itself
    /// (removes carry only identifiers) — engines widen the signature
    /// with the removed fragments' live terms before applying (see
    /// [`ShardedEngine::delta_signature`](crate::sharded::ShardedEngine::delta_signature)).
    pub fn signature(&self, range_position: Option<usize>) -> DeltaSignature {
        DeltaSignature {
            groups: self.touched_groups(range_position),
            keywords: self
                .adds
                .iter()
                .flat_map(|f| f.keyword_occurrences.keys().cloned())
                .collect(),
        }
    }
}

/// What a published delta can possibly perturb: the equality groups it
/// touches and the keywords whose document frequencies (hence IDF and
/// every score built on it) it shifts. A cached search result is
/// provably still byte-identical after a delta whose signature is
/// disjoint from the entry's dependencies — candidate pages only arise
/// in groups holding a request keyword, and scores only move when a
/// request keyword's posting set changes — which is what lets the
/// serving cache invalidate precisely instead of flushing wholesale.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSignature {
    /// Equality-group keys with at least one removed or (re)added
    /// fragment.
    pub groups: BTreeSet<Vec<Value>>,
    /// Keywords entering the index (from adds) or leaving it (from the
    /// removed fragments' live terms, filled in by the engine).
    pub keywords: BTreeSet<String>,
}

impl DeltaSignature {
    /// Whether the signature could affect an entry depending on
    /// `groups` (its candidate equality groups) and `keywords` (its
    /// request keywords): any overlap on either axis.
    pub fn hits(&self, groups: &BTreeSet<Vec<Value>>, keywords: &BTreeSet<String>) -> bool {
        self.groups.iter().any(|g| groups.contains(g))
            || self.keywords.iter().any(|w| keywords.contains(w))
    }
}

/// One base-table record change — the unit of the bulk maintenance
/// path. `db` must already reflect the change (record inserted /
/// removed), exactly as for
/// [`DashEngine::apply_insert`] / [`DashEngine::apply_delete`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecordChange {
    /// The relation the record was inserted into or deleted from.
    pub relation: String,
    /// The inserted record, or the deleted row captured beforehand.
    pub record: Record,
}

impl RecordChange {
    /// A change of `record` in `relation` (insert or delete — the
    /// delta pipeline recomputes affected fragments either way).
    pub fn new(relation: impl Into<String>, record: Record) -> Self {
        RecordChange {
            relation: relation.into(),
            record,
        }
    }
}

/// What applying a delta did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// Fragments removed from the index (stale versions + emptied ids).
    pub removed: usize,
    /// Fragments (re)inserted.
    pub added: usize,
}

impl RefreshStats {
    /// Accumulates another application's counts (per-shard sub-deltas
    /// sum into the engine-level stats).
    pub fn merge(&mut self, other: RefreshStats) {
        self.removed += other.removed;
        self.added += other.added;
    }
}

/// The fragment identifiers affected by one record of `relation`.
///
/// `db` must contain the record's foreign-key parents (for an insert,
/// call after inserting or with the record passed here and not yet
/// inserted — only the shadow copy is joined; for a delete, call before
/// deleting).
///
/// # Errors
///
/// Propagates relational errors (unknown relation, schema mismatch).
pub fn affected_fragment_ids(
    app: &WebApplication,
    db: &Database,
    relation: &str,
    record: &Record,
) -> Result<Vec<FragmentId>> {
    // Shadow database: `relation` holds only the delta record.
    let mut shadow = db.clone();
    let schema = db.table(relation)?.schema().clone();
    let table = Table::with_records(schema, vec![record.clone()])?;
    shadow.add_table(table);
    let fragments = reference::fragments(app, &shadow)?;
    // Outer-join padding in the shadow can fabricate fragments for *other*
    // left rows (they all pad); keep only identifiers whose rows involve
    // the delta — which is exactly those with nonzero records containing
    // the record's own selection/join values. Since only `relation` was
    // shrunk, every produced fragment that contains ≥1 record either
    // involves the delta or is a padded left row; both kinds are affected
    // conservatively re-derivable, so refresh them all. (Cheap: the shadow
    // join is tiny.)
    Ok(fragments.into_iter().map(|f| f.id).collect())
}

/// The fragment identifiers affected by a *batch* of record changes —
/// the bulk counterpart of [`affected_fragment_ids`]. The shadow joins
/// are batched per relation: all of a relation's delta records join the
/// rest of the database **once**, instead of once per record, so a
/// bulk re-crawl of N changes pays one shadow join per touched relation
/// rather than N.
///
/// # Errors
///
/// Propagates relational errors (unknown relation, schema mismatch).
pub fn bulk_affected_ids(
    app: &WebApplication,
    db: &Database,
    changes: &[RecordChange],
) -> Result<BTreeSet<FragmentId>> {
    let mut by_relation: BTreeMap<&str, Vec<Record>> = BTreeMap::new();
    for change in changes {
        by_relation
            .entry(change.relation.as_str())
            .or_default()
            .push(change.record.clone());
    }
    let mut ids = BTreeSet::new();
    for (relation, records) in by_relation {
        // Shadow database: `relation` holds only this batch's delta
        // records; their FK parents are still in `db`. Distinct delta
        // records of ONE relation never join each other (a PSJ query
        // joins a relation against the others, not itself), so one
        // shadow join covers the whole batch exactly.
        let mut shadow = db.clone();
        let schema = db.table(relation)?.schema().clone();
        let table = Table::with_records(schema, records)?;
        shadow.add_table(table);
        for fragment in reference::fragments(app, &shadow)? {
            ids.insert(fragment.id);
        }
    }
    Ok(ids)
}

/// Builds one [`IndexDelta`] bringing a whole batch of record changes
/// up to date: batched shadow joins find the affected identifiers
/// ([`bulk_affected_ids`]), then **one** scoped re-crawl
/// ([`reference::fragments_for_ids`]) recomputes them — N changes cost
/// one join per touched relation plus one recompute join, where the
/// per-record path pays N of each.
///
/// # Errors
///
/// Propagates relational errors.
pub fn bulk_delta(
    app: &WebApplication,
    db: &Database,
    changes: &[RecordChange],
) -> Result<IndexDelta> {
    if changes.is_empty() {
        return Ok(IndexDelta::default());
    }
    let ids = bulk_affected_ids(app, db, changes)?;
    let adds = reference::fragments_for_ids(app, db, &ids)?;
    Ok(IndexDelta::new(ids.into_iter().collect(), adds))
}

/// Builds the [`IndexDelta`] bringing the entries of `ids` up to date
/// with the current `db`: every target identifier is marked stale, and
/// the ones that still derive fragments are re-added fresh.
///
/// # Errors
///
/// Propagates relational errors from the recomputation join.
pub fn build_delta(app: &WebApplication, db: &Database, ids: &[FragmentId]) -> Result<IndexDelta> {
    if ids.is_empty() {
        return Ok(IndexDelta::default());
    }
    let targets: BTreeSet<FragmentId> = ids.iter().cloned().collect();
    // Current truth for the affected identifiers — a scoped re-crawl
    // that never tokenizes rows outside the target groups.
    let adds = reference::fragments_for_ids(app, db, &targets)?;
    Ok(IndexDelta::new(targets.into_iter().collect(), adds))
}

/// Recomputes `ids` from the current `db` and splices them into `index`
/// — [`build_delta`] followed by [`FragmentIndex::apply`].
///
/// # Errors
///
/// Propagates relational errors from the recomputation join.
pub fn refresh(
    index: &mut FragmentIndex,
    app: &WebApplication,
    db: &Database,
    ids: &[FragmentId],
) -> Result<RefreshStats> {
    let delta = build_delta(app, db, ids)?;
    Ok(index.apply(&delta))
}

impl DashEngine {
    /// Applies a record insertion: `db` must already contain the record.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_insert(
        &mut self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        let delta = self.record_delta(db, relation, record)?;
        Ok(self.apply_delta(&delta))
    }

    /// Applies a record deletion: `db` must already have the record
    /// removed, while `record` is the deleted row (captured beforehand).
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_delete(
        &mut self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        // The shadow join needs the record's FK parents, which are still
        // in `db`; the record itself lives only in the shadow.
        let delta = self.record_delta(db, relation, record)?;
        Ok(self.apply_delta(&delta))
    }

    /// Builds the delta for one base-table record change (find affected
    /// identifiers, recompute them).
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn record_delta(
        &self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<IndexDelta> {
        let ids = affected_fragment_ids(self.app(), db, relation, record)?;
        build_delta(self.app(), db, &ids)
    }

    /// Applies a prebuilt delta to the index.
    pub fn apply_delta(&mut self, delta: &IndexDelta) -> RefreshStats {
        let stats = self.index_mut().apply(delta);
        let count = self.index().graph.node_count();
        self.set_fragment_count(count);
        stats
    }

    /// Applies a whole batch of record changes through one
    /// [`bulk_delta`]: one shadow join per touched relation plus one
    /// scoped re-crawl, where a loop over
    /// [`DashEngine::apply_insert`] / [`DashEngine::apply_delete`]
    /// pays a shadow join *and* a recompute join per record. `db` must
    /// already reflect every change.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_changes(
        &mut self,
        db: &Database,
        changes: &[RecordChange],
    ) -> Result<RefreshStats> {
        let delta = bulk_delta(self.app(), db, changes)?;
        Ok(self.apply_delta(&delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DashConfig, DashEngine};
    use crate::search::SearchRequest;
    use dash_relation::Value;
    use dash_webapp::fooddb;

    fn rebuild(db: &Database) -> DashEngine {
        let app = fooddb::search_application().unwrap();
        DashEngine::build(&app, db, &DashConfig::default()).unwrap()
    }

    fn assert_same_index(a: &DashEngine, b: &DashEngine) {
        assert_eq!(
            a.index().graph.node_count(),
            b.index().graph.node_count(),
            "node counts differ"
        );
        assert_eq!(a.index().graph.edge_count(), b.index().graph.edge_count());
        // Same search behavior on a battery of requests.
        for kw in ["burger", "fries", "coffee", "sushi", "thai"] {
            for s in [1, 20, 100] {
                let req = SearchRequest::new(&[kw]).k(5).min_size(s);
                assert_eq!(a.search(&req), b.search(&req), "kw={kw} s={s}");
            }
        }
    }

    #[test]
    fn insert_new_restaurant_updates_index() {
        let mut db = fooddb::database();
        let mut engine = rebuild(&db);
        // New sushi place at a brand-new (Japanese, 25) fragment.
        let record = Record::new(vec![
            Value::Int(8),
            Value::str("Sushi Go"),
            Value::str("Japanese"),
            Value::Int(25),
            Value::str("4.9"),
        ]);
        db.table_mut("restaurant")
            .unwrap()
            .insert(record.clone())
            .unwrap();
        let stats = engine.apply_insert(&db, "restaurant", &record).unwrap();
        assert!(stats.added >= 1);
        // The new page is findable.
        let hits = engine.search(&SearchRequest::new(&["sushi"]).k(1).min_size(1));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].url.contains("c=Japanese"));
        // And the incremental index equals a from-scratch rebuild.
        assert_same_index(&engine, &rebuild(&db));
    }

    #[test]
    fn insert_comment_grows_existing_fragment() {
        let mut db = fooddb::database();
        let mut engine = rebuild(&db);
        let total_occurrences = |engine: &DashEngine| {
            engine
                .index()
                .inverted
                .postings("burger")
                .map_or(0, |list| list.iter().map(|p| p.occurrences).sum::<u64>())
        };
        let before = total_occurrences(&engine);
        // Another burger comment for Burger Queen (rid=1, American,10).
        let record = Record::new(vec![
            Value::Int(207),
            Value::Int(1),
            Value::Int(120),
            Value::str("Best burger ever"),
            Value::str("07/10"),
        ]);
        db.table_mut("comment")
            .unwrap()
            .insert(record.clone())
            .unwrap();
        engine.apply_insert(&db, "comment", &record).unwrap();
        let after = total_occurrences(&engine);
        assert!(after > before);
        assert_same_index(&engine, &rebuild(&db));
    }

    #[test]
    fn delete_restaurant_removes_fragment() {
        let mut db = fooddb::database();
        let mut engine = rebuild(&db);
        // Delete Bond's Cafe (rid=7) and its comment (FK hygiene).
        let deleted_comment = db
            .table("comment")
            .unwrap()
            .iter()
            .find(|r| r.get(1) == Some(&Value::Int(7)))
            .cloned()
            .unwrap();
        db.table_mut("comment")
            .unwrap()
            .delete_where(|r| r.get(1) == Some(&Value::Int(7)));
        let deleted_restaurant = db
            .table("restaurant")
            .unwrap()
            .iter()
            .find(|r| r.get(0) == Some(&Value::Int(7)))
            .cloned()
            .unwrap();
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|r| r.get(0) == Some(&Value::Int(7)));

        engine
            .apply_delete(&db, "comment", &deleted_comment)
            .unwrap();
        engine
            .apply_delete(&db, "restaurant", &deleted_restaurant)
            .unwrap();
        // (American, 9) is gone; "coffee" finds nothing.
        assert!(engine
            .search(&SearchRequest::new(&["coffee"]).k(1).min_size(1))
            .is_empty());
        assert_eq!(engine.fragment_count(), 4);
        assert_same_index(&engine, &rebuild(&db));
    }

    #[test]
    fn refresh_with_no_ids_is_noop() {
        let db = fooddb::database();
        let mut engine = rebuild(&db);
        let app = engine.app().clone();
        let stats = refresh(engine.index_mut(), &app, &db, &[]).unwrap();
        assert_eq!(stats, RefreshStats::default());
    }

    #[test]
    fn bulk_changes_match_per_record_application() {
        // apply_changes (batched shadow joins + one scoped re-crawl)
        // must land on the same index as the per-record loop and as a
        // rebuild — across relations and mixed insert/delete.
        let mut db = fooddb::database();
        let mut per_record = rebuild(&db);
        let mut changes = Vec::new();
        for (rid, name, cuisine, budget) in [
            (60i64, "Bulk Bistro", "American", 13i64),
            (61, "Batch Bar", "Korean", 9),
        ] {
            let record = Record::new(vec![
                Value::Int(rid),
                Value::str(name),
                Value::str(cuisine),
                Value::Int(budget),
                Value::str("4.2"),
            ]);
            db.table_mut("restaurant")
                .unwrap()
                .insert(record.clone())
                .unwrap();
            changes.push(RecordChange::new("restaurant", record));
        }
        let comment = Record::new(vec![
            Value::Int(400),
            Value::Int(60),
            Value::Int(120),
            Value::str("Bulk burger bonanza"),
            Value::str("03/12"),
        ]);
        db.table_mut("comment")
            .unwrap()
            .insert(comment.clone())
            .unwrap();
        changes.push(RecordChange::new("comment", comment));

        let mut bulk = rebuild(&fooddb::database());
        let stats = bulk.apply_changes(&db, &changes).unwrap();
        assert!(stats.added >= 2);
        for change in &changes {
            per_record
                .apply_insert(&db, &change.relation, &change.record)
                .unwrap();
        }
        assert_same_index(&bulk, &per_record);
        assert_same_index(&bulk, &rebuild(&db));
        // An empty batch is a no-op.
        assert_eq!(
            bulk.apply_changes(&db, &[]).unwrap(),
            RefreshStats::default()
        );
    }

    #[test]
    fn delta_signature_covers_groups_and_keywords() {
        let delta = IndexDelta::new(
            vec![FragmentId::new(vec![Value::str("Thai"), Value::Int(10)])],
            vec![Fragment::new(
                FragmentId::new(vec![Value::str("American"), Value::Int(7)]),
                [("waffle".to_string(), 2u64)].into_iter().collect(),
                1,
            )],
        );
        let sig = delta.signature(Some(1));
        assert!(sig.groups.contains(&vec![Value::str("Thai")]));
        assert!(sig.groups.contains(&vec![Value::str("American")]));
        assert!(sig.keywords.contains("waffle"));
        // hits(): group overlap OR keyword overlap, nothing else.
        let groups = |g: &str| [vec![Value::str(g)]].into_iter().collect();
        let kws = |w: &str| [w.to_string()].into_iter().collect();
        assert!(sig.hits(&groups("Thai"), &kws("zzz")));
        assert!(sig.hits(&groups("Nordic"), &kws("waffle")));
        assert!(!sig.hits(&groups("Nordic"), &kws("zzz")));
    }

    #[test]
    fn delta_batches_match_one_by_one_application() {
        // One big delta applied atomically equals the same mutations
        // applied as one-element deltas — and both equal a rebuild.
        let mut db = fooddb::database();
        let batched = {
            let mut engine = rebuild(&db);
            let mut removes = Vec::new();
            let mut adds = Vec::new();
            for (rid, name, cuisine, budget) in [
                (40i64, "Pad Thai Hut", "Thai", 12i64),
                (41, "Fry Shack", "American", 11),
            ] {
                let record = Record::new(vec![
                    Value::Int(rid),
                    Value::str(name),
                    Value::str(cuisine),
                    Value::Int(budget),
                    Value::str("3.5"),
                ]);
                db.table_mut("restaurant")
                    .unwrap()
                    .insert(record.clone())
                    .unwrap();
                let delta = engine.record_delta(&db, "restaurant", &record).unwrap();
                removes.extend(delta.removes);
                adds.extend(delta.adds);
            }
            // Concatenating deltas duplicates recomputed ids; `apply`
            // deduplicates last-wins, so no caller-side hygiene needed.
            let delta = IndexDelta::new(removes, adds);
            assert!(!delta.is_empty());
            engine.apply_delta(&delta);
            engine
        };
        assert_same_index(&batched, &rebuild(&db));
    }
}
