//! The naive baseline Dash argues against (Section IV): materialize
//! *every* db-page, index each as an independent document in a
//! conventional inverted file, and search that.
//!
//! For an application with equality groups of `t` range values each, the
//! page space is `Σ_groups t·(t+1)/2` — quadratic where fragments are
//! linear — and the pages overlap massively, so the same record text is
//! indexed over and over. [`NaiveEngine::stats`] quantifies exactly that
//! blow-up; the `ablation` bench plots it against the fragment index.

use std::collections::HashMap;

use dash_relation::Value;
use dash_text::{tf_idf_score, DocStats, InvertedFile};
use dash_webapp::{ParamValues, SelectionBinding, WebApplication};

use crate::crawl::reference;
use crate::fragment::Fragment;
use crate::search::{SearchHit, SearchRequest};
use crate::Result;

/// Size/redundancy statistics of the naive index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveStats {
    /// Number of materialized db-pages (capped at the configured limit).
    pub pages: usize,
    /// Whether enumeration hit the page cap.
    pub truncated: bool,
    /// Total postings across all inverted lists (the redundancy meter:
    /// each fragment's text is re-indexed once per covering page).
    pub total_postings: usize,
    /// Total keyword occurrences summed over pages.
    pub total_keywords: u64,
}

/// The all-pages baseline engine.
#[derive(Debug)]
pub struct NaiveEngine {
    app: WebApplication,
    pages: Vec<NaivePage>,
    index: InvertedFile<usize>,
    truncated: bool,
}

#[derive(Debug, Clone)]
struct NaivePage {
    params: ParamValues,
    stats: DocStats,
}

impl NaiveEngine {
    /// Materializes every db-page (every equality combination × every
    /// range interval), up to `max_pages`, and indexes them.
    ///
    /// # Errors
    ///
    /// Propagates crawl errors from the reference fragment derivation.
    pub fn build(
        app: &WebApplication,
        db: &dash_relation::Database,
        max_pages: usize,
    ) -> Result<Self> {
        let fragments = reference::fragments(app, db)?;
        Self::from_fragments(app.clone(), &fragments, max_pages)
    }

    /// Builds the baseline from fragments (page = contiguous fragment
    /// run, same as Dash's assembly — so both engines see identical page
    /// contents and results are comparable).
    ///
    /// # Errors
    ///
    /// Never fails today; kept fallible for parity with engine builds.
    pub fn from_fragments(
        app: WebApplication,
        fragments: &[Fragment],
        max_pages: usize,
    ) -> Result<Self> {
        let range_pos = app.query.range_selection_index();
        // Group fragments by equality prefix.
        let mut groups: HashMap<Vec<Value>, Vec<&Fragment>> = HashMap::new();
        for f in fragments {
            let key = match range_pos {
                Some(pos) => f.id.without(pos),
                None => f.id.values().to_vec(),
            };
            groups.entry(key).or_default().push(f);
        }
        let mut group_list: Vec<(Vec<Value>, Vec<&Fragment>)> = groups.into_iter().collect();
        group_list.sort_by(|a, b| a.0.cmp(&b.0));

        let mut pages = Vec::new();
        let mut truncated = false;
        'outer: for (_key, mut members) in group_list {
            if let Some(pos) = range_pos {
                members.sort_by(|a, b| a.id.values()[pos].cmp(&b.id.values()[pos]));
            }
            let t = members.len();
            for lo in 0..t {
                // All-equality queries have exactly one page per group.
                let his = match range_pos {
                    Some(_) => (lo..t).collect::<Vec<_>>(),
                    None => vec![lo],
                };
                for hi in his {
                    if pages.len() >= max_pages {
                        truncated = true;
                        break 'outer;
                    }
                    let mut stats = DocStats::default();
                    for f in &members[lo..=hi] {
                        for (w, &n) in &f.keyword_occurrences {
                            *stats.occurrences.entry(w.clone()).or_insert(0) += n;
                        }
                        stats.total_keywords += f.total_keywords;
                    }
                    let params = page_params(&app, members[lo], members[hi], range_pos);
                    pages.push(NaivePage { params, stats });
                }
            }
        }

        let mut index: InvertedFile<usize> = InvertedFile::new();
        for (i, page) in pages.iter().enumerate() {
            // Re-expand the occurrence map into a token stream equivalent.
            let mut tokens: Vec<String> = Vec::new();
            for (w, &n) in &page.stats.occurrences {
                for _ in 0..n {
                    tokens.push(w.clone());
                }
            }
            index.add_document(i, &tokens);
        }
        index.finalize();

        Ok(NaiveEngine {
            app,
            pages,
            index,
            truncated,
        })
    }

    /// Conventional TF/IDF top-k over whole pages.
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        let mut idf: HashMap<String, f64> = HashMap::new();
        for w in &request.keywords {
            idf.insert(w.clone(), self.index.idf(w));
        }
        let mut scored: Vec<(usize, f64)> = self
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| (i, tf_idf_score(&p.stats, &request.keywords, &idf)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(request.k)
            .filter_map(|(i, score)| {
                let page = &self.pages[i];
                let qs = self.app.reverse_query_string(&page.params).ok()?;
                Some(SearchHit {
                    url: self.app.render_suggestion(&qs.to_string()),
                    query_string: qs.to_string(),
                    score,
                    size: page.stats.total_keywords,
                    fragment_ids: Vec::new(),
                })
            })
            .collect()
    }

    /// Redundancy statistics (the motivation for fragments).
    pub fn stats(&self) -> NaiveStats {
        NaiveStats {
            pages: self.pages.len(),
            truncated: self.truncated,
            total_postings: self.index.iter().map(|(_, list)| list.len()).sum(),
            total_keywords: self.pages.iter().map(|p| p.stats.total_keywords).sum(),
        }
    }
}

fn page_params(
    app: &WebApplication,
    lo: &Fragment,
    hi: &Fragment,
    range_pos: Option<usize>,
) -> ParamValues {
    let mut params = ParamValues::new();
    for (i, sel) in app.query.selections.iter().enumerate() {
        match &sel.binding {
            SelectionBinding::EqParam(p) => {
                params.insert(p.clone(), lo.id.values()[i].clone());
            }
            SelectionBinding::EqConst(_) => {}
            SelectionBinding::RangeParams { low, high } => {
                let pos = range_pos.expect("range binding implies range position");
                params.insert(low.clone(), lo.id.values()[pos].clone());
                params.insert(high.clone(), hi.id.values()[pos].clone());
            }
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_webapp::fooddb;

    fn engine() -> NaiveEngine {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        NaiveEngine::build(&app, &db, 10_000).unwrap()
    }

    #[test]
    fn enumerates_quadratically_many_pages() {
        let e = engine();
        // American group: 4 fragments → 10 intervals; Thai: 1 → 1.
        assert_eq!(e.stats().pages, 11);
        assert!(!e.stats().truncated);
    }

    #[test]
    fn page_cap_truncates() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let e = NaiveEngine::build(&app, &db, 3).unwrap();
        assert_eq!(e.stats().pages, 3);
        assert!(e.stats().truncated);
    }

    #[test]
    fn redundancy_exceeds_fragment_postings() {
        // The same "burger" text is indexed in every covering page: the
        // naive index has strictly more postings than fragments exist.
        let e = engine();
        let stats = e.stats();
        assert!(
            stats.total_postings > 5,
            "postings: {}",
            stats.total_postings
        );
        // df("burger") counts covering pages, not fragments (3 fragments
        // but many more pages contain the word).
        assert!(e.index.df("burger") > 3);
    }

    #[test]
    fn search_returns_overlapping_pages() {
        // The P1/P2 redundancy problem from Example 1: multiple pages
        // containing the same "burger" rows all rank.
        let e = engine();
        let hits = e.search(&SearchRequest::new(&["burger"]).k(10));
        assert!(
            hits.len() > 2,
            "expected redundant hits, got {}",
            hits.len()
        );
        // Dash with the same request returns at most one page per
        // disjoint region — see search::topk tests.
    }

    #[test]
    fn urls_are_well_formed() {
        let e = engine();
        let hits = e.search(&SearchRequest::new(&["coffee"]).k(1));
        assert!(!hits.is_empty());
        assert!(hits[0].url.starts_with("www.example.com/Search?c="));
    }
}
