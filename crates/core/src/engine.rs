//! The [`DashEngine`] facade: build once (crawl + index), search many
//! times — Figure 4 of the paper as one type.

use dash_mapreduce::{ClusterConfig, WorkflowStats};
use dash_relation::Database;
use dash_webapp::WebApplication;

use crate::crawl::{self, CrawlAlgorithm};
use crate::error::CoreError;
use crate::fragment::Fragment;
use crate::index::FragmentIndex;
use crate::search::{top_k, SearchHit, SearchRequest};
use crate::Result;

/// The common serving surface of Dash engines: one application, top-k
/// search, batched top-k. Implemented by the single-index
/// [`DashEngine`] and the sharded
/// [`ShardedEngine`](crate::sharded::ShardedEngine) — the two produce
/// byte-identical results, so layers above (the multi-application
/// federation, serving facades, tests) compose with either
/// interchangeably.
pub trait SearchEngine: Send + Sync {
    /// The analyzed application this engine serves.
    fn app(&self) -> &WebApplication;

    /// Top-k db-page search (Algorithm 1).
    fn search(&self, request: &SearchRequest) -> Vec<SearchHit>;

    /// Batched top-k; results are position-aligned with `requests` and
    /// each equals the corresponding [`SearchEngine::search`] call.
    fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>>;

    /// Number of indexed fragments.
    fn fragment_count(&self) -> usize;
}

impl SearchEngine for DashEngine {
    fn app(&self) -> &WebApplication {
        DashEngine::app(self)
    }
    fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        DashEngine::search(self, request)
    }
    fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        DashEngine::search_many(self, requests)
    }
    fn fragment_count(&self) -> usize {
        DashEngine::fragment_count(self)
    }
}

impl SearchEngine for crate::sharded::ShardedEngine {
    fn app(&self) -> &WebApplication {
        crate::sharded::ShardedEngine::app(self)
    }
    fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        crate::sharded::ShardedEngine::search(self, request)
    }
    fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        crate::sharded::ShardedEngine::search_many(self, requests)
    }
    fn fragment_count(&self) -> usize {
        crate::sharded::ShardedEngine::fragment_count(self)
    }
}

/// Engine construction options.
#[derive(Debug, Clone, Default)]
pub struct DashConfig {
    /// The (simulated) cluster crawling and indexing run on.
    pub cluster: ClusterConfig,
    /// Which crawling algorithm to use (default: integrated).
    pub algorithm: CrawlAlgorithm,
    /// Selective-crawling scope (default: everything).
    pub scope: crate::scope::CrawlScope,
}

/// A built Dash search engine for one web application over one database.
#[derive(Debug, Clone)]
pub struct DashEngine {
    app: WebApplication,
    index: FragmentIndex,
    crawl_stats: WorkflowStats,
    fragment_count: usize,
}

impl DashEngine {
    /// Analyzes nothing (the application is already analyzed), crawls the
    /// database for fragments and builds the fragment index.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnsupportedQuery`] — the query has more than one
    ///   range-bound selection attribute (outside the paper's page model).
    /// * Crawl/index errors otherwise.
    pub fn build(app: &WebApplication, db: &Database, config: &DashConfig) -> Result<Self> {
        validate_query(app)?;
        let crawl = crawl::run_scoped(app, db, &config.cluster, config.algorithm, &config.scope)?;
        Self::from_fragments(app.clone(), &crawl.fragments, crawl.stats)
    }

    /// Builds an engine from already-derived fragments (used by the
    /// multi-application layer and by tests that bypass MapReduce).
    ///
    /// # Errors
    ///
    /// Propagates index-construction errors and query validation.
    pub fn from_fragments(
        app: WebApplication,
        fragments: &[Fragment],
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let index = FragmentIndex::build(fragments, app.query.range_selection_index())?;
        Ok(DashEngine {
            app,
            fragment_count: fragments.len(),
            index,
            crawl_stats,
        })
    }

    /// Top-k db-page search (Algorithm 1). Returns at most `request.k`
    /// URL suggestions, most relevant first.
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        top_k(&self.app, &self.index, request)
    }

    /// Batched top-k: answers every request with one reused scratch
    /// (occurrence pool, seed bitset), skipping per-query allocation.
    /// Results are position-aligned with `requests`; each equals the
    /// corresponding [`DashEngine::search`] call.
    pub fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        let mut scratch = crate::search::SearchScratch::new();
        requests
            .iter()
            .map(|request| {
                let idf = crate::search::topk::request_idf(&self.index, request);
                crate::search::topk::top_k_in(
                    &self.app,
                    &self.index,
                    request,
                    &idf,
                    request.k,
                    0,
                    false,
                    &mut scratch,
                )
            })
            .collect()
    }

    /// The analyzed application this engine serves.
    pub fn app(&self) -> &WebApplication {
        &self.app
    }

    /// The fragment index (inverted fragment index + fragment graph).
    pub fn index(&self) -> &FragmentIndex {
        &self.index
    }

    /// Mutable index access (incremental maintenance).
    pub fn index_mut(&mut self) -> &mut FragmentIndex {
        &mut self.index
    }

    /// Statistics of the crawl/index workflow that built this engine.
    pub fn crawl_stats(&self) -> &WorkflowStats {
        &self.crawl_stats
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragment_count
    }

    /// Re-synchronizes the count after incremental maintenance.
    pub(crate) fn set_fragment_count(&mut self, count: usize) {
        self.fragment_count = count;
    }
}

pub(crate) fn validate_query(app: &WebApplication) -> Result<()> {
    let ranges = app
        .query
        .selections
        .iter()
        .filter(|s| s.binding.is_range())
        .count();
    if ranges > 1 {
        return Err(CoreError::UnsupportedQuery {
            detail: format!(
                "{ranges} range-bound selection attributes; db-page assembly supports at most one"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_webapp::fooddb;

    #[test]
    fn build_and_search_running_example() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        assert_eq!(engine.fragment_count(), 5);
        assert!(engine.crawl_stats().sim_total_secs() > 0.0);
        let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn stepwise_and_integrated_build_identical_indexes() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let sw = DashEngine::build(
            &app,
            &db,
            &DashConfig {
                algorithm: CrawlAlgorithm::Stepwise,
                ..DashConfig::default()
            },
        )
        .unwrap();
        let int = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        let req = SearchRequest::new(&["burger"]).k(5).min_size(20);
        assert_eq!(sw.search(&req), int.search(&req));
    }

    #[test]
    fn suggested_urls_regenerate_real_pages() {
        // The whole point of Dash: the URLs it suggests, when fed back to
        // the web application, produce pages containing the keywords.
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        for hit in engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20)) {
            let qs = dash_webapp::QueryString::parse(&hit.query_string).unwrap();
            let page = app.execute(&db, &qs).unwrap();
            assert!(
                page.keywords().iter().any(|w| w == "burger"),
                "page at {} lacks the keyword",
                hit.url
            );
        }
    }
}
