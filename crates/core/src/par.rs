//! A small scoped-thread parallelism helper for index construction.
//!
//! Index building is embarrassingly parallel — per-keyword posting
//! lists sort independently, equality groups split independently, and
//! the inverted index and fragment graph don't share state at all. The
//! container has no rayon, so this module provides the two primitives
//! the build path needs on plain `std::thread::scope`: a parallel
//! for-each over a work list and a two-way join.

use std::sync::Mutex;

/// How many worker threads a work list of `len` items warrants.
fn threads_for(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
}

/// Runs `f` over every item, work-stealing from a shared queue.
/// Sequential when the list is small or the machine has one core.
pub(crate) fn for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    // Thread spawn overhead (~10µs each) only pays off with enough
    // items to amortize it.
    let threads = threads_for(items.len() / 8);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// Evaluates both closures, on two threads when possible.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if std::thread::available_parallelism().map_or(1, |n| n.get()) <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("parallel build worker panicked"), rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_visits_every_item() {
        let sum = AtomicU64::new(0);
        for_each((1u64..=1000).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }
}
