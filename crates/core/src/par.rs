//! A small scoped-thread parallelism helper for index construction.
//!
//! Index building is embarrassingly parallel — per-keyword posting
//! lists sort independently, equality groups split independently, and
//! the inverted index and fragment graph don't share state at all. The
//! container has no rayon, so this module provides the two primitives
//! the build path needs on plain `std::thread::scope`: a parallel
//! for-each over a work list and a two-way join.

use std::sync::{Mutex, OnceLock};

/// The machine's parallelism, probed once — `available_parallelism`
/// costs a syscall (and cgroup reads), far too much to pay on every
/// sub-millisecond search. The sharded worker pool consults this too:
/// on a single-core host, fanning a search out to worker threads only
/// buys context switches, so the caller runs every shard inline.
pub(crate) fn parallelism() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// How many worker threads a work list of `len` items warrants.
fn threads_for(len: usize) -> usize {
    parallelism().min(len)
}

/// Runs `f` over every item, work-stealing from a shared queue.
/// Sequential when the list is small or the machine has one core.
pub(crate) fn for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    // Thread spawn overhead (~10µs each) only pays off with enough
    // items to amortize it.
    let threads = threads_for(items.len() / 8);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// Maps `f` over every item on worker threads, preserving input order.
/// Uses `min(parallelism, items)` workers like [`for_each`], but with
/// no small-list cutoff — intended for coarse work units (a shard's
/// whole search pass) where even two items warrant two threads, not
/// per-posting slices.
pub(crate) fn map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = threads_for(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((i, item)) => {
                        let produced = f(item);
                        *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(produced);
                    }
                    None => break,
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker produced a result")
        })
        .collect()
}

/// Evaluates both closures, on two threads when possible.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if parallelism() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("parallel build worker panicked"), rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_visits_every_item() {
        let sum = AtomicU64::new(0);
        for_each((1u64..=1000).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn map_preserves_order() {
        let out = map((0u64..100).collect(), |x| x * 2);
        assert_eq!(out, (0u64..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = map(Vec::new(), |x: u64| x);
        assert!(empty.is_empty());
    }
}
