//! Fragment persistence: save a crawl's fragments (v1) or a built
//! engine's arenas (v2) to a compact binary file and rebuild the engine
//! from it without re-crawling — or, for v2, without re-*building*.
//!
//! A search engine builds its index rarely and serves it constantly; the
//! paper's crawls take hours (Figure 10), so shipping the derived
//! fragments to the serving tier matters. Both formats are small
//! self-describing binary codecs with no external dependencies;
//! everything an engine needs round-trips exactly, so a loaded engine
//! is byte-for-byte the engine that was saved (tested).
//!
//! # v1 — fragment dumps (`DASHFRG1` / `DASHSHR1`)
//!
//! Length-prefixed fragment records; loading re-runs the index build.
//! Two container layouts share the record codec:
//!
//! * **flat** ([`write_fragments`] / [`read_fragments`]) — one fragment
//!   list, the single-engine path;
//! * **sharded** ([`write_sharded_fragments`] /
//!   [`read_sharded_fragments`]) — one fragment list *per shard*,
//!   preserving a [`ShardedEngine`](crate::ShardedEngine)'s exact
//!   partition (which drifts under incremental maintenance), so a
//!   maintained sharded engine round-trips through
//!   [`ShardedEngine::dump_shards`](crate::ShardedEngine::dump_shards) /
//!   [`IngestSource::ShardDumps`](crate::IngestSource::ShardDumps)
//!   without re-partitioning.
//!
//! v1 layout (all integers little-endian):
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | magic | 8 | `DASHFRG1` (flat) / `DASHSHR1` (sharded) |
//! | shard count | 8 | sharded only; ≤ 2^16 |
//! | per list: count | 8 | fragments in the list |
//! | per fragment: arity | 8 | identifier values |
//! | values | var | tagged value codec (below) |
//! | record count | 8 | joined records |
//! | keyword count | 8 | occurrence-map entries |
//! | per keyword: string + count | var + 8 | length-prefixed UTF-8, occurrences |
//!
//! Value codec: tag byte `0`=Null, `1`=Int (i64), `2`=Decimal (cents
//! i64), `3`=Str (u64 length + UTF-8, ≤ 2^24 bytes), `4`=Date (u16 year,
//! u8 month, u8 day).
//!
//! # v2 — arena images (`DASHIMG2`)
//!
//! The dump format *is* the arenas' in-memory layout: every column of
//! [`FragmentCatalog`], [`InvertedFragmentIndex`] (both posting arenas
//! plus the shared list-ref table) and [`FragmentGraph`] is written as a
//! fixed-width little-endian array, so a shard loads by bulk-reading
//! bytes back into columns instead of re-running `build` — no BTreeMap
//! materialization, no per-posting interning, no TF re-sorts, no graph
//! grouping. Only the two hash lookups (identifier→handle, word→handle)
//! and the `node_pos` column are re-derived, each a single O(n) pass.
//! The graph is dumped normalized to key-rank order, so the loaded
//! permutation is the identity (exactly a bulk build's state) and two
//! engines holding the same live nodes dump the same image regardless
//! of maintenance history.
//!
//! Everything after the magic is framed in checksummed *sections*:
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | tag | 4 | section kind (below) |
//! | reserved | 4 | must be 0 |
//! | length | 8 | payload bytes |
//! | payload | length | section body |
//! | checksum | 8 | mixes every payload byte; any bit flip is detected |
//!
//! File layout: magic, one `0x01` header section (shard count ≤ 2^16,
//! range position with `u64::MAX` = none), then per shard the six
//! sections in order:
//!
//! | tag | section | payload |
//! |---|---|---|
//! | `0x10` | catalog | count; identifiers (value codec); total-keyword u64 column; record-count u64 column |
//! | `0x11` | words | count; blob length; word-length u32 column; UTF-8 blob |
//! | `0x12` | lists | fragment count; list count; start u32 column; len u32 column |
//! | `0x13` | tf arena | posting count; frag u32 column; occurrence u64 column; TF f64-bits u64 column |
//! | `0x14` | probe arena | posting count; frag u32 column; occurrence u64 column |
//! | `0x15` | graph | group count; node total; per group (key values, run length); frag u32 column; weight u64 column |
//!
//! A torn or bit-flipped file fails its section checksum (or a
//! structural length check) before any engine state is touched — the
//! replication layer relies on this to reject half-transferred
//! SNAPSHOT frames. Entry points are
//! [`ShardedEngine::write_image`](crate::ShardedEngine::write_image) /
//! [`IngestSource::Image`](crate::IngestSource::Image).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use dash_relation::{Date, Decimal, Value};

use crate::fragment::{Fragment, FragmentId};
use crate::index::{
    Frag, FragmentCatalog, FragmentGraph, FragmentIndex, InvertedFragmentIndex, KeywordInterner,
    Posting, ProbeEntry,
};

const MAGIC: &[u8; 8] = b"DASHFRG1";
const SHARDED_MAGIC: &[u8; 8] = b"DASHSHR1";
const IMAGE_MAGIC: &[u8; 8] = b"DASHIMG2";

/// Serializes fragments into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fragments<W: Write>(mut writer: W, fragments: &[Fragment]) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    write_fragment_list(&mut writer, fragments)
}

/// Deserializes fragments from `reader`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number (distinguishing a
/// foreign file, another Dash dump kind, and an unsupported version),
/// unknown value tags or malformed UTF-8 (each naming the fragment
/// record that broke), and propagates underlying I/O errors (including
/// `UnexpectedEof` on truncation).
pub fn read_fragments<R: Read>(mut reader: R) -> io::Result<Vec<Fragment>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(magic_mismatch(&magic, MAGIC, "fragment file"));
    }
    read_fragment_list(&mut reader)
}

/// Serializes per-shard fragment lists (the output of
/// [`ShardedEngine::dump_shards`](crate::ShardedEngine::dump_shards))
/// into `writer`, preserving the shard partition exactly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sharded_fragments<W: Write>(
    mut writer: W,
    shards: &[Vec<Fragment>],
) -> io::Result<()> {
    writer.write_all(SHARDED_MAGIC)?;
    write_u64(&mut writer, shards.len() as u64)?;
    for fragments in shards {
        write_fragment_list(&mut writer, fragments)?;
    }
    Ok(())
}

/// Deserializes per-shard fragment lists from `reader` — feed the
/// result to
/// [`IngestSource::ShardDumps`](crate::IngestSource::ShardDumps).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number (distinguishing a
/// foreign file, another Dash dump kind, and an unsupported version),
/// an out-of-bounds shard count, unknown value tags or malformed UTF-8
/// (each naming the shard and fragment record that broke), and
/// propagates underlying I/O errors (including `UnexpectedEof` on
/// truncation).
pub fn read_sharded_fragments<R: Read>(mut reader: R) -> io::Result<Vec<Vec<Fragment>>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != SHARDED_MAGIC {
        return Err(magic_mismatch(&magic, SHARDED_MAGIC, "sharded dump"));
    }
    let shards = read_u64(&mut reader)?;
    if shards > (1 << 16) {
        return Err(invalid("shard count out of bounds"));
    }
    (0..shards)
        .map(|s| {
            read_fragment_list(&mut reader).map_err(|e| with_context(&format!("shard {s}"), e))
        })
        .collect()
}

/// The shared record codec: a length-prefixed fragment list.
pub(crate) fn write_fragment_list<W: Write>(
    writer: &mut W,
    fragments: &[Fragment],
) -> io::Result<()> {
    write_u64(writer, fragments.len() as u64)?;
    for f in fragments {
        write_one_fragment(writer, f)?;
    }
    Ok(())
}

/// [`write_fragment_list`] over borrowed fragments — the ingest spill
/// path dumps reduce output (reference runs into the caller's corpus)
/// without cloning a fragment first.
pub(crate) fn write_fragment_ref_list<W: Write>(
    writer: &mut W,
    fragments: &[&Fragment],
) -> io::Result<()> {
    write_u64(writer, fragments.len() as u64)?;
    for f in fragments {
        write_one_fragment(writer, f)?;
    }
    Ok(())
}

/// One fragment through the v1 record codec. Also the unit the ingest
/// layer fingerprints corpora by — the encoding is canonical (BTreeMap
/// keyword order, tagged values), so equal fragments always produce
/// equal bytes.
pub(crate) fn write_one_fragment<W: Write>(writer: &mut W, f: &Fragment) -> io::Result<()> {
    write_u64(writer, f.id.values().len() as u64)?;
    for v in f.id.values() {
        write_value(writer, v)?;
    }
    write_u64(writer, f.record_count)?;
    write_u64(writer, f.keyword_occurrences.len() as u64)?;
    for (kw, &n) in &f.keyword_occurrences {
        write_str(writer, kw)?;
        write_u64(writer, n)?;
    }
    Ok(())
}

/// Reads one length-prefixed fragment list. Decode errors name the
/// fragment record they broke in, so a torn file is diagnosable from
/// the message alone instead of surfacing as a bare codec error.
pub(crate) fn read_fragment_list<R: Read>(reader: &mut R) -> io::Result<Vec<Fragment>> {
    let count = read_u64(reader)?;
    let mut fragments = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        fragments.push(
            read_one_fragment(reader).map_err(|e| with_context(&format!("fragment {i}"), e))?,
        );
    }
    Ok(fragments)
}

fn read_one_fragment<R: Read>(reader: &mut R) -> io::Result<Fragment> {
    let arity = read_u64(reader)?;
    if arity > 64 {
        return Err(invalid("identifier arity out of bounds"));
    }
    let mut values = Vec::with_capacity(arity as usize);
    for _ in 0..arity {
        values.push(read_value(reader)?);
    }
    let record_count = read_u64(reader)?;
    let keywords = read_u64(reader)?;
    let mut occ = BTreeMap::new();
    for _ in 0..keywords {
        let kw = read_str(reader)?;
        let n = read_u64(reader)?;
        occ.insert(kw, n);
    }
    Ok(Fragment::new(FragmentId::new(values), occ, record_count))
}

// ---------------------------------------------------------------------
// v2 arena images
// ---------------------------------------------------------------------

const SEC_HEADER: u32 = 0x01;
const SEC_CATALOG: u32 = 0x10;
const SEC_WORDS: u32 = 0x11;
const SEC_LISTS: u32 = 0x12;
const SEC_TF: u32 = 0x13;
const SEC_PROBE: u32 = 0x14;
const SEC_GRAPH: u32 = 0x15;

/// `range_position` encoding for "no range attribute".
const NO_RANGE: u64 = u64::MAX;

/// Serializes a sharded engine's per-shard indexes as one v2 arena
/// image (header + six checksummed sections per shard).
pub(crate) fn write_image<W: Write>(
    mut writer: W,
    range_position: Option<usize>,
    shards: &[&FragmentIndex],
) -> io::Result<()> {
    writer.write_all(IMAGE_MAGIC)?;
    let mut header = Vec::with_capacity(16);
    write_u64(&mut header, shards.len() as u64)?;
    write_u64(&mut header, range_position.map_or(NO_RANGE, |p| p as u64))?;
    write_section(&mut writer, SEC_HEADER, &header)?;
    for index in shards {
        write_index_image(&mut writer, index)?;
    }
    Ok(())
}

/// Deserializes a v2 arena image back into per-shard indexes, verifying
/// every section checksum — a torn or bit-flipped image errors before
/// any index is assembled. Returns the dumped range position alongside
/// the shards so the caller can cross-check it against its application.
pub(crate) fn read_image(bytes: &[u8]) -> io::Result<(Option<usize>, Vec<FragmentIndex>)> {
    let mut r = bytes;
    let magic = take(&mut r, 8, "magic number")?;
    if magic != IMAGE_MAGIC {
        return Err(magic_mismatch(magic, IMAGE_MAGIC, "arena image"));
    }
    let mut header = read_section(&mut r, SEC_HEADER)?;
    let shard_count = take_u64(&mut header, "shard count")?;
    if shard_count > (1 << 16) {
        return Err(invalid("shard count out of bounds"));
    }
    let range_raw = take_u64(&mut header, "range position")?;
    ensure_consumed(header, "header section")?;
    let range_position = match range_raw {
        NO_RANGE => None,
        p if p > 64 => return Err(invalid("range position out of bounds")),
        p => Some(p as usize),
    };
    let mut shards = Vec::with_capacity(shard_count as usize);
    for s in 0..shard_count {
        shards.push(
            read_index_image(&mut r, range_position)
                .map_err(|e| with_context(&format!("shard {s}"), e))?,
        );
    }
    if !r.is_empty() {
        return Err(invalid("trailing bytes after the last shard image"));
    }
    Ok((range_position, shards))
}

/// Writes one shard's `FragmentIndex` as the six v2 sections. Each
/// section's payload is staged in a reused buffer (peak extra memory =
/// the largest single section, not the whole image).
fn write_index_image<W: Write>(w: &mut W, index: &FragmentIndex) -> io::Result<()> {
    let mut payload = Vec::new();

    // Catalog: identifiers (value codec), then the two u64 columns.
    let (ids, totals, records) = index.catalog.image_parts();
    write_u64(&mut payload, ids.len() as u64)?;
    for id in ids {
        write_u64(&mut payload, id.values().len() as u64)?;
        for v in id.values() {
            write_value(&mut payload, v)?;
        }
    }
    for &t in totals {
        payload.extend_from_slice(&t.to_le_bytes());
    }
    for &rc in records {
        payload.extend_from_slice(&rc.to_le_bytes());
    }
    write_section(w, SEC_CATALOG, &payload)?;
    payload.clear();

    // Interner words: length column + one concatenated UTF-8 blob.
    let words = index.inverted.image_interner().image_words();
    write_u64(&mut payload, words.len() as u64)?;
    let blob_len: u64 = words.iter().map(|word| word.len() as u64).sum();
    write_u64(&mut payload, blob_len)?;
    for word in words {
        payload.extend_from_slice(&(word.len() as u32).to_le_bytes());
    }
    for word in words {
        payload.extend_from_slice(word.as_bytes());
    }
    write_section(w, SEC_WORDS, &payload)?;
    payload.clear();

    // The shared list-ref table, as (start, len) columns.
    write_u64(&mut payload, index.inverted.fragment_count())?;
    write_u64(&mut payload, index.inverted.image_lists().len() as u64)?;
    for (start, _) in index.inverted.image_lists() {
        payload.extend_from_slice(&start.to_le_bytes());
    }
    for (_, len) in index.inverted.image_lists() {
        payload.extend_from_slice(&len.to_le_bytes());
    }
    write_section(w, SEC_LISTS, &payload)?;
    payload.clear();

    // TF arena, column-major: frag, occurrences, TF bit patterns.
    let tf = index.inverted.image_tf_arena();
    write_u64(&mut payload, tf.len() as u64)?;
    for p in tf {
        payload.extend_from_slice(&p.frag.0.to_le_bytes());
    }
    for p in tf {
        payload.extend_from_slice(&p.occurrences.to_le_bytes());
    }
    for p in tf {
        payload.extend_from_slice(&p.tf.to_bits().to_le_bytes());
    }
    write_section(w, SEC_TF, &payload)?;
    payload.clear();

    // Probe arena, column-major: frag, occurrences.
    write_u64(&mut payload, index.inverted.image_probe().len() as u64)?;
    for (frag, _) in index.inverted.image_probe() {
        payload.extend_from_slice(&frag.to_le_bytes());
    }
    for (_, occurrences) in index.inverted.image_probe() {
        payload.extend_from_slice(&occurrences.to_le_bytes());
    }
    write_section(w, SEC_PROBE, &payload)?;
    payload.clear();

    // Graph: per-group keys and run lengths, then the node and weight
    // columns, all in key-rank order.
    let node_total: u64 = index
        .graph
        .image_groups()
        .map(|(_, f, _)| f.len() as u64)
        .sum();
    write_u64(&mut payload, index.graph.image_groups().len() as u64)?;
    write_u64(&mut payload, node_total)?;
    for (key, frags, _) in index.graph.image_groups() {
        write_u64(&mut payload, key.len() as u64)?;
        for v in key {
            write_value(&mut payload, v)?;
        }
        write_u64(&mut payload, frags.len() as u64)?;
    }
    for (_, frags, _) in index.graph.image_groups() {
        for f in frags {
            payload.extend_from_slice(&f.0.to_le_bytes());
        }
    }
    for (_, _, weights) in index.graph.image_groups() {
        for weight in weights {
            payload.extend_from_slice(&weight.to_le_bytes());
        }
    }
    write_section(w, SEC_GRAPH, &payload)?;
    Ok(())
}

/// Reads one shard's six sections back into a `FragmentIndex`.
fn read_index_image(r: &mut &[u8], range_position: Option<usize>) -> io::Result<FragmentIndex> {
    // Catalog.
    let mut p = read_section(r, SEC_CATALOG)?;
    let count = take_u64(&mut p, "catalog count")? as usize;
    let mut ids = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let arity = take_u64(&mut p, "identifier arity")?;
        if arity > 64 {
            return Err(invalid("identifier arity out of bounds"));
        }
        let mut values = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            values.push(read_value(&mut p)?);
        }
        ids.push(FragmentId::new(values));
    }
    let totals = take_u64_col(&mut p, count, "total-keyword column")?;
    let records = take_u64_col(&mut p, count, "record-count column")?;
    ensure_consumed(p, "catalog section")?;
    let catalog = FragmentCatalog::from_image_parts(ids, totals, records);

    // Interner words.
    let mut p = read_section(r, SEC_WORDS)?;
    let word_count = take_u64(&mut p, "word count")? as usize;
    let blob_len = take_u64(&mut p, "word blob length")? as usize;
    let lens = take_u32_col(&mut p, word_count, "word-length column")?;
    let blob = take(&mut p, blob_len, "word blob")?;
    ensure_consumed(p, "words section")?;
    if lens.iter().map(|&l| l as u64).sum::<u64>() != blob_len as u64 {
        return Err(invalid("word lengths do not cover the word blob"));
    }
    let mut words = Vec::with_capacity(word_count);
    let mut at = 0usize;
    for len in lens {
        let bytes = &blob[at..at + len as usize];
        at += len as usize;
        words.push(
            std::str::from_utf8(bytes)
                .map_err(|_| invalid("interned word is not UTF-8"))?
                .to_string(),
        );
    }
    let interner = KeywordInterner::from_image_words(words);

    // List refs.
    let mut p = read_section(r, SEC_LISTS)?;
    let fragment_count = take_u64(&mut p, "fragment count")?;
    let list_count = take_u64(&mut p, "list count")? as usize;
    if list_count != interner.len() {
        return Err(invalid("list count does not match interned word count"));
    }
    let starts = take_u32_col(&mut p, list_count, "list-start column")?;
    let lens = take_u32_col(&mut p, list_count, "list-length column")?;
    ensure_consumed(p, "lists section")?;

    // TF arena: the arena IS the wire format (three fixed-width LE
    // columns), so decode is a single fused pass straight into the
    // final `Vec<Posting>` — no intermediate column vectors. At
    // million-fragment scale the intermediates are tens of MB of
    // freshly-faulted pages each; fusing them away is most of the
    // arena-vs-parse load win.
    let mut p = read_section(r, SEC_TF)?;
    let tf_count = take_u64(&mut p, "TF posting count")? as usize;
    let tf_frag_col = take_col(&mut p, tf_count, 4, "TF frag column")?;
    let tf_occ_col = take_col(&mut p, tf_count, 8, "TF occurrence column")?;
    let tf_bits_col = take_col(&mut p, tf_count, 8, "TF value column")?;
    ensure_consumed(p, "TF section")?;
    let tf_arena: Vec<Posting> = tf_frag_col
        .chunks_exact(4)
        .zip(tf_occ_col.chunks_exact(8))
        .zip(tf_bits_col.chunks_exact(8))
        .map(|((f, o), b)| Posting {
            frag: Frag(u32::from_le_bytes(f.try_into().expect("4-byte chunk"))),
            occurrences: u64::from_le_bytes(o.try_into().expect("8-byte chunk")),
            tf: f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
        })
        .collect();

    // Probe arena, same fused decode.
    let mut p = read_section(r, SEC_PROBE)?;
    let probe_count = take_u64(&mut p, "probe posting count")? as usize;
    let probe_frag_col = take_col(&mut p, probe_count, 4, "probe frag column")?;
    let probe_occ_col = take_col(&mut p, probe_count, 8, "probe occurrence column")?;
    ensure_consumed(p, "probe section")?;
    let probe_arena: Vec<ProbeEntry> = probe_frag_col
        .chunks_exact(4)
        .zip(probe_occ_col.chunks_exact(8))
        .map(|(f, o)| ProbeEntry {
            frag: Frag(u32::from_le_bytes(f.try_into().expect("4-byte chunk"))),
            occurrences: u64::from_le_bytes(o.try_into().expect("8-byte chunk")),
        })
        .collect();

    if probe_count != tf_count {
        return Err(invalid("probe arena length does not match TF arena"));
    }
    for (&start, &len) in starts.iter().zip(&lens) {
        if (start as u64) + (len as u64) > tf_count as u64 {
            return Err(invalid("list ref out of arena bounds"));
        }
    }
    let frag_bound = count as u32;
    if tf_arena
        .iter()
        .map(|p| p.frag.0)
        .chain(probe_arena.iter().map(|e| e.frag.0))
        .any(|f| f >= frag_bound)
    {
        return Err(invalid("posting frag handle out of catalog bounds"));
    }
    let inverted = InvertedFragmentIndex::from_image_parts(
        interner,
        starts.into_iter().zip(lens).collect(),
        tf_arena,
        probe_arena,
        fragment_count,
    );

    // Graph.
    let mut p = read_section(r, SEC_GRAPH)?;
    let group_count = take_u64(&mut p, "group count")? as usize;
    let node_total = take_u64(&mut p, "graph node total")? as usize;
    let mut metas: Vec<(Vec<Value>, usize)> = Vec::with_capacity(group_count.min(1 << 20));
    for _ in 0..group_count {
        let arity = take_u64(&mut p, "group-key arity")?;
        if arity > 64 {
            return Err(invalid("group-key arity out of bounds"));
        }
        let mut key = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            key.push(read_value(&mut p)?);
        }
        let len = take_u64(&mut p, "group run length")? as usize;
        metas.push((key, len));
    }
    let frags_col = take_u32_col(&mut p, node_total, "graph node column")?;
    let weights_col = take_u64_col(&mut p, node_total, "graph weight column")?;
    ensure_consumed(p, "graph section")?;
    if metas.iter().map(|(_, len)| *len as u64).sum::<u64>() != node_total as u64 {
        return Err(invalid("group run lengths do not cover the node column"));
    }
    if frags_col.iter().any(|&f| f >= frag_bound) {
        return Err(invalid("graph node handle out of catalog bounds"));
    }
    let mut groups = Vec::with_capacity(metas.len());
    let mut at = 0usize;
    for (key, len) in metas {
        let frags: Vec<Frag> = frags_col[at..at + len].iter().map(|&f| Frag(f)).collect();
        let weights = weights_col[at..at + len].to_vec();
        at += len;
        groups.push((key, frags, weights));
    }
    let graph = FragmentGraph::from_image_groups(range_position, groups, catalog.len());

    Ok(FragmentIndex {
        catalog,
        inverted,
        graph,
    })
}

/// Frames one section: tag, reserved word, payload length, payload,
/// checksum.
fn write_section<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> io::Result<()> {
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    write_u64(w, payload.len() as u64)?;
    w.write_all(payload)?;
    write_u64(w, checksum64(payload))
}

/// Unframes the next section, requiring tag `want` and a matching
/// checksum.
fn read_section<'a>(r: &mut &'a [u8], want: u32) -> io::Result<&'a [u8]> {
    let tag = take_u32(r, "section tag")?;
    if tag != want {
        return Err(invalid(&format!(
            "unexpected section tag {tag:#x} (wanted {want:#x})"
        )));
    }
    let reserved = take_u32(r, "section reserved field")?;
    if reserved != 0 {
        return Err(invalid("nonzero reserved section field"));
    }
    let len = take_u64(r, "section length")?;
    if len.checked_add(8).is_none_or(|need| need > r.len() as u64) {
        return Err(invalid("section length exceeds remaining image"));
    }
    let payload = take(r, len as usize, "section payload")?;
    let stored = take_u64(r, "section checksum")?;
    if stored != checksum64(payload) {
        return Err(invalid("section checksum mismatch — corrupt or torn image"));
    }
    Ok(payload)
}

/// A fast 64-bit mixing checksum over `bytes`, word-at-a-time. Every
/// step (xor, odd multiply, rotate) is a bijection of the running
/// state, so *any* single-bit flip in the input is guaranteed to change
/// the sum; multi-bit corruption escapes with probability ~2^-64.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(K);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(K).rotate_left(29);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail))
            .wrapping_mul(K)
            .rotate_left(29);
    }
    h
}

/// Splits the next `n` bytes off the front of `r`.
fn take<'a>(r: &mut &'a [u8], n: usize, what: &str) -> io::Result<&'a [u8]> {
    if r.len() < n {
        return Err(invalid(&format!("truncated image: {what}")));
    }
    let (head, rest) = r.split_at(n);
    *r = rest;
    Ok(head)
}

fn take_u32(r: &mut &[u8], what: &str) -> io::Result<u32> {
    let bytes = take(r, 4, what)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn take_u64(r: &mut &[u8], what: &str) -> io::Result<u64> {
    let bytes = take(r, 8, what)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Splits off a fixed-width column of `n` entries of `width` bytes,
/// unconverted — for fused decodes that parse straight into a final
/// arena type.
fn take_col<'a>(r: &mut &'a [u8], n: usize, width: usize, what: &str) -> io::Result<&'a [u8]> {
    let len = n
        .checked_mul(width)
        .ok_or_else(|| invalid("column length overflow"))?;
    take(r, len, what)
}

/// Bulk-reads a fixed-width u32 column of `n` entries.
fn take_u32_col(r: &mut &[u8], n: usize, what: &str) -> io::Result<Vec<u32>> {
    let len = n
        .checked_mul(4)
        .ok_or_else(|| invalid("column length overflow"))?;
    let bytes = take(r, len, what)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

/// Bulk-reads a fixed-width u64 column of `n` entries.
fn take_u64_col(r: &mut &[u8], n: usize, what: &str) -> io::Result<Vec<u64>> {
    let len = n
        .checked_mul(8)
        .ok_or_else(|| invalid("column length overflow"))?;
    let bytes = take(r, len, what)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

fn ensure_consumed(rest: &[u8], what: &str) -> io::Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(invalid(&format!("trailing bytes in {what}")))
    }
}

/// Diagnoses a magic mismatch: a different Dash dump kind and an
/// unsupported version of the *right* kind each get their own message
/// (a torn or foreign file used to surface as a bare "bad magic").
fn magic_mismatch(found: &[u8], want: &[u8; 8], kind: &str) -> io::Error {
    if found.len() == 8 && found[..7] == want[..7] {
        return invalid(&format!(
            "unsupported {kind} version '{}' (this build reads '{}')",
            found[7] as char, want[7] as char
        ));
    }
    if found.starts_with(b"DASH") {
        return invalid(&format!(
            "not a Dash {kind}: the magic names a different Dash dump kind"
        ));
    }
    invalid(&format!("bad magic number; not a Dash {kind}"))
}

pub(crate) fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Null => w.write_all(&[0]),
        Value::Int(i) => {
            w.write_all(&[1])?;
            w.write_all(&i.to_le_bytes())
        }
        Value::Decimal(d) => {
            w.write_all(&[2])?;
            w.write_all(&d.cents().to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            write_str(w, s)
        }
        Value::Date(d) => {
            w.write_all(&[4])?;
            w.write_all(&d.year().to_le_bytes())?;
            w.write_all(&[d.month(), d.day()])
        }
    }
}

pub(crate) fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Value::Null,
        1 => Value::Int(read_i64(r)?),
        2 => Value::Decimal(Decimal::from_cents(read_i64(r)?)),
        3 => Value::Str(read_str(r)?),
        4 => {
            let mut year = [0u8; 2];
            r.read_exact(&mut year)?;
            let mut md = [0u8; 2];
            r.read_exact(&mut md)?;
            Value::Date(Date::new(u16::from_le_bytes(year), md[0], md[1]))
        }
        other => return Err(invalid(&format!("unknown value tag {other}"))),
    })
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

pub(crate) fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

pub(crate) fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u64(r)?;
    if len > (1 << 24) {
        return Err(invalid("string length out of bounds"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| invalid("string is not UTF-8"))
}

pub(crate) fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Wraps an error with a locating prefix, preserving its kind (so
/// `UnexpectedEof` stays recognizable through the context).
pub(crate) fn with_context(what: &str, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::reference;
    use crate::engine::DashEngine;
    use crate::search::SearchRequest;
    use dash_webapp::fooddb;

    fn fooddb_fragments() -> Vec<Fragment> {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        reference::fragments(&app, &db).unwrap()
    }

    #[test]
    fn roundtrip_preserves_fragments() {
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let back = read_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, fragments);
    }

    #[test]
    fn loaded_engine_equals_built_engine() {
        let app = fooddb::search_application().unwrap();
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let loaded = read_fragments(buf.as_slice()).unwrap();
        let a = DashEngine::from_fragments(
            app.clone(),
            &fragments,
            dash_mapreduce::WorkflowStats::new(),
        )
        .unwrap();
        let b =
            DashEngine::from_fragments(app, &loaded, dash_mapreduce::WorkflowStats::new()).unwrap();
        for kw in ["burger", "fries", "coffee"] {
            let req = SearchRequest::new(&[kw]).k(5).min_size(20);
            assert_eq!(a.search(&req), b.search(&req));
        }
    }

    #[test]
    fn all_value_types_roundtrip() {
        let mut occ = BTreeMap::new();
        occ.insert("w".to_string(), 3);
        let fragment = Fragment::new(
            FragmentId::new(vec![
                Value::Null,
                Value::Int(-42),
                Value::decimal(-1250),
                Value::str("héllo wörld"),
                Value::Date(Date::new(2012, 6, 21)),
            ]),
            occ,
            7,
        );
        let mut buf = Vec::new();
        write_fragments(&mut buf, std::slice::from_ref(&fragment)).unwrap();
        let back = read_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, vec![fragment]);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        // Wrong magic.
        assert!(read_fragments(&b"NOTDASH0rest"[..]).is_err());
        // Truncated stream.
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let err = read_fragments(&buf[..buf.len() / 2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Unknown tag.
        let mut bad = Vec::new();
        bad.extend_from_slice(MAGIC);
        bad.extend_from_slice(&1u64.to_le_bytes()); // one fragment
        bad.extend_from_slice(&1u64.to_le_bytes()); // arity 1
        bad.push(99); // bogus value tag
        assert!(read_fragments(bad.as_slice()).is_err());
    }

    #[test]
    fn magic_errors_distinguish_kind_and_version() {
        // An unsupported *version* of the right kind names the version.
        let mut future = Vec::new();
        future.extend_from_slice(b"DASHFRG9");
        let err = read_fragments(future.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Another Dash dump kind is named as such...
        let fragments = fooddb_fragments();
        let mut sharded = Vec::new();
        write_sharded_fragments(&mut sharded, std::slice::from_ref(&fragments)).unwrap();
        let err = read_fragments(sharded.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("different Dash dump kind"),
            "{err}"
        );
        // ...and a foreign file is not mistaken for either.
        let err = read_fragments(&b"PNGJPEGX"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn decode_errors_name_the_breaking_record() {
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_sharded_fragments(&mut buf, &[fragments.clone(), fragments]).unwrap();
        // Tear the stream inside the second shard: the error must locate
        // shard and fragment instead of surfacing as a bare codec error,
        // while the EOF kind stays recognizable through the context.
        let err = read_sharded_fragments(&buf[..buf.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("shard 1"), "{err}");
        assert!(err.to_string().contains("fragment"), "{err}");
    }

    #[test]
    fn empty_set_roundtrips() {
        let mut buf = Vec::new();
        write_fragments(&mut buf, &[]).unwrap();
        assert!(read_fragments(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn sharded_dump_roundtrips_with_empty_shards() {
        let fragments = fooddb_fragments();
        let shards = vec![
            fragments[..2].to_vec(),
            Vec::new(), // an empty shard survives the codec
            fragments[2..].to_vec(),
        ];
        let mut buf = Vec::new();
        write_sharded_fragments(&mut buf, &shards).unwrap();
        let back = read_sharded_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, shards);
        // A flat reader must reject a sharded dump, and vice versa.
        assert!(read_fragments(buf.as_slice()).is_err());
        let mut flat = Vec::new();
        write_fragments(&mut flat, &fragments).unwrap();
        assert!(read_sharded_fragments(flat.as_slice()).is_err());
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let bytes: Vec<u8> = (0u16..100).map(|i| (i * 7) as u8).collect();
        let reference = checksum64(&bytes);
        let mut flipped = bytes.clone();
        for bit in 0..bytes.len() * 8 {
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(checksum64(&flipped), reference, "bit {bit} undetected");
            flipped[bit / 8] ^= 1 << (bit % 8);
        }
        // Length extension is not a collision either.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_ne!(checksum64(&longer), reference);
    }

    #[test]
    fn arena_image_roundtrips_byte_identically() {
        let fragments = fooddb_fragments();
        let index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let mut buf = Vec::new();
        write_image(&mut buf, Some(1), &[&index]).unwrap();
        let (range, shards) = read_image(&buf).unwrap();
        assert_eq!(range, Some(1));
        assert_eq!(shards.len(), 1);
        let loaded = &shards[0];
        // Arenas are bit-identical, not merely equivalent.
        assert_eq!(
            loaded.inverted.image_tf_arena(),
            index.inverted.image_tf_arena()
        );
        assert_eq!(
            loaded.inverted.image_probe().collect::<Vec<_>>(),
            index.inverted.image_probe().collect::<Vec<_>>()
        );
        assert_eq!(
            loaded.inverted.image_lists().collect::<Vec<_>>(),
            index.inverted.image_lists().collect::<Vec<_>>()
        );
        assert_eq!(loaded.catalog.image_parts(), index.catalog.image_parts());
        assert_eq!(loaded.graph.node_count(), index.graph.node_count());
        assert_eq!(loaded.graph.edge_count(), index.graph.edge_count());
        for ((ka, fa, wa), (kb, fb, wb)) in
            loaded.graph.image_groups().zip(index.graph.image_groups())
        {
            assert_eq!(ka, kb);
            assert_eq!(fa, fb);
            assert_eq!(wa, wb);
        }
        // Re-dumping the loaded index reproduces the exact bytes.
        let mut again = Vec::new();
        write_image(&mut again, Some(1), &[&shards[0]]).unwrap();
        assert_eq!(again, buf);
    }

    #[test]
    fn torn_and_flipped_images_rejected() {
        let fragments = fooddb_fragments();
        let index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let mut buf = Vec::new();
        write_image(&mut buf, Some(1), &[&index]).unwrap();
        // Every truncation point fails.
        for cut in [8, 20, buf.len() / 2, buf.len() - 1] {
            assert!(read_image(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Every single-bit flip fails (the whole file is covered by
        // either the magic check, a structural check, or a checksum).
        for bit in (0..buf.len() * 8).step_by(101) {
            let mut bad = buf.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(read_image(&bad).is_err(), "flipped bit {bit} accepted");
        }
        // Trailing garbage fails.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(read_image(&padded).is_err());
        // The v1 readers reject an image and vice versa.
        assert!(read_fragments(buf.as_slice()).is_err());
        assert!(read_image(b"DASHFRG1").is_err());
    }
}
