//! Fragment persistence: save a crawl's fragments to a compact binary
//! file and rebuild the engine from it without re-crawling.
//!
//! A search engine builds its index rarely and serves it constantly; the
//! paper's crawls take hours (Figure 10), so shipping the derived
//! fragments to the serving tier matters. The format is a small
//! self-describing binary codec (magic + version + length-prefixed
//! records) with no external dependencies; everything an engine needs —
//! identifiers, keyword occurrence maps, record counts — round-trips
//! exactly, so a loaded engine is byte-for-byte the engine that was
//! saved (tested).
//!
//! Two container layouts share the record codec:
//!
//! * **flat** ([`write_fragments`] / [`read_fragments`]) — one fragment
//!   list, the single-engine path;
//! * **sharded** ([`write_sharded_fragments`] /
//!   [`read_sharded_fragments`]) — one fragment list *per shard*,
//!   preserving a [`ShardedEngine`](crate::ShardedEngine)'s exact
//!   partition (which drifts under incremental maintenance), so a
//!   maintained sharded engine round-trips through
//!   [`ShardedEngine::dump_shards`](crate::ShardedEngine::dump_shards) /
//!   [`ShardedEngine::from_shard_fragments`](crate::ShardedEngine::from_shard_fragments)
//!   without re-partitioning.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use dash_relation::{Date, Decimal, Value};

use crate::fragment::{Fragment, FragmentId};

const MAGIC: &[u8; 8] = b"DASHFRG1";
const SHARDED_MAGIC: &[u8; 8] = b"DASHSHR1";

/// Serializes fragments into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fragments<W: Write>(mut writer: W, fragments: &[Fragment]) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    write_fragment_list(&mut writer, fragments)
}

/// Deserializes fragments from `reader`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number, unknown value tags or
/// malformed UTF-8, and propagates underlying I/O errors (including
/// `UnexpectedEof` on truncation).
pub fn read_fragments<R: Read>(mut reader: R) -> io::Result<Vec<Fragment>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic number; not a Dash fragment file"));
    }
    read_fragment_list(&mut reader)
}

/// Serializes per-shard fragment lists (the output of
/// [`ShardedEngine::dump_shards`](crate::ShardedEngine::dump_shards))
/// into `writer`, preserving the shard partition exactly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sharded_fragments<W: Write>(
    mut writer: W,
    shards: &[Vec<Fragment>],
) -> io::Result<()> {
    writer.write_all(SHARDED_MAGIC)?;
    write_u64(&mut writer, shards.len() as u64)?;
    for fragments in shards {
        write_fragment_list(&mut writer, fragments)?;
    }
    Ok(())
}

/// Deserializes per-shard fragment lists from `reader` — feed the
/// result to
/// [`ShardedEngine::from_shard_fragments`](crate::ShardedEngine::from_shard_fragments).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number, an out-of-bounds shard
/// count, unknown value tags or malformed UTF-8, and propagates
/// underlying I/O errors (including `UnexpectedEof` on truncation).
pub fn read_sharded_fragments<R: Read>(mut reader: R) -> io::Result<Vec<Vec<Fragment>>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != SHARDED_MAGIC {
        return Err(invalid("bad magic number; not a Dash sharded dump"));
    }
    let shards = read_u64(&mut reader)?;
    if shards > (1 << 16) {
        return Err(invalid("shard count out of bounds"));
    }
    (0..shards)
        .map(|_| read_fragment_list(&mut reader))
        .collect()
}

/// The shared record codec: a length-prefixed fragment list.
pub(crate) fn write_fragment_list<W: Write>(
    writer: &mut W,
    fragments: &[Fragment],
) -> io::Result<()> {
    write_u64(writer, fragments.len() as u64)?;
    for f in fragments {
        write_u64(writer, f.id.values().len() as u64)?;
        for v in f.id.values() {
            write_value(writer, v)?;
        }
        write_u64(writer, f.record_count)?;
        write_u64(writer, f.keyword_occurrences.len() as u64)?;
        for (kw, &n) in &f.keyword_occurrences {
            write_str(writer, kw)?;
            write_u64(writer, n)?;
        }
    }
    Ok(())
}

/// Reads one length-prefixed fragment list.
pub(crate) fn read_fragment_list<R: Read>(reader: &mut R) -> io::Result<Vec<Fragment>> {
    let count = read_u64(reader)?;
    let mut fragments = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let arity = read_u64(reader)?;
        let mut values = Vec::with_capacity(arity.min(64) as usize);
        for _ in 0..arity {
            values.push(read_value(reader)?);
        }
        let record_count = read_u64(reader)?;
        let keywords = read_u64(reader)?;
        let mut occ = BTreeMap::new();
        for _ in 0..keywords {
            let kw = read_str(reader)?;
            let n = read_u64(reader)?;
            occ.insert(kw, n);
        }
        fragments.push(Fragment::new(FragmentId::new(values), occ, record_count));
    }
    Ok(fragments)
}

pub(crate) fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Null => w.write_all(&[0]),
        Value::Int(i) => {
            w.write_all(&[1])?;
            w.write_all(&i.to_le_bytes())
        }
        Value::Decimal(d) => {
            w.write_all(&[2])?;
            w.write_all(&d.cents().to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            write_str(w, s)
        }
        Value::Date(d) => {
            w.write_all(&[4])?;
            w.write_all(&d.year().to_le_bytes())?;
            w.write_all(&[d.month(), d.day()])
        }
    }
}

pub(crate) fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Value::Null,
        1 => Value::Int(read_i64(r)?),
        2 => Value::Decimal(Decimal::from_cents(read_i64(r)?)),
        3 => Value::Str(read_str(r)?),
        4 => {
            let mut year = [0u8; 2];
            r.read_exact(&mut year)?;
            let mut md = [0u8; 2];
            r.read_exact(&mut md)?;
            Value::Date(Date::new(u16::from_le_bytes(year), md[0], md[1]))
        }
        other => return Err(invalid(&format!("unknown value tag {other}"))),
    })
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

pub(crate) fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

pub(crate) fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u64(r)?;
    if len > (1 << 24) {
        return Err(invalid("string length out of bounds"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| invalid("string is not UTF-8"))
}

pub(crate) fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::reference;
    use crate::engine::DashEngine;
    use crate::search::SearchRequest;
    use dash_webapp::fooddb;

    fn fooddb_fragments() -> Vec<Fragment> {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        reference::fragments(&app, &db).unwrap()
    }

    #[test]
    fn roundtrip_preserves_fragments() {
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let back = read_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, fragments);
    }

    #[test]
    fn loaded_engine_equals_built_engine() {
        let app = fooddb::search_application().unwrap();
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let loaded = read_fragments(buf.as_slice()).unwrap();
        let a = DashEngine::from_fragments(
            app.clone(),
            &fragments,
            dash_mapreduce::WorkflowStats::new(),
        )
        .unwrap();
        let b =
            DashEngine::from_fragments(app, &loaded, dash_mapreduce::WorkflowStats::new()).unwrap();
        for kw in ["burger", "fries", "coffee"] {
            let req = SearchRequest::new(&[kw]).k(5).min_size(20);
            assert_eq!(a.search(&req), b.search(&req));
        }
    }

    #[test]
    fn all_value_types_roundtrip() {
        let mut occ = BTreeMap::new();
        occ.insert("w".to_string(), 3);
        let fragment = Fragment::new(
            FragmentId::new(vec![
                Value::Null,
                Value::Int(-42),
                Value::decimal(-1250),
                Value::str("héllo wörld"),
                Value::Date(Date::new(2012, 6, 21)),
            ]),
            occ,
            7,
        );
        let mut buf = Vec::new();
        write_fragments(&mut buf, std::slice::from_ref(&fragment)).unwrap();
        let back = read_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, vec![fragment]);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        // Wrong magic.
        assert!(read_fragments(&b"NOTDASH0rest"[..]).is_err());
        // Truncated stream.
        let fragments = fooddb_fragments();
        let mut buf = Vec::new();
        write_fragments(&mut buf, &fragments).unwrap();
        let err = read_fragments(&buf[..buf.len() / 2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Unknown tag.
        let mut bad = Vec::new();
        bad.extend_from_slice(MAGIC);
        bad.extend_from_slice(&1u64.to_le_bytes()); // one fragment
        bad.extend_from_slice(&1u64.to_le_bytes()); // arity 1
        bad.push(99); // bogus value tag
        assert!(read_fragments(bad.as_slice()).is_err());
    }

    #[test]
    fn empty_set_roundtrips() {
        let mut buf = Vec::new();
        write_fragments(&mut buf, &[]).unwrap();
        assert!(read_fragments(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn sharded_dump_roundtrips_with_empty_shards() {
        let fragments = fooddb_fragments();
        let shards = vec![
            fragments[..2].to_vec(),
            Vec::new(), // an empty shard survives the codec
            fragments[2..].to_vec(),
        ];
        let mut buf = Vec::new();
        write_sharded_fragments(&mut buf, &shards).unwrap();
        let back = read_sharded_fragments(buf.as_slice()).unwrap();
        assert_eq!(back, shards);
        // A flat reader must reject a sharded dump, and vice versa.
        assert!(read_fragments(buf.as_slice()).is_err());
        let mut flat = Vec::new();
        write_fragments(&mut flat, &fragments).unwrap();
        assert!(read_sharded_fragments(flat.as_slice()).is_err());
    }
}
