//! Sharded, concurrent top-k search over the fragment handle space.
//!
//! The dense `Frag`/`GroupId` handle space exists to be partitioned:
//! [`ShardedEngine`] splits the equality groups into `N` contiguous
//! runs of global key-rank order, builds each shard its own
//! [`FragmentIndex`] (catalog, posting arenas, graph slice), runs the
//! top-k heap loop per shard on scoped threads with pooled scratch, and
//! merges the per-shard results into **byte-identical** output to
//! [`DashEngine::search`](crate::engine::DashEngine::search) for any
//! shard count.
//!
//! ## Why the merge is exact
//!
//! Algorithm 1's priority queue interleaves candidates from many
//! equality groups, but every state transition — expansion, absorption,
//! overlap suppression — is confined to one group. The pop sequence of
//! the global heap restricted to any subset of groups therefore equals
//! the pop sequence of searching that subset alone, *provided* the pop
//! order is independent of the lazy seeding schedule — which
//! [`top_k`](crate::search::top_k) guarantees by seeding through score
//! ties (a popped candidate strictly dominates every unseeded
//! fragment). Each shard records its pop sequence as a
//! [`PopTrace`](crate::search::PopTrace); replaying the global heap is
//! then a greedy merge: repeatedly take the shard whose next pop ranks
//! highest under the exact candidate ordering. Three details make the
//! per-shard runs bit-compatible with the single-heap run:
//!
//! * **Global IDF** — shards score with `1 / |L_w|` over *all*
//!   fragments, not their local fragment frequencies;
//! * **Global group ranks** — shards hold contiguous runs of key-rank
//!   order, so `local rank + shard offset = global rank`, preserving
//!   the heap's deterministic tie-break;
//! * **Identical arithmetic** — a group's candidates evolve through the
//!   same operation sequence in both runs, so every score is the same
//!   `f64` bit pattern.
//!
//! The equivalence is enforced by `tests/sharded_equivalence.rs`
//! (golden datasets + property tests over random datasets, keywords and
//! shard counts) and exercised concurrently by `tests/sharded_stress.rs`.

use std::collections::BTreeMap;

use dash_mapreduce::WorkflowStats;
use dash_relation::{Database, Value};
use dash_webapp::WebApplication;
use parking_lot::Mutex;

use crate::crawl;
use crate::engine::{validate_query, DashConfig};
use crate::fragment::Fragment;
use crate::index::FragmentIndex;
use crate::par;
use crate::search::topk::top_k_in;
use crate::search::{PopEvent, PopTrace, SearchHit, SearchRequest, SearchScratch};
use crate::Result;

/// The shard count configured in the environment (`DASH_SHARDS`), if
/// set to a positive integer. Deployments and the CI matrix use this to
/// pick the partition width without code changes.
pub fn env_shards() -> Option<usize> {
    parse_shards(&std::env::var("DASH_SHARDS").ok()?)
}

/// Parses a shard-count setting: a positive integer, or nothing.
fn parse_shards(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One shard: a self-contained fragment index over a contiguous run of
/// equality groups, plus the rank offset translating its local group
/// ids back to global ranks.
#[derive(Debug)]
struct Shard {
    index: FragmentIndex,
    group_offset: u32,
}

/// A Dash engine whose handle space is partitioned into `N` shards,
/// searched concurrently and merged deterministically. Search results
/// are byte-identical to a single-shard [`DashEngine`] over the same
/// fragments, for any shard count ≥ 1.
///
/// [`DashEngine`]: crate::engine::DashEngine
#[derive(Debug)]
pub struct ShardedEngine {
    app: WebApplication,
    shards: Vec<Shard>,
    /// Per-shard pools of reusable search scratch (occurrence pool,
    /// seed bitset). Concurrent searches pop a scratch, run, push it
    /// back; `search_many` reuses one scratch across a whole batch.
    pools: Vec<Mutex<Vec<SearchScratch>>>,
    crawl_stats: WorkflowStats,
    fragment_count: usize,
}

impl ShardedEngine {
    /// Crawls the database and builds a sharded engine — the sharded
    /// counterpart of [`DashEngine::build`](crate::DashEngine::build).
    /// `shards` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Same as [`DashEngine::build`](crate::DashEngine::build).
    pub fn build(
        app: &WebApplication,
        db: &Database,
        config: &DashConfig,
        shards: usize,
    ) -> Result<Self> {
        validate_query(app)?;
        let crawl = crawl::run_scoped(app, db, &config.cluster, config.algorithm, &config.scope)?;
        Self::from_fragments(app.clone(), &crawl.fragments, shards, crawl.stats)
    }

    /// Builds a sharded engine from already-derived fragments.
    ///
    /// # Errors
    ///
    /// Propagates query validation and index-construction errors.
    pub fn from_fragments(
        app: WebApplication,
        fragments: &[Fragment],
        shards: usize,
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let range_position = app.query.range_selection_index();
        let shards = shards.max(1);

        // Partition equality groups into contiguous runs of key-rank
        // order, balanced by fragment count; each shard's local group
        // ranks then map to global ranks by a constant offset.
        let parts = partition(fragments, range_position, shards);
        let offsets: Vec<u32> = {
            let mut offsets = Vec::with_capacity(parts.len());
            let mut total = 0u32;
            for part in &parts {
                offsets.push(total);
                total += part.groups as u32;
            }
            offsets
        };
        let built: Vec<Result<FragmentIndex>> = par::map(parts, |part| {
            FragmentIndex::build(&part.fragments, range_position)
        });
        let mut shard_vec = Vec::with_capacity(built.len());
        for (index, group_offset) in built.into_iter().zip(offsets) {
            shard_vec.push(Shard {
                index: index?,
                group_offset,
            });
        }
        let pools = shard_vec.iter().map(|_| Mutex::new(Vec::new())).collect();
        Ok(ShardedEngine {
            app,
            shards: shard_vec,
            pools,
            crawl_stats,
            fragment_count: fragments.len(),
        })
    }

    /// Top-k db-page search — byte-identical to
    /// [`DashEngine::search`](crate::DashEngine::search) over the same
    /// fragments, computed as per-shard searches plus a deterministic
    /// trace merge.
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        self.search_many(std::slice::from_ref(request))
            .pop()
            .unwrap_or_default()
    }

    /// Batched top-k: answers every request, reusing one pooled scratch
    /// per shard across the whole batch (the per-query allocation cost
    /// is paid once per shard, not once per request). Results are
    /// position-aligned with `requests` and each is byte-identical to
    /// the corresponding [`ShardedEngine::search`] call.
    ///
    /// Shards first run with an *adaptive* emission limit of
    /// `⌈k / N⌉ + 2` (the global top-k rarely takes more than its share
    /// from one shard); if the merge drains a limit-truncated trace
    /// before `k` global emissions, that shard — and only that shard —
    /// re-runs at the full `k` and the (cheap) merge restarts. At full
    /// `k` a drained truncated trace implies `k` merged emissions, so
    /// at most one re-run per shard per request.
    pub fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let shard_count = self.shards.len();
        let idfs: Vec<Vec<f64>> = requests
            .iter()
            .map(|r| r.keywords.iter().map(|w| self.global_idf(w)).collect())
            .collect();
        let mut limits: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| vec![initial_limit(r.k, shard_count); shard_count])
            .collect();
        let mut runs: Vec<Vec<Option<ShardRun>>> = requests
            .iter()
            .map(|_| (0..shard_count).map(|_| None).collect())
            .collect();
        // Per request: the global emission order (shard index per
        // emitted hit), filled in by the successful shortfall walk so
        // the final extraction never re-walks a trace.
        let mut orders: Vec<Option<Vec<usize>>> = vec![None; requests.len()];
        // First round runs every shard; re-run rounds only the shards a
        // merge sent back for a deeper pass.
        let mut pending: Vec<usize> = (0..shard_count).collect();
        while !pending.is_empty() {
            // Parallel phase: one scoped worker per pending shard runs
            // that shard's pending requests with one reused scratch.
            let produced: Vec<(usize, Vec<(usize, ShardRun)>)> =
                par::map(std::mem::take(&mut pending), |s| {
                    let shard = &self.shards[s];
                    let mut scratch = self.pools[s].lock().pop().unwrap_or_default();
                    let mut out = Vec::new();
                    for (r, request) in requests.iter().enumerate() {
                        if runs[r][s].is_some() {
                            continue;
                        }
                        let hits = top_k_in(
                            &self.app,
                            &shard.index,
                            request,
                            &idfs[r],
                            limits[r][s],
                            shard.group_offset,
                            true,
                            &mut scratch,
                        );
                        out.push((
                            r,
                            ShardRun {
                                hits,
                                trace: std::mem::take(&mut scratch.trace),
                                truncated: scratch.truncated,
                            },
                        ));
                    }
                    self.pools[s].lock().push(scratch);
                    (s, out)
                });
            for (s, jobs) in produced {
                for (r, run) in jobs {
                    runs[r][s] = Some(run);
                }
            }
            // Merge walk: fixes each request's emission order, or sends
            // truncated shards back for a full-k pass.
            for (r, request) in requests.iter().enumerate() {
                if orders[r].is_some() {
                    continue;
                }
                match merge_order(&runs[r], request.k) {
                    Ok(order) => orders[r] = Some(order),
                    Err(short) => {
                        for s in short {
                            limits[r][s] = request.k;
                            runs[r][s] = None;
                            if !pending.contains(&s) {
                                pending.push(s);
                            }
                        }
                    }
                }
            }
        }
        runs.into_iter()
            .zip(orders)
            .map(|(shard_runs, order)| {
                extract_hits(shard_runs, order.expect("every request merged"))
            })
            .collect()
    }

    /// The analyzed application this engine serves.
    pub fn app(&self) -> &WebApplication {
        &self.app
    }

    /// Number of shards the handle space is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed fragments across all shards.
    pub fn fragment_count(&self) -> usize {
        self.fragment_count
    }

    /// Per-shard fragment counts (the partition balance).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.index.fragment_count())
            .collect()
    }

    /// Statistics of the crawl workflow that fed this engine.
    pub fn crawl_stats(&self) -> &WorkflowStats {
        &self.crawl_stats
    }

    /// Global `IDF_w = 1 / |L_w|` over all shards: every fragment lives
    /// in exactly one shard, so the global fragment frequency is the
    /// sum of the shards' local ones.
    fn global_idf(&self, word: &str) -> f64 {
        let df: usize = self.shards.iter().map(|s| s.index.inverted.df(word)).sum();
        if df == 0 {
            0.0
        } else {
            1.0 / df as f64
        }
    }
}

/// One shard's slice of the input: its fragments (input order
/// preserved) and how many equality groups they span.
struct Part {
    fragments: Vec<Fragment>,
    groups: usize,
}

/// Splits fragments into `shards` contiguous runs of group-key rank,
/// balancing by fragment count (a group is never split — group-local
/// candidate evolution is the unit of equivalence).
fn partition(fragments: &[Fragment], range_position: Option<usize>, shards: usize) -> Vec<Part> {
    // Group key → member fragment indices, in key order (BTreeMap) with
    // input order preserved within each group.
    let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    for (i, f) in fragments.iter().enumerate() {
        // The graph's own key derivation — partition order must stay in
        // lockstep with `FragmentGraph`'s grouping.
        let key = crate::index::graph::group_key(&f.id, range_position);
        groups.entry(key).or_default().push(i);
    }
    let total = fragments.len().max(1);
    let mut parts: Vec<Part> = (0..shards)
        .map(|_| Part {
            fragments: Vec::new(),
            groups: 0,
        })
        .collect();
    let mut assigned = 0usize;
    for members in groups.values() {
        // Contiguous, monotone assignment: the group's shard is chosen
        // by how much of the fragment mass precedes it.
        let shard = (assigned * shards / total).min(shards - 1);
        let part = &mut parts[shard];
        part.groups += 1;
        for &i in members {
            part.fragments.push(fragments[i].clone());
        }
        assigned += members.len();
    }
    parts
}

/// One shard's answer to one request: its hits, its pop trace, and
/// whether the run stopped at its emission limit.
#[derive(Debug)]
struct ShardRun {
    hits: Vec<SearchHit>,
    trace: PopTrace,
    truncated: bool,
}

/// The optimistic first-pass emission limit per shard: the global top-k
/// rarely takes much more than `k / N` hits from one shard, and a
/// wrong guess only costs that shard a second (full-`k`) run.
fn initial_limit(k: usize, shards: usize) -> usize {
    if shards <= 1 || k == 0 {
        return k;
    }
    (k.div_ceil(shards) + 2).min(k)
}

/// Replays the global heap order over per-shard pop traces: repeatedly
/// advance the shard whose next pop ranks highest (the exact candidate
/// ordering), invoking `on_emit(shard)` for every emitted pop, until
/// `k` emissions or every trace drains. Returns the shards whose
/// *limit-truncated* traces drained before `k` emissions — the true
/// heap would process pops past their limits, so they must re-run
/// deeper; an empty list means the walk is the exact global order.
fn walk_merged_pops<F: FnMut(usize)>(
    traces: &[&PopTrace],
    truncated: &[bool],
    k: usize,
    mut on_emit: F,
) -> Vec<usize> {
    let mut cursors = vec![0usize; traces.len()];
    let mut emitted = 0usize;
    while emitted < k {
        let mut best: Option<(usize, PopEvent)> = None;
        for (s, trace) in traces.iter().enumerate() {
            if let Some(&event) = trace.get(cursors[s]) {
                if best.is_none_or(|(_, b)| event.heap_cmp(&b) == std::cmp::Ordering::Greater) {
                    best = Some((s, event));
                }
            }
        }
        let Some((s, event)) = best else {
            // Every trace drained short of k: any truncated shard may be
            // hiding higher-ranked pops beyond its limit.
            return (0..traces.len()).filter(|&s| truncated[s]).collect();
        };
        cursors[s] += 1;
        if event.emitted {
            emitted += 1;
            on_emit(s);
        }
        if cursors[s] == traces[s].len() && truncated[s] && emitted < k {
            return vec![s];
        }
    }
    Vec::new()
}

/// One merge walk per request: `Ok` carries the global emission order
/// (shard index per emitted hit, ready for [`extract_hits`]); `Err`
/// carries the shards that must re-run deeper first.
fn merge_order(runs: &[Option<ShardRun>], k: usize) -> std::result::Result<Vec<usize>, Vec<usize>> {
    let traces: Vec<&PopTrace> = runs
        .iter()
        .map(|run| &run.as_ref().expect("shard run present").trace)
        .collect();
    let truncated: Vec<bool> = runs
        .iter()
        .map(|run| run.as_ref().expect("shard run present").truncated)
        .collect();
    let mut order = Vec::new();
    let shortfall = walk_merged_pops(&traces, &truncated, k, |s| order.push(s));
    if shortfall.is_empty() {
        Ok(order)
    } else {
        Err(shortfall)
    }
}

/// Moves hits out of the shard runs in the emission order a successful
/// [`merge_order`] walk fixed — no hit is cloned, no trace re-walked.
fn extract_hits(runs: Vec<Option<ShardRun>>, order: Vec<usize>) -> Vec<SearchHit> {
    let mut hits: Vec<std::vec::IntoIter<SearchHit>> = runs
        .into_iter()
        .map(|run| run.expect("shard run present").hits.into_iter())
        .collect();
    order
        .into_iter()
        .map(|s| hits[s].next().expect("a hit per emitted pop"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DashEngine;
    use dash_webapp::fooddb;

    fn fooddb_parts() -> (WebApplication, Database) {
        (fooddb::search_application().unwrap(), fooddb::database())
    }

    #[test]
    fn matches_single_engine_on_running_example() {
        let (app, db) = fooddb_parts();
        let single = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        for shards in 1..=4 {
            let sharded = ShardedEngine::build(&app, &db, &DashConfig::default(), shards).unwrap();
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.fragment_count(), single.fragment_count());
            for (keywords, k, s) in [
                (vec!["burger"], 2, 20),
                (vec!["burger"], 10, 1),
                (vec!["burger", "fries"], 5, 1),
                (vec!["american"], 10, 1),
                (vec!["zzz"], 3, 10),
            ] {
                let req = SearchRequest::new(&keywords).k(k).min_size(s);
                assert_eq!(
                    sharded.search(&req),
                    single.search(&req),
                    "shards={shards} keywords={keywords:?} k={k} s={s}"
                );
            }
        }
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let (app, db) = fooddb_parts();
        let crawl = crawl::run(&app, &db, &Default::default(), Default::default()).unwrap();
        let parts = partition(&crawl.fragments, app.query.range_selection_index(), 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.fragments.len()).sum();
        assert_eq!(total, crawl.fragments.len());
        let groups: usize = parts.iter().map(|p| p.groups).sum();
        assert_eq!(groups, 2); // American + Thai
    }

    #[test]
    fn search_many_matches_search() {
        let (app, db) = fooddb_parts();
        let sharded = ShardedEngine::build(&app, &db, &DashConfig::default(), 2).unwrap();
        let requests = vec![
            SearchRequest::new(&["burger"]).k(2).min_size(20),
            SearchRequest::new(&["fries"]).k(3).min_size(1),
            SearchRequest::new(&["burger", "thai"]).k(4).min_size(5),
        ];
        let batch = sharded.search_many(&requests);
        assert_eq!(batch.len(), requests.len());
        for (request, batch_hits) in requests.iter().zip(&batch) {
            assert_eq!(batch_hits, &sharded.search(request));
        }
        assert!(sharded.search_many(&[]).is_empty());
    }

    #[test]
    fn more_shards_than_groups_still_works() {
        let (app, db) = fooddb_parts();
        let single = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        // fooddb has 2 equality groups; ask for 8 shards (most empty).
        let sharded = ShardedEngine::build(&app, &db, &DashConfig::default(), 8).unwrap();
        let req = SearchRequest::new(&["burger"]).k(10).min_size(1);
        assert_eq!(sharded.search(&req), single.search(&req));
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn shard_setting_parses() {
        // The parser alone — mutating the process environment races
        // other test threads' getenv calls.
        assert_eq!(parse_shards("4"), Some(4));
        assert_eq!(parse_shards(" 2 "), Some(2));
        assert_eq!(parse_shards("0"), None);
        assert_eq!(parse_shards("nope"), None);
        assert_eq!(parse_shards(""), None);
    }
}
