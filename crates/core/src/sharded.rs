//! Sharded, concurrent top-k search over the fragment handle space,
//! with shard-local incremental maintenance on a persistent worker
//! pool.
//!
//! The dense `Frag`/`GroupId` handle space exists to be partitioned:
//! [`ShardedEngine`] splits the equality groups into `N` contiguous
//! runs of global key-rank order, builds each shard its own
//! [`FragmentIndex`] (catalog, posting arenas, graph slice), runs the
//! top-k heap loop per shard, and merges the per-shard results into
//! **byte-identical** output to
//! [`DashEngine::search`](crate::engine::DashEngine::search) for any
//! shard count.
//!
//! ## The shard worker pool
//!
//! Every shard owns one long-lived worker thread, fed over a channel
//! (`ShardJob`) and holding its own reusable `SearchScratch` —
//! single queries no longer pay a thread spawn (PR 2 spawned scoped
//! threads per call, ~10µs each, dwarfing a µs-scale search). The
//! calling thread always executes the first pending shard *inline*
//! (with a pooled scratch), so a 1-shard engine never touches a
//! channel at all and an N-shard engine keeps the caller's core busy
//! instead of blocking on replies. The same pool applies maintenance
//! deltas, so shard mutation parallelizes identically to search.
//!
//! ## The delta write path (shard-local maintenance)
//!
//! Mutations arrive as [`IndexDelta`]s (see [`crate::update`]): stale
//! identifiers out, fresh fragments in. [`ShardedEngine::apply_delta`]
//! routes every entry to the shard owning its equality group — routing
//! is a static key-range table fixed at construction
//! (`ShardedEngine::route_bounds` stores each shard's lowest group
//! key), so a shard's key range never changes and the partition stays
//! contiguous in key order forever. Each affected shard applies its
//! sub-delta to its own arenas only (per-shard work, never O(total)),
//! then the engine refreshes the *global* coordinates incrementally:
//! group-rank offsets are re-prefix-summed over per-shard group counts
//! (O(shards)), and global IDF is always computed per request by
//! summing per-shard fragment frequencies. Post-update searches are
//! therefore byte-identical to a [`DashEngine`] freshly rebuilt over
//! the mutated fragment set — proven by `tests/sharded_maintenance.rs`
//! (golden + property tests, shard counts {1, 2, 4, 8}).
//!
//! ## Why the merge is exact
//!
//! Algorithm 1's priority queue interleaves candidates from many
//! equality groups, but every state transition — expansion, absorption,
//! overlap suppression — is confined to one group. The pop sequence of
//! the global heap restricted to any subset of groups therefore equals
//! the pop sequence of searching that subset alone, *provided* the pop
//! order is independent of the lazy seeding schedule — which
//! [`top_k`](crate::search::top_k) guarantees by seeding through score
//! ties (a popped candidate strictly dominates every unseeded
//! fragment). Each shard records its pop sequence as a
//! `PopTrace`; replaying the global heap is
//! then a greedy merge: repeatedly take the shard whose next pop ranks
//! highest under the exact candidate ordering. Three details make the
//! per-shard runs bit-compatible with the single-heap run:
//!
//! * **Global IDF** — shards score with `1 / |L_w|` over *all*
//!   fragments, not their local fragment frequencies;
//! * **Global group ranks** — shards hold contiguous runs of key-rank
//!   order, so `local rank + shard offset = global rank`, preserving
//!   the heap's deterministic tie-break;
//! * **Identical arithmetic** — a group's candidates evolve through the
//!   same operation sequence in both runs, so every score is the same
//!   `f64` bit pattern.
//!
//! The equivalence is enforced by `tests/sharded_equivalence.rs`
//! (golden datasets + property tests over random datasets, keywords and
//! shard counts), exercised concurrently by `tests/sharded_stress.rs`,
//! and extended across mutation histories by
//! `tests/sharded_maintenance.rs`.
//!
//! [`DashEngine`]: crate::engine::DashEngine

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use dash_mapreduce::WorkflowStats;
use dash_relation::{Database, Record, Value};
use dash_webapp::WebApplication;
use parking_lot::{Mutex, RwLock};

use crate::crawl;
use crate::engine::{validate_query, DashConfig};
use crate::error::CoreError;
use crate::fragment::Fragment;
use crate::index::graph::group_key;
use crate::index::{FragmentIndex, GroupId};
use crate::par;
use crate::persist;
use crate::search::topk::top_k_in;
use crate::search::{PopEvent, PopTrace, SearchHit, SearchRequest, SearchScratch};
use crate::update::{
    affected_fragment_ids, build_delta, bulk_delta, DeltaSignature, IndexDelta, RecordChange,
    RefreshStats,
};
use crate::Result;

/// The shard count configured in the environment (`DASH_SHARDS`), if
/// set to a positive integer. Deployments and the CI matrix use this to
/// pick the partition width without code changes.
pub fn env_shards() -> Option<usize> {
    parse_shards(&std::env::var("DASH_SHARDS").ok()?)
}

/// Parses a shard-count setting: a positive integer, or nothing.
fn parse_shards(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One shard: a self-contained fragment index over a contiguous run of
/// equality groups, plus the rank offset translating its local group
/// ids back to global ranks. Lives behind an `Arc<RwLock<_>>` shared
/// with the shard's worker thread; searches take read guards,
/// maintenance takes write guards (and `&mut ShardedEngine` already
/// excludes search/maintenance races at the borrow level).
#[derive(Debug)]
struct Shard {
    index: FragmentIndex,
    group_offset: u32,
}

/// One batch of search work, shared with worker threads by `Arc` (the
/// workers are `'static`, so they cannot borrow the caller's slices).
#[derive(Debug)]
struct SearchBatch {
    requests: Vec<SearchRequest>,
    /// Per request, per keyword: global `IDF_w` across all shards.
    idfs: Vec<Vec<f64>>,
}

/// One shard's search reply: its index plus the `(request, run)` pairs
/// it produced.
type SearchReply = (usize, Vec<(usize, ShardRun)>);

/// Work items a shard worker accepts over its channel.
enum ShardJob {
    /// Run `(request index, emission limit)` searches against the shard
    /// and send the recorded runs back.
    Search {
        batch: Arc<SearchBatch>,
        tasks: Vec<(usize, usize)>,
        reply: mpsc::Sender<SearchReply>,
    },
    /// Apply a routed sub-delta to the shard's index.
    Delta {
        delta: IndexDelta,
        reply: mpsc::Sender<RefreshStats>,
    },
}

/// The persistent worker pool: one long-lived thread per shard, each
/// owning a reusable search scratch and draining its job channel until
/// the engine drops.
#[derive(Debug)]
struct WorkerPool {
    senders: Vec<mpsc::Sender<ShardJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per shard. On a single-core host, or for a
    /// 1-shard engine, the pool is empty: dispatch checks the same
    /// cached `par::parallelism()` and runs every shard inline (and a
    /// single shard is always the inline one), so the threads would
    /// only ever park — spawning them per engine (benches rebuild
    /// engines in a loop) would be pure overhead.
    fn spawn(shards: &[Arc<RwLock<Shard>>], app: &Arc<WebApplication>) -> Self {
        if par::parallelism() <= 1 || shards.len() <= 1 {
            return WorkerPool {
                senders: Vec::new(),
                handles: Vec::new(),
            };
        }
        let mut senders = Vec::with_capacity(shards.len());
        let mut handles = Vec::with_capacity(shards.len());
        for (s, shard) in shards.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let shard = Arc::clone(shard);
            let app = Arc::clone(app);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dash-shard-{s}"))
                    .spawn(move || {
                        let mut scratch = SearchScratch::new();
                        while let Ok(job) = rx.recv() {
                            match job {
                                ShardJob::Search {
                                    batch,
                                    tasks,
                                    reply,
                                } => {
                                    let guard = shard.read();
                                    let runs = run_shard_tasks(
                                        &app,
                                        &guard,
                                        &batch.requests,
                                        &batch.idfs,
                                        &tasks,
                                        &mut scratch,
                                    );
                                    let _ = reply.send((s, runs));
                                }
                                ShardJob::Delta { delta, reply } => {
                                    let stats = shard.write().index.apply(&delta);
                                    let _ = reply.send(stats);
                                }
                            }
                        }
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        WorkerPool { senders, handles }
    }

    /// Enqueues a job on shard `s`'s worker.
    fn send(&self, s: usize, job: ShardJob) {
        self.senders[s].send(job).expect("shard worker alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join to make the
        // engine's drop a full quiesce.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one shard's portion of a search batch: every `(request,
/// limit)` task against the shard's index, with one reused scratch.
fn run_shard_tasks(
    app: &WebApplication,
    shard: &Shard,
    requests: &[SearchRequest],
    idfs: &[Vec<f64>],
    tasks: &[(usize, usize)],
    scratch: &mut SearchScratch,
) -> Vec<(usize, ShardRun)> {
    let _span = dash_obs::span!("dash_shard_search_ns");
    let runs: Vec<(usize, ShardRun)> = tasks
        .iter()
        .map(|&(r, limit)| {
            let hits = top_k_in(
                app,
                &shard.index,
                &requests[r],
                &idfs[r],
                limit,
                shard.group_offset,
                true,
                scratch,
            );
            (
                r,
                ShardRun {
                    hits,
                    trace: std::mem::take(&mut scratch.trace),
                    truncated: scratch.truncated,
                },
            )
        })
        .collect();
    // Each recorded pop is one candidate db-page the heap loop
    // examined on this shard.
    let candidates: u64 = runs.iter().map(|(_, run)| run.trace.len() as u64).sum();
    if candidates > 0 {
        static CANDIDATES: std::sync::OnceLock<std::sync::Arc<dash_obs::Counter>> =
            std::sync::OnceLock::new();
        CANDIDATES
            .get_or_init(|| dash_obs::Registry::global().counter("dash_shard_candidates_total"))
            .add(candidates);
    }
    runs
}

/// A Dash engine whose handle space is partitioned into `N` shards,
/// searched concurrently on a persistent worker pool and merged
/// deterministically. Search results are byte-identical to a
/// single-shard [`DashEngine`] over the same fragments, for any shard
/// count ≥ 1 — including after any sequence of incremental updates
/// ([`ShardedEngine::apply_insert`] / [`ShardedEngine::apply_delete`] /
/// [`ShardedEngine::apply_delta`]).
///
/// [`DashEngine`]: crate::engine::DashEngine
#[derive(Debug)]
pub struct ShardedEngine {
    app: Arc<WebApplication>,
    shards: Vec<Arc<RwLock<Shard>>>,
    /// Static routing table fixed at construction: `(lowest group key,
    /// shard index)` for every shard non-empty at build, in key order.
    /// A delta entry routes to the last shard whose bound does not
    /// exceed its group key (the first shard catches smaller keys), so
    /// shards keep disjoint, contiguous, key-ordered ranges across any
    /// mutation history — the invariant the trace merge's global group
    /// ranks rest on.
    route_bounds: Vec<(Vec<Value>, usize)>,
    /// Per-shard pools of reusable search scratch for the *inline*
    /// shard (the one the calling thread executes itself); worker
    /// threads own their scratch outright.
    pools: Vec<Mutex<Vec<SearchScratch>>>,
    workers: WorkerPool,
    crawl_stats: WorkflowStats,
    fragment_count: usize,
}

impl ShardedEngine {
    /// Crawls the database and builds a sharded engine — the crawl
    /// half of [`IngestSource::Crawl`](crate::ingest::IngestSource)
    /// and the sharded counterpart of
    /// [`DashEngine::build`](crate::DashEngine::build). `shards` is
    /// clamped to at least 1.
    pub(crate) fn crawl_build_impl(
        app: &WebApplication,
        db: &Database,
        config: &DashConfig,
        shards: usize,
        mut stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(app)?;
        let crawl = crawl::run_scoped(app, db, &config.cluster, config.algorithm, &config.scope)?;
        for job in crawl.stats.jobs {
            stats.push(job);
        }
        Self::from_fragments_impl(app.clone(), &crawl.fragments, shards, stats)
    }

    /// Builds a sharded engine from already-derived fragments — the
    /// engine half of
    /// [`IngestSource::Fragments`](crate::ingest::IngestSource).
    pub(crate) fn from_fragments_impl(
        app: WebApplication,
        fragments: &[Fragment],
        shards: usize,
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let range_position = app.query.range_selection_index();
        let shards = shards.max(1);

        // Partition equality groups into contiguous runs of key-rank
        // order, balanced by fragment count; each shard's local group
        // ranks then map to global ranks by a constant offset. Parts are
        // reference runs — no fragment is cloned; interning copies the
        // data exactly once, into each shard's own catalog.
        let parts = partition(fragments, range_position, shards);
        let built: Vec<Result<FragmentIndex>> = par::map(parts, |part| {
            FragmentIndex::build_refs(&part.fragments, range_position)
        });
        let mut indexes = Vec::with_capacity(built.len());
        for index in built {
            indexes.push(index?);
        }
        Self::assemble(app, indexes, range_position, crawl_stats)
    }

    /// Rebuilds a sharded engine from per-shard fragment lists — the
    /// load half of per-shard persistence
    /// ([`ShardedEngine::dump_shards`] is the dump half) and the engine
    /// half of [`IngestSource::ShardDumps`](crate::ingest::IngestSource):
    /// the partition is taken exactly as given, **not** re-derived, so a
    /// maintained engine round-trips with its (drifted) shard balance
    /// intact. Returns [`CoreError::Internal`] when the given shards are
    /// not contiguous, disjoint runs of group-key order (e.g. a
    /// corrupted or hand-edited dump).
    pub(crate) fn from_shard_fragments_impl(
        app: WebApplication,
        shard_fragments: &[Vec<Fragment>],
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let range_position = app.query.range_selection_index();
        let built: Vec<Result<FragmentIndex>> =
            par::map(shard_fragments.iter().collect(), |frags: &Vec<Fragment>| {
                FragmentIndex::build(frags, range_position)
            });
        let mut indexes = Vec::with_capacity(built.len());
        for index in built {
            indexes.push(index?);
        }
        Self::assemble(app, indexes, range_position, crawl_stats)
    }

    /// [`ShardedEngine::from_shard_fragments_impl`] over borrowed
    /// fragments — the zero-copy engine half of
    /// [`IngestSource::Distributed`](crate::ingest::IngestSource): a
    /// mapreduce shard build hands over reference runs into the
    /// caller's corpus, and nothing is cloned until interning.
    pub(crate) fn from_shard_refs_impl(
        app: WebApplication,
        shard_refs: &[Vec<&Fragment>],
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let range_position = app.query.range_selection_index();
        let built: Vec<Result<FragmentIndex>> =
            par::map(shard_refs.iter().collect(), |frags: &Vec<&Fragment>| {
                FragmentIndex::build_refs(frags, range_position)
            });
        let mut indexes = Vec::with_capacity(built.len());
        for index in built {
            indexes.push(index?);
        }
        Self::assemble(app, indexes, range_position, crawl_stats)
    }

    /// Wires built per-shard indexes into an engine: global group-rank
    /// offsets, the static routing table, scratch pools and the worker
    /// pool. An empty index list (e.g. a hand-made empty dump) is
    /// clamped to one empty shard, mirroring `shards.max(1)` on the
    /// build path — a zero-shard engine could answer nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Internal`] when the shards' group-key
    /// ranges are not disjoint and ascending.
    fn assemble(
        app: WebApplication,
        mut indexes: Vec<FragmentIndex>,
        range_position: Option<usize>,
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        if indexes.is_empty() {
            indexes.push(FragmentIndex::build(&[], range_position)?);
        }
        let mut shards = Vec::with_capacity(indexes.len());
        let mut route_bounds = Vec::new();
        let mut group_offset = 0u32;
        let mut fragment_count = 0usize;
        let mut prev_max: Option<Vec<Value>> = None;
        for (s, index) in indexes.into_iter().enumerate() {
            let groups = index.graph.group_count() as u32;
            if groups > 0 {
                let lowest = index.graph.group_key(GroupId(0)).to_vec();
                let highest = index.graph.group_key(GroupId(groups - 1)).to_vec();
                if prev_max.as_ref().is_some_and(|p| *p >= lowest) {
                    return Err(CoreError::Internal {
                        detail: format!(
                            "shard {s} group-key range is not disjoint/ascending with its predecessor"
                        ),
                    });
                }
                prev_max = Some(highest);
                route_bounds.push((lowest, s));
            }
            fragment_count += index.graph.node_count();
            shards.push(Arc::new(RwLock::new(Shard {
                index,
                group_offset,
            })));
            group_offset += groups;
        }
        let pools = shards.iter().map(|_| Mutex::new(Vec::new())).collect();
        let app = Arc::new(app);
        let workers = WorkerPool::spawn(&shards, &app);
        Ok(ShardedEngine {
            app,
            shards,
            route_bounds,
            pools,
            workers,
            crawl_stats,
            fragment_count,
        })
    }

    /// Top-k db-page search — byte-identical to
    /// [`DashEngine::search`](crate::DashEngine::search) over the same
    /// fragments, computed as per-shard searches plus a deterministic
    /// trace merge.
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        self.search_many(std::slice::from_ref(request))
            .pop()
            .unwrap_or_default()
    }

    /// Batched top-k: answers every request, reusing one scratch per
    /// shard across the whole batch (worker-owned for pool shards,
    /// pooled for the inline shard). Results are position-aligned with
    /// `requests` and each is byte-identical to the corresponding
    /// [`ShardedEngine::search`] call.
    ///
    /// Shards first run with an *adaptive* emission limit of
    /// `⌈k / N⌉ + 2` (the global top-k rarely takes more than its share
    /// from one shard); if the merge drains a limit-truncated trace
    /// before `k` global emissions, that shard — and only that shard —
    /// re-runs at the full `k` and the (cheap) merge restarts. At full
    /// `k` a drained truncated trace implies `k` merged emissions, so
    /// at most one re-run per shard per request.
    pub fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let _span = dash_obs::span!("dash_shard_search_many_ns");
        let shard_count = self.shards.len();
        // One read pass over all shards for the global IDFs.
        let idfs: Vec<Vec<f64>> = {
            let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
            requests
                .iter()
                .map(|r| {
                    r.keywords
                        .iter()
                        .map(|w| {
                            let df: usize = guards.iter().map(|g| g.index.inverted.df(w)).sum();
                            if df == 0 {
                                0.0
                            } else {
                                1.0 / df as f64
                            }
                        })
                        .collect()
                })
                .collect()
        };
        if shard_count == 1 {
            // Single-shard fast path: the shard's own emission order IS
            // the global order, so the trace/merge machinery would only
            // re-derive the hits it already has — run the heap loop
            // straight, without recording, at the full k.
            let mut scratch = self.pools[0].lock().pop().unwrap_or_default();
            let guard = self.shards[0].read();
            let results = requests
                .iter()
                .enumerate()
                .map(|(r, request)| {
                    top_k_in(
                        &self.app,
                        &guard.index,
                        request,
                        &idfs[r],
                        request.k,
                        0,
                        false,
                        &mut scratch,
                    )
                })
                .collect();
            drop(guard);
            self.pools[0].lock().push(scratch);
            return results;
        }
        let mut limits: Vec<Vec<usize>> = requests
            .iter()
            .map(|r| vec![initial_limit(r.k, shard_count); shard_count])
            .collect();
        let mut runs: Vec<Vec<Option<ShardRun>>> = requests
            .iter()
            .map(|_| (0..shard_count).map(|_| None).collect())
            .collect();
        // Per request: the global emission order (shard index per
        // emitted hit), filled in by the successful shortfall walk so
        // the final extraction never re-walks a trace.
        let mut orders: Vec<Option<Vec<usize>>> = vec![None; requests.len()];
        // First round runs every shard; re-run rounds only the shards a
        // merge sent back for a deeper pass.
        let mut pending: Vec<usize> = (0..shard_count).collect();
        // The worker-bound copies of the batch, plus the reply channel
        // — built lazily on the first real dispatch, so a 1-shard
        // engine (and any engine on a single-core host, where fanning
        // out only buys context switches) never clones a request or
        // touches a channel.
        let use_workers = par::parallelism() > 1;
        let mut batch: Option<Arc<SearchBatch>> = None;
        let mut reply: Option<(mpsc::Sender<SearchReply>, mpsc::Receiver<SearchReply>)> = None;
        while !pending.is_empty() {
            let round = std::mem::take(&mut pending);
            // This round's tasks per shard: the requests still missing
            // this shard's run, at their current limits.
            let shard_tasks = |s: usize, runs: &[Vec<Option<ShardRun>>]| -> Vec<(usize, usize)> {
                (0..requests.len())
                    .filter(|&r| runs[r][s].is_none())
                    .map(|r| (r, limits[r][s]))
                    .collect()
            };
            // Dispatch every shard but the first to its worker; the
            // calling thread runs the first inline.
            let mut dispatched = 0usize;
            let (inline, pool_bound) = round.split_first().expect("non-empty round");
            if use_workers {
                for &s in pool_bound {
                    let batch = batch.get_or_insert_with(|| {
                        Arc::new(SearchBatch {
                            requests: requests.to_vec(),
                            idfs: idfs.clone(),
                        })
                    });
                    let reply_tx = &reply.get_or_insert_with(mpsc::channel).0;
                    self.workers.send(
                        s,
                        ShardJob::Search {
                            batch: Arc::clone(batch),
                            tasks: shard_tasks(s, &runs),
                            reply: reply_tx.clone(),
                        },
                    );
                    dispatched += 1;
                }
            }
            let run_inline = |s: usize, runs: &mut Vec<Vec<Option<ShardRun>>>| {
                let tasks = shard_tasks(s, runs);
                let mut scratch = self.pools[s].lock().pop().unwrap_or_default();
                let guard = self.shards[s].read();
                let produced =
                    run_shard_tasks(&self.app, &guard, requests, &idfs, &tasks, &mut scratch);
                drop(guard);
                self.pools[s].lock().push(scratch);
                for (r, run) in produced {
                    runs[r][s] = Some(run);
                }
            };
            run_inline(*inline, &mut runs);
            if !use_workers {
                for &s in pool_bound {
                    run_inline(s, &mut runs);
                }
            }
            if dispatched > 0 {
                // Drop the caller-held Sender first: if a worker dies
                // mid-job its clone drops with the job, the channel
                // disconnects, and recv fails loudly instead of
                // blocking this thread forever.
                let (reply_tx, reply_rx) = reply.take().expect("reply channel built");
                drop(reply_tx);
                for _ in 0..dispatched {
                    let (s, produced) = reply_rx.recv().expect("a shard worker panicked");
                    for (r, run) in produced {
                        runs[r][s] = Some(run);
                    }
                }
            }
            // Merge walk: fixes each request's emission order, or sends
            // truncated shards back for a full-k pass.
            let _merge_span = dash_obs::span!("dash_shard_merge_ns");
            for (r, request) in requests.iter().enumerate() {
                if orders[r].is_some() {
                    continue;
                }
                match merge_order(&runs[r], request.k) {
                    Ok(order) => orders[r] = Some(order),
                    Err(short) => {
                        for s in short {
                            limits[r][s] = request.k;
                            runs[r][s] = None;
                            if !pending.contains(&s) {
                                pending.push(s);
                            }
                        }
                    }
                }
            }
        }
        runs.into_iter()
            .zip(orders)
            .map(|(shard_runs, order)| {
                extract_hits(shard_runs, order.expect("every request merged"))
            })
            .collect()
    }

    /// Applies a record insertion: `db` must already contain the
    /// record. The sharded counterpart of
    /// [`DashEngine::apply_insert`](crate::DashEngine::apply_insert) —
    /// same delta pipeline, applied to the owning shards only.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_insert(
        &mut self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        let delta = self.record_delta(db, relation, record)?;
        Ok(self.apply_delta(delta))
    }

    /// Applies a record deletion: `db` must already have the record
    /// removed, while `record` is the deleted row (captured
    /// beforehand).
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_delete(
        &mut self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        let delta = self.record_delta(db, relation, record)?;
        Ok(self.apply_delta(delta))
    }

    /// Builds the delta for one base-table record change (find affected
    /// identifiers, recompute them) without applying it.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn record_delta(
        &self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<IndexDelta> {
        let ids = affected_fragment_ids(&self.app, db, relation, record)?;
        build_delta(&self.app, db, &ids)
    }

    /// Applies a prebuilt delta: every entry is routed to the shard
    /// owning its equality group, the affected shards apply their
    /// sub-deltas (first inline, the rest in parallel on the worker
    /// pool), and the global group-rank offsets + fragment count are
    /// refreshed incrementally — per-shard work plus an O(shards)
    /// prefix sum, never a rebuild. Post-update searches are
    /// byte-identical to a [`DashEngine`](crate::DashEngine) freshly
    /// built over the mutated fragment set.
    pub fn apply_delta(&mut self, delta: IndexDelta) -> RefreshStats {
        let range_position = self.app.query.range_selection_index();
        let mut per_shard: Vec<IndexDelta> = (0..self.shards.len())
            .map(|_| IndexDelta::default())
            .collect();
        for id in delta.removes {
            let shard = self.route(&group_key(&id, range_position));
            per_shard[shard].removes.push(id);
        }
        for fragment in delta.adds {
            let shard = self.route(&group_key(&fragment.id, range_position));
            per_shard[shard].adds.push(fragment);
        }
        let affected: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(s, _)| s)
            .collect();
        let mut stats = RefreshStats::default();
        if !affected.is_empty() {
            // First affected shard inline, the rest on their workers
            // (inline throughout on a single-core host, like search).
            let mut dispatched = 0usize;
            let (inline, pool_bound) = affected.split_first().expect("non-empty");
            let mut reply = None;
            if par::parallelism() > 1 {
                for &s in pool_bound {
                    let reply_tx = &reply.get_or_insert_with(mpsc::channel).0;
                    self.workers.send(
                        s,
                        ShardJob::Delta {
                            delta: std::mem::take(&mut per_shard[s]),
                            reply: reply_tx.clone(),
                        },
                    );
                    dispatched += 1;
                }
            }
            stats.merge(
                self.shards[*inline]
                    .write()
                    .index
                    .apply(&std::mem::take(&mut per_shard[*inline])),
            );
            for &s in pool_bound {
                // Anything not dispatched (single-core) applies inline.
                let sub = std::mem::take(&mut per_shard[s]);
                if !sub.is_empty() {
                    stats.merge(self.shards[s].write().index.apply(&sub));
                }
            }
            if dispatched > 0 {
                // As in search: drop the caller's Sender so a worker
                // panic disconnects the channel instead of hanging.
                let (reply_tx, reply_rx) = reply.take().expect("reply channel built");
                drop(reply_tx);
                for _ in 0..dispatched {
                    stats.merge(reply_rx.recv().expect("a shard worker panicked"));
                }
            }
            self.refresh_offsets();
        }
        stats
    }

    /// Applies a whole batch of record changes through one bulk delta
    /// (shadow joins batched per relation, one scoped re-crawl) — the
    /// sharded counterpart of
    /// [`DashEngine::apply_changes`](crate::DashEngine::apply_changes).
    /// `db` must already reflect every change.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_changes(
        &mut self,
        db: &Database,
        changes: &[RecordChange],
    ) -> Result<RefreshStats> {
        let delta = bulk_delta(&self.app, db, changes)?;
        Ok(self.apply_delta(delta))
    }

    /// A deep, independent copy of this engine: every shard's index is
    /// cloned (contiguous arenas — a memcpy, no re-derivation, no
    /// re-partitioning), the static routing table and group-rank
    /// offsets are carried over verbatim, and the copy gets its own
    /// scratch pools and worker pool. This is the serving layer's
    /// shadow: a snapshot-swapping front-end forks once at startup and
    /// thereafter keeps two sides in lockstep by applying every delta
    /// to each, so publication is an `Arc` pointer swap and searches
    /// never wait on maintenance.
    pub fn fork(&self) -> ShardedEngine {
        let shards: Vec<Arc<RwLock<Shard>>> = self
            .shards
            .iter()
            .map(|shard| {
                let guard = shard.read();
                Arc::new(RwLock::new(Shard {
                    index: guard.index.clone(),
                    group_offset: guard.group_offset,
                }))
            })
            .collect();
        let pools = shards.iter().map(|_| Mutex::new(Vec::new())).collect();
        let workers = WorkerPool::spawn(&shards, &self.app);
        ShardedEngine {
            app: Arc::clone(&self.app),
            shards,
            route_bounds: self.route_bounds.clone(),
            pools,
            workers,
            crawl_stats: self.crawl_stats.clone(),
            fragment_count: self.fragment_count,
        }
    }

    /// The equality-group keys currently holding at least one posting
    /// of any of `keywords` — the groups where a candidate page for
    /// those keywords can arise. A result cache keys its invalidation
    /// on exactly this set: a delta whose touched groups miss it (and
    /// whose keywords miss the request's) provably cannot change the
    /// result.
    pub fn keyword_groups(&self, keywords: &[String]) -> std::collections::BTreeSet<Vec<Value>> {
        let mut groups = std::collections::BTreeSet::new();
        for shard in &self.shards {
            let guard = shard.read();
            let mut seen: std::collections::HashSet<GroupId> = std::collections::HashSet::new();
            for word in keywords {
                let Some(kw) = guard.index.inverted.kw(word) else {
                    continue;
                };
                for posting in guard.index.inverted.postings_kw(kw) {
                    let Some(node) = guard.index.graph.locate(posting.frag) else {
                        continue;
                    };
                    if seen.insert(node.group) {
                        groups.insert(guard.index.graph.group_key(node.group).to_vec());
                    }
                }
            }
        }
        groups
    }

    /// The invalidation signature of `delta` against the engine's
    /// *current* state: the touched equality groups plus every keyword
    /// the delta adds **or removes** — the removed fragments' live
    /// terms are looked up in the owning shards before application
    /// (removes carry only identifiers). Compute this *before*
    /// [`ShardedEngine::apply_delta`]; afterwards the removed terms are
    /// gone.
    pub fn delta_signature(&self, delta: &IndexDelta) -> DeltaSignature {
        let range_position = self.app.query.range_selection_index();
        let mut signature = delta.signature(range_position);
        for id in &delta.removes {
            let shard = self.route(&group_key(id, range_position));
            let guard = self.shards[shard].read();
            if let Some(frag) = guard.index.catalog.frag(id) {
                for (word, _) in guard.index.inverted.fragment_terms(frag) {
                    signature.keywords.insert(word.to_string());
                }
            }
        }
        signature
    }

    /// The shard owning an equality-group key under the static routing
    /// table: the last shard whose lower bound does not exceed the key
    /// (the first routed shard also catches keys below every bound).
    fn route(&self, key: &[Value]) -> usize {
        if self.route_bounds.is_empty() {
            return 0;
        }
        let at = self
            .route_bounds
            .partition_point(|(bound, _)| bound.as_slice() <= key);
        self.route_bounds[at.max(1) - 1].1
    }

    /// Re-derives every shard's global group-rank offset and the total
    /// fragment count after maintenance — a prefix sum over per-shard
    /// group counts, O(shards).
    fn refresh_offsets(&mut self) {
        let mut group_offset = 0u32;
        let mut fragment_count = 0usize;
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.group_offset = group_offset;
            group_offset += guard.index.graph.group_count() as u32;
            fragment_count += guard.index.graph.node_count();
        }
        self.fragment_count = fragment_count;
    }

    /// Dumps every shard's live fragments, per shard, in group-rank +
    /// range order — the exact partition, ready for
    /// [`persist::write_sharded_fragments`] and
    /// [`IngestSource::ShardDumps`](crate::ingest::IngestSource). A maintained engine
    /// round-trips without re-partitioning (shard balance drifts with
    /// maintenance; re-partitioning would shuffle groups between
    /// shards).
    pub fn dump_shards(&self) -> Vec<Vec<Fragment>> {
        self.shards
            .iter()
            .map(|shard| {
                let guard = shard.read();
                let index = &guard.index;
                // One arena pass recovers every fragment's terms at
                // once — O(postings), not O(fragments × keywords).
                let mut terms = index.inverted.all_fragment_terms();
                let mut fragments = Vec::with_capacity(index.graph.node_count());
                for (_, frags) in index.graph.iter_groups() {
                    for &frag in frags {
                        fragments.push(Fragment::new(
                            index.catalog.id(frag).clone(),
                            terms.remove(&frag).unwrap_or_default(),
                            index.catalog.record_count(frag),
                        ));
                    }
                }
                fragments
            })
            .collect()
    }

    /// Serializes the engine as a v2 **arena image** (see
    /// [`crate::persist`] for the layout): every shard's catalog,
    /// posting arenas, list refs and graph columns as fixed-width
    /// little-endian arrays with per-section checksums. The image
    /// preserves the exact partition, so
    /// [`IngestSource::Image`](crate::IngestSource::Image) loads this engine back — drifted
    /// shard balance and all — by bulk-reading columns instead of
    /// re-running `build`.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_image<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let indexes: Vec<&FragmentIndex> = guards.iter().map(|g| &g.index).collect();
        persist::write_image(writer, self.app.query.range_selection_index(), &indexes)
    }

    /// Reconstructs an engine from a v2 arena image
    /// ([`ShardedEngine::write_image`] is the dump half) **without
    /// re-running an index build**: columns are bulk-read straight into
    /// the arenas and only the derived lookup maps are re-computed, one
    /// O(n) pass each. Searches on the loaded engine are byte-identical
    /// to the dumped one (`tests/scale_persist.rs` proves it
    /// property-style); the replication SNAPSHOT path bootstraps
    /// replicas through exactly this loader. Returns
    /// [`CoreError::Internal`] when the image is torn, corrupted (every
    /// section is checksummed — any single-bit flip is detected), from
    /// a different format/version, or was dumped for an application
    /// with a different range-selection position.
    pub(crate) fn from_image_impl(
        app: WebApplication,
        bytes: &[u8],
        crawl_stats: WorkflowStats,
    ) -> Result<Self> {
        validate_query(&app)?;
        let (range_position, indexes) =
            persist::read_image(bytes).map_err(|e| CoreError::Internal {
                detail: format!("arena image: {e}"),
            })?;
        let expected = app.query.range_selection_index();
        if range_position != expected {
            return Err(CoreError::Internal {
                detail: format!(
                    "arena image was dumped with range position {range_position:?}, \
                     but the application expects {expected:?}"
                ),
            });
        }
        Self::assemble(app, indexes, expected, crawl_stats)
    }

    /// Builds a sharded engine from per-shard fragment batches consumed
    /// **one at a time** — the bounded-memory engine half of
    /// [`IngestSource::Batches`](crate::ingest::IngestSource) for
    /// generated corpora: each batch is indexed and dropped before the
    /// next is pulled from the iterator, so peak memory holds one
    /// shard's fragments plus the built indexes, never the whole
    /// corpus. The partition is taken exactly as given (batches must be
    /// contiguous, disjoint runs of group-key order, like
    /// [`ShardedEngine::from_shard_fragments_impl`]).
    pub(crate) fn from_batches_impl<I>(
        app: WebApplication,
        batches: I,
        crawl_stats: WorkflowStats,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<Fragment>>,
    {
        validate_query(&app)?;
        let range_position = app.query.range_selection_index();
        let mut indexes = Vec::new();
        for batch in batches {
            indexes.push(FragmentIndex::build(&batch, range_position)?);
        }
        Self::assemble(app, indexes, range_position, crawl_stats)
    }

    /// The analyzed application this engine serves.
    pub fn app(&self) -> &WebApplication {
        &self.app
    }

    /// Number of shards the handle space is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed fragments across all shards.
    pub fn fragment_count(&self) -> usize {
        self.fragment_count
    }

    /// Per-shard fragment counts (the partition balance).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().index.fragment_count())
            .collect()
    }

    /// Statistics of the crawl workflow that fed this engine.
    pub fn crawl_stats(&self) -> &WorkflowStats {
        &self.crawl_stats
    }

    /// Global `IDF_w = 1 / |L_w|` over all shards: every fragment lives
    /// in exactly one shard, so the global fragment frequency is the
    /// sum of the shards' local ones. (`search_many` computes the same
    /// quantity over one set of read guards; this entry point serves
    /// the unit tests.)
    #[cfg(test)]
    fn global_idf(&self, word: &str) -> f64 {
        let df: usize = self
            .shards
            .iter()
            .map(|s| s.read().index.inverted.df(word))
            .sum();
        if df == 0 {
            0.0
        } else {
            1.0 / df as f64
        }
    }
}

/// One shard's slice of the input: its fragments, borrowed (input order
/// preserved within groups — nothing is cloned until interning).
struct Part<'a> {
    fragments: Vec<&'a Fragment>,
}

/// Splits fragments into `shards` contiguous runs of group-key rank,
/// balancing by fragment count (a group is never split — group-local
/// candidate evolution is the unit of equivalence). Zero-copy: parts
/// borrow the input fragments.
fn partition(
    fragments: &[Fragment],
    range_position: Option<usize>,
    shards: usize,
) -> Vec<Part<'_>> {
    // Group key → member fragment indices, in key order (BTreeMap) with
    // input order preserved within each group.
    let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, f) in fragments.iter().enumerate() {
        // The graph's own key derivation — partition order must stay in
        // lockstep with `FragmentGraph`'s grouping.
        let key = group_key(&f.id, range_position);
        groups.entry(key).or_default().push(i);
    }
    let total = fragments.len().max(1);
    let mut parts: Vec<Part<'_>> = (0..shards)
        .map(|_| Part {
            fragments: Vec::new(),
        })
        .collect();
    let mut assigned = 0usize;
    for members in groups.values() {
        // Contiguous, monotone assignment: the group's shard is chosen
        // by how much of the fragment mass precedes it.
        let shard = (assigned * shards / total).min(shards - 1);
        for &i in members {
            parts[shard].fragments.push(&fragments[i]);
        }
        assigned += members.len();
    }
    parts
}

/// One shard's answer to one request: its hits, its pop trace, and
/// whether the run stopped at its emission limit.
#[derive(Debug)]
struct ShardRun {
    hits: Vec<SearchHit>,
    trace: PopTrace,
    truncated: bool,
}

/// The optimistic first-pass emission limit per shard: the global top-k
/// rarely takes much more than `k / N` hits from one shard, and a
/// wrong guess only costs that shard a second (full-`k`) run.
fn initial_limit(k: usize, shards: usize) -> usize {
    if shards <= 1 || k == 0 {
        return k;
    }
    (k.div_ceil(shards) + 2).min(k)
}

/// Replays the global heap order over per-shard pop traces: repeatedly
/// advance the shard whose next pop ranks highest (the exact candidate
/// ordering), invoking `on_emit(shard)` for every emitted pop, until
/// `k` emissions or every trace drains. Returns the shards whose
/// *limit-truncated* traces drained before `k` emissions — the true
/// heap would process pops past their limits, so they must re-run
/// deeper; an empty list means the walk is the exact global order.
fn walk_merged_pops<F: FnMut(usize)>(
    traces: &[&PopTrace],
    truncated: &[bool],
    k: usize,
    mut on_emit: F,
) -> Vec<usize> {
    let mut cursors = vec![0usize; traces.len()];
    let mut emitted = 0usize;
    while emitted < k {
        let mut best: Option<(usize, PopEvent)> = None;
        for (s, trace) in traces.iter().enumerate() {
            if let Some(&event) = trace.get(cursors[s]) {
                if best.is_none_or(|(_, b)| event.heap_cmp(&b) == std::cmp::Ordering::Greater) {
                    best = Some((s, event));
                }
            }
        }
        let Some((s, event)) = best else {
            // Every trace drained short of k: any truncated shard may be
            // hiding higher-ranked pops beyond its limit.
            return (0..traces.len()).filter(|&s| truncated[s]).collect();
        };
        cursors[s] += 1;
        if event.emitted {
            emitted += 1;
            on_emit(s);
        }
        if cursors[s] == traces[s].len() && truncated[s] && emitted < k {
            return vec![s];
        }
    }
    Vec::new()
}

/// One merge walk per request: `Ok` carries the global emission order
/// (shard index per emitted hit, ready for [`extract_hits`]); `Err`
/// carries the shards that must re-run deeper first.
fn merge_order(runs: &[Option<ShardRun>], k: usize) -> std::result::Result<Vec<usize>, Vec<usize>> {
    let traces: Vec<&PopTrace> = runs
        .iter()
        .map(|run| &run.as_ref().expect("shard run present").trace)
        .collect();
    let truncated: Vec<bool> = runs
        .iter()
        .map(|run| run.as_ref().expect("shard run present").truncated)
        .collect();
    let mut order = Vec::new();
    let shortfall = walk_merged_pops(&traces, &truncated, k, |s| order.push(s));
    if shortfall.is_empty() {
        Ok(order)
    } else {
        Err(shortfall)
    }
}

/// Moves hits out of the shard runs in the emission order a successful
/// [`merge_order`] walk fixed — no hit is cloned, no trace re-walked.
fn extract_hits(runs: Vec<Option<ShardRun>>, order: Vec<usize>) -> Vec<SearchHit> {
    let mut hits: Vec<std::vec::IntoIter<SearchHit>> = runs
        .into_iter()
        .map(|run| run.expect("shard run present").hits.into_iter())
        .collect();
    order
        .into_iter()
        .map(|s| hits[s].next().expect("a hit per emitted pop"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DashEngine;
    use dash_webapp::fooddb;

    fn fooddb_parts() -> (WebApplication, Database) {
        (fooddb::search_application().unwrap(), fooddb::database())
    }

    /// Crawl-and-build through the builder front door.
    fn built(app: &WebApplication, db: &Database, shards: usize) -> Result<ShardedEngine> {
        let config = DashConfig::default();
        ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(crate::ingest::IngestSource::Crawl {
                db,
                config: &config,
            })
            .build()
    }

    #[test]
    fn matches_single_engine_on_running_example() {
        let (app, db) = fooddb_parts();
        let single = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        for shards in 1..=4 {
            let sharded = built(&app, &db, shards).unwrap();
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.fragment_count(), single.fragment_count());
            for (keywords, k, s) in [
                (vec!["burger"], 2, 20),
                (vec!["burger"], 10, 1),
                (vec!["burger", "fries"], 5, 1),
                (vec!["american"], 10, 1),
                (vec!["zzz"], 3, 10),
            ] {
                let req = SearchRequest::new(&keywords).k(k).min_size(s);
                assert_eq!(
                    sharded.search(&req),
                    single.search(&req),
                    "shards={shards} keywords={keywords:?} k={k} s={s}"
                );
            }
        }
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let (app, db) = fooddb_parts();
        let crawl = crawl::run(&app, &db, &Default::default(), Default::default()).unwrap();
        let parts = partition(&crawl.fragments, app.query.range_selection_index(), 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.fragments.len()).sum();
        assert_eq!(total, crawl.fragments.len());
        // A group is never split across parts: counting distinct group
        // keys part by part equals counting them globally.
        let rp = app.query.range_selection_index();
        let groups: usize = parts
            .iter()
            .map(|p| {
                p.fragments
                    .iter()
                    .map(|f| group_key(&f.id, rp))
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            })
            .sum();
        assert_eq!(groups, 2); // American + Thai
    }

    #[test]
    fn search_many_matches_search() {
        let (app, db) = fooddb_parts();
        let sharded = built(&app, &db, 2).unwrap();
        let requests = vec![
            SearchRequest::new(&["burger"]).k(2).min_size(20),
            SearchRequest::new(&["fries"]).k(3).min_size(1),
            SearchRequest::new(&["burger", "thai"]).k(4).min_size(5),
        ];
        let batch = sharded.search_many(&requests);
        assert_eq!(batch.len(), requests.len());
        for (request, batch_hits) in requests.iter().zip(&batch) {
            assert_eq!(batch_hits, &sharded.search(request));
        }
        assert!(sharded.search_many(&[]).is_empty());
    }

    #[test]
    fn more_shards_than_groups_still_works() {
        let (app, db) = fooddb_parts();
        let single = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        // fooddb has 2 equality groups; ask for 8 shards (most empty).
        let sharded = built(&app, &db, 8).unwrap();
        let req = SearchRequest::new(&["burger"]).k(10).min_size(1);
        assert_eq!(sharded.search(&req), single.search(&req));
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn shard_setting_parses() {
        // The parser alone — mutating the process environment races
        // other test threads' getenv calls.
        assert_eq!(parse_shards("4"), Some(4));
        assert_eq!(parse_shards(" 2 "), Some(2));
        assert_eq!(parse_shards("0"), None);
        assert_eq!(parse_shards("nope"), None);
        assert_eq!(parse_shards(""), None);
    }

    #[test]
    fn routing_is_static_and_contiguous() {
        let (app, db) = fooddb_parts();
        // 2 groups (American, Thai) over 2 shards: American → 0, Thai → 1.
        let engine = built(&app, &db, 2).unwrap();
        assert_eq!(engine.route(&[Value::str("American")]), 0);
        assert_eq!(engine.route(&[Value::str("Thai")]), 1);
        // Keys outside the built ranges route to the nearest run:
        // below-all to the first routed shard, between/above to the
        // last bound not exceeding them.
        assert_eq!(engine.route(&[Value::str("Aaa")]), 0);
        assert_eq!(engine.route(&[Value::str("Mexican")]), 0);
        assert_eq!(engine.route(&[Value::str("Zulu")]), 1);
    }

    #[test]
    fn incremental_insert_touches_one_shard_only() {
        let (app, db) = fooddb_parts();
        let mut engine = built(&app, &db, 2).unwrap();
        let sizes = engine.shard_sizes();
        // A new (Zulu, 30) fragment routes past every bound → last shard.
        let fragment = Fragment::new(
            crate::fragment::FragmentId::new(vec![Value::str("Zulu"), Value::Int(30)]),
            [("zebra".to_string(), 2u64)].into_iter().collect(),
            1,
        );
        let stats = engine.apply_delta(IndexDelta::adding(vec![fragment]));
        assert_eq!((stats.removed, stats.added), (0, 1));
        let after = engine.shard_sizes();
        assert_eq!(after[0], sizes[0]);
        assert_eq!(after[1], sizes[1] + 1);
        assert_eq!(engine.fragment_count(), sizes.iter().sum::<usize>() + 1);
        let hits = engine.search(&SearchRequest::new(&["zebra"]).k(1).min_size(1));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].url.contains("c=Zulu"), "got {}", hits[0].url);
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let (app, db) = fooddb_parts();
        let mut engine = built(&app, &db, 3).unwrap();
        let before = engine.shard_sizes();
        let stats = engine.apply_delta(IndexDelta::default());
        assert_eq!(stats, RefreshStats::default());
        assert_eq!(engine.shard_sizes(), before);
    }

    #[test]
    fn empty_dump_loads_as_one_empty_shard() {
        // A hand-made empty dump must not produce a zero-shard engine
        // (which could answer nothing); it clamps to one empty shard
        // that searches cleanly and accepts deltas.
        let (app, _) = fooddb_parts();
        let mut engine = ShardedEngine::builder(app)
            .source(crate::ingest::IngestSource::ShardDumps(&[]))
            .build()
            .unwrap();
        assert_eq!(engine.shard_count(), 1);
        assert!(engine
            .search(&SearchRequest::new(&["anything"]).k(3).min_size(1))
            .is_empty());
        let fragment = Fragment::new(
            crate::fragment::FragmentId::new(vec![Value::str("Nordic"), Value::Int(5)]),
            [("herring".to_string(), 1u64)].into_iter().collect(),
            1,
        );
        engine.apply_delta(IndexDelta::adding(vec![fragment]));
        assert_eq!(
            engine
                .search(&SearchRequest::new(&["herring"]).k(1).min_size(1))
                .len(),
            1
        );
    }

    #[test]
    fn empty_engine_accepts_deltas() {
        // No fragments at build: the routing table is empty, so every
        // delta lands in shard 0 and the other shards stay empty.
        let (app, _) = fooddb_parts();
        let mut engine = ShardedEngine::builder(app.clone())
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(engine.fragment_count(), 0);
        let fragments: Vec<Fragment> = [("American", 9i64), ("Thai", 10), ("Cajun", 7)]
            .iter()
            .map(|&(cuisine, budget)| {
                Fragment::new(
                    crate::fragment::FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
                    [("gumbo".to_string(), 1u64)].into_iter().collect(),
                    1,
                )
            })
            .collect();
        engine.apply_delta(IndexDelta::adding(fragments.clone()));
        assert_eq!(engine.shard_sizes(), vec![3, 0, 0]);
        let single =
            crate::engine::DashEngine::from_fragments(app, &fragments, WorkflowStats::new())
                .unwrap();
        let req = SearchRequest::new(&["gumbo"]).k(5).min_size(1);
        assert_eq!(engine.search(&req), single.search(&req));
    }

    #[test]
    fn arena_image_roundtrips_engine() {
        let (app, db) = fooddb_parts();
        let mut engine = built(&app, &db, 2).unwrap();
        // Drift the balance so the roundtrip must preserve the exact
        // (non-rebalanced) partition.
        let fragment = Fragment::new(
            crate::fragment::FragmentId::new(vec![Value::str("Zulu"), Value::Int(30)]),
            [("zebra".to_string(), 2u64)].into_iter().collect(),
            1,
        );
        engine.apply_delta(IndexDelta::adding(vec![fragment]));
        let mut image = Vec::new();
        engine.write_image(&mut image).unwrap();
        let loaded = ShardedEngine::builder(app.clone())
            .source(crate::ingest::IngestSource::Image(&image))
            .build()
            .unwrap();
        assert_eq!(loaded.shard_sizes(), engine.shard_sizes());
        for keywords in [vec!["burger"], vec!["zebra"], vec!["burger", "fries"]] {
            let req = SearchRequest::new(&keywords).k(10).min_size(1);
            assert_eq!(loaded.search(&req), engine.search(&req), "{keywords:?}");
        }
        // A flipped byte anywhere must be rejected, not loaded.
        let mut torn = image.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x10;
        assert!(ShardedEngine::builder(app)
            .source(crate::ingest::IngestSource::Image(&torn))
            .build()
            .is_err());
    }

    #[test]
    fn shard_batches_match_shard_fragments() {
        let (app, db) = fooddb_parts();
        let engine = built(&app, &db, 2).unwrap();
        let shards = engine.dump_shards();
        let batched = ShardedEngine::builder(app.clone())
            .source(crate::ingest::IngestSource::Batches(Box::new(
                shards.clone().into_iter(),
            )))
            .build()
            .unwrap();
        let listed = ShardedEngine::builder(app)
            .source(crate::ingest::IngestSource::ShardDumps(&shards))
            .build()
            .unwrap();
        assert_eq!(batched.shard_sizes(), listed.shard_sizes());
        let req = SearchRequest::new(&["burger"]).k(10).min_size(1);
        assert_eq!(batched.search(&req), listed.search(&req));
    }

    #[test]
    fn global_idf_survives_maintenance() {
        let (app, db) = fooddb_parts();
        let mut engine = built(&app, &db, 2).unwrap();
        let before = engine.global_idf("burger");
        assert!(before > 0.0);
        let fragment = Fragment::new(
            crate::fragment::FragmentId::new(vec![Value::str("Zulu"), Value::Int(30)]),
            [("burger".to_string(), 1u64)].into_iter().collect(),
            1,
        );
        engine.apply_delta(IndexDelta::adding(vec![fragment]));
        let after = engine.global_idf("burger");
        assert!(after < before, "df grew, idf must shrink");
    }
}
