//! Wire (de)serialization of the maintenance vocabulary — the codec a
//! distributed DASH deployment ships between nodes.
//!
//! PRs 3–4 funneled every mutation through one abstraction: an
//! [`IndexDelta`] (stale identifiers out, fresh fragments in), its
//! [`DeltaSignature`] (what the delta can perturb — the cache
//! invalidation key), and the [`RecordChange`] batches the bulk write
//! path turns into deltas. Those three types are exactly what a
//! primary streams to its replicas and what an update client POSTs to
//! a server, so they get a first-class binary codec here, sharing the
//! length-prefixed record/value encoding of [`persist`](crate::persist)
//! (same `u64`/string/`Value` primitives, so a sharded dump and a
//! delta stream interleave on one socket without codec switching).
//!
//! The format is self-contained and versioned by construction — every
//! list is length-prefixed, every value tagged — and **canonical**:
//! encoding is a pure function of the in-memory value, so
//! encode→decode→encode produces identical bytes (the
//! `wire_roundtrip` test tier proves decode∘encode is the identity
//! over generated deltas, signatures and change batches).
//!
//! Framing (length prefixes, epoch stamps, frame tags) is the
//! transport's business — see `dash-net` — not this module's: these
//! functions encode one value each, reading exactly the bytes they
//! wrote.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};

use dash_relation::Record;

use crate::fragment::FragmentId;
use crate::persist::{
    invalid, read_fragment_list, read_str, read_u64, read_value, write_fragment_list, write_str,
    write_u64, write_value,
};
use crate::update::{DeltaSignature, IndexDelta, RecordChange};

/// Serializes one [`IndexDelta`]: the remove list (identifiers) then
/// the add list (fragments), both length-prefixed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_delta<W: Write>(mut writer: W, delta: &IndexDelta) -> io::Result<()> {
    write_u64(&mut writer, delta.removes.len() as u64)?;
    for id in &delta.removes {
        write_fragment_id(&mut writer, id)?;
    }
    write_fragment_list(&mut writer, &delta.adds)
}

/// Deserializes one [`IndexDelta`] written by [`write_delta`].
///
/// # Errors
///
/// Returns `InvalidData` on unknown value tags, malformed UTF-8 or
/// out-of-bounds lengths, and propagates underlying I/O errors
/// (including `UnexpectedEof` on truncation).
pub fn read_delta<R: Read>(mut reader: R) -> io::Result<IndexDelta> {
    let count = read_u64(&mut reader)?;
    if count > (1 << 32) {
        return Err(invalid("delta remove count out of bounds"));
    }
    let mut removes = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        removes.push(read_fragment_id(&mut reader)?);
    }
    let adds = read_fragment_list(&mut reader)?;
    Ok(IndexDelta { removes, adds })
}

/// Serializes one [`DeltaSignature`]: the touched group keys then the
/// touched keywords.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_signature<W: Write>(mut writer: W, signature: &DeltaSignature) -> io::Result<()> {
    write_u64(&mut writer, signature.groups.len() as u64)?;
    for group in &signature.groups {
        write_u64(&mut writer, group.len() as u64)?;
        for value in group {
            write_value(&mut writer, value)?;
        }
    }
    write_u64(&mut writer, signature.keywords.len() as u64)?;
    for keyword in &signature.keywords {
        write_str(&mut writer, keyword)?;
    }
    Ok(())
}

/// Deserializes one [`DeltaSignature`] written by [`write_signature`].
///
/// # Errors
///
/// Same classes as [`read_delta`].
pub fn read_signature<R: Read>(mut reader: R) -> io::Result<DeltaSignature> {
    let group_count = read_u64(&mut reader)?;
    if group_count > (1 << 32) {
        return Err(invalid("signature group count out of bounds"));
    }
    let mut groups = BTreeSet::new();
    for _ in 0..group_count {
        let arity = read_u64(&mut reader)?;
        if arity > 64 {
            return Err(invalid("signature group arity out of bounds"));
        }
        let mut key = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            key.push(read_value(&mut reader)?);
        }
        groups.insert(key);
    }
    let keyword_count = read_u64(&mut reader)?;
    if keyword_count > (1 << 32) {
        return Err(invalid("signature keyword count out of bounds"));
    }
    let mut keywords = BTreeSet::new();
    for _ in 0..keyword_count {
        keywords.insert(read_str(&mut reader)?);
    }
    Ok(DeltaSignature { groups, keywords })
}

/// Serializes one [`RecordChange`]: the relation name then the
/// record's values.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_change<W: Write>(mut writer: W, change: &RecordChange) -> io::Result<()> {
    write_str(&mut writer, &change.relation)?;
    write_u64(&mut writer, change.record.values().len() as u64)?;
    for value in change.record.values() {
        write_value(&mut writer, value)?;
    }
    Ok(())
}

/// Deserializes one [`RecordChange`] written by [`write_change`].
///
/// # Errors
///
/// Same classes as [`read_delta`].
pub fn read_change<R: Read>(mut reader: R) -> io::Result<RecordChange> {
    let relation = read_str(&mut reader)?;
    let arity = read_u64(&mut reader)?;
    if arity > (1 << 16) {
        return Err(invalid("record arity out of bounds"));
    }
    let mut values = Vec::with_capacity(arity as usize);
    for _ in 0..arity {
        values.push(read_value(&mut reader)?);
    }
    Ok(RecordChange::new(relation, Record::new(values)))
}

/// Serializes a length-prefixed [`RecordChange`] batch.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_changes<W: Write>(mut writer: W, changes: &[RecordChange]) -> io::Result<()> {
    write_u64(&mut writer, changes.len() as u64)?;
    for change in changes {
        write_change(&mut writer, change)?;
    }
    Ok(())
}

/// Deserializes a [`RecordChange`] batch written by [`write_changes`].
///
/// # Errors
///
/// Same classes as [`read_delta`].
pub fn read_changes<R: Read>(mut reader: R) -> io::Result<Vec<RecordChange>> {
    let count = read_u64(&mut reader)?;
    if count > (1 << 32) {
        return Err(invalid("change count out of bounds"));
    }
    (0..count).map(|_| read_change(&mut reader)).collect()
}

fn write_fragment_id<W: Write>(writer: &mut W, id: &FragmentId) -> io::Result<()> {
    write_u64(writer, id.values().len() as u64)?;
    for value in id.values() {
        write_value(writer, value)?;
    }
    Ok(())
}

fn read_fragment_id<R: Read>(reader: &mut R) -> io::Result<FragmentId> {
    let arity = read_u64(reader)?;
    if arity > 64 {
        return Err(invalid("fragment identifier arity out of bounds"));
    }
    let mut values = Vec::with_capacity(arity as usize);
    for _ in 0..arity {
        values.push(read_value(reader)?);
    }
    Ok(FragmentId::new(values))
}

/// Convenience: encodes a delta into a fresh byte buffer.
pub fn encode_delta(delta: &IndexDelta) -> Vec<u8> {
    let mut buf = Vec::new();
    write_delta(&mut buf, delta).expect("Vec<u8> writes are infallible");
    buf
}

/// Convenience: encodes a signature into a fresh byte buffer.
pub fn encode_signature(signature: &DeltaSignature) -> Vec<u8> {
    let mut buf = Vec::new();
    write_signature(&mut buf, signature).expect("Vec<u8> writes are infallible");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use dash_relation::{Date, Decimal, Value};

    fn sample_delta() -> IndexDelta {
        IndexDelta::new(
            vec![
                FragmentId::new(vec![Value::str("Thai"), Value::Int(10)]),
                FragmentId::new(vec![Value::Null, Value::Date(Date::new(2012, 6, 18))]),
            ],
            vec![Fragment::new(
                FragmentId::new(vec![
                    Value::str("American"),
                    Value::Decimal(Decimal::from_cents(1250)),
                ]),
                [("waffle".to_string(), 2u64), ("syrup".to_string(), 7)]
                    .into_iter()
                    .collect(),
                3,
            )],
        )
    }

    #[test]
    fn delta_roundtrips() {
        let delta = sample_delta();
        let bytes = encode_delta(&delta);
        assert_eq!(read_delta(bytes.as_slice()).unwrap(), delta);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(encode_delta(&read_delta(bytes.as_slice()).unwrap()), bytes);
    }

    #[test]
    fn signature_roundtrips() {
        let signature = sample_delta().signature(Some(1));
        let bytes = encode_signature(&signature);
        assert_eq!(read_signature(bytes.as_slice()).unwrap(), signature);
    }

    #[test]
    fn change_batch_roundtrips() {
        let changes = vec![
            RecordChange::new(
                "restaurant",
                Record::new(vec![
                    Value::Int(8),
                    Value::str("Sushi Go"),
                    Value::str("Japanese"),
                    Value::Int(25),
                    Value::str("4.9"),
                ]),
            ),
            RecordChange::new("comment", Record::new(vec![Value::Null])),
        ];
        let mut buf = Vec::new();
        write_changes(&mut buf, &changes).unwrap();
        assert_eq!(read_changes(buf.as_slice()).unwrap(), changes);
    }

    #[test]
    fn truncated_bytes_error_cleanly() {
        let bytes = encode_delta(&sample_delta());
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(read_delta(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_delta_is_sixteen_bytes() {
        // Two zero-length prefixes — the steady-state heartbeat cost.
        assert_eq!(encode_delta(&IndexDelta::default()).len(), 16);
    }
}
