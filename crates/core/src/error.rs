//! Error type for the Dash core.

use std::fmt;

use dash_relation::RelationError;
use dash_webapp::WebAppError;

/// Errors from crawling, indexing and search.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A relational failure in a crawl or refresh.
    Relation(RelationError),
    /// A web-application failure (analysis, query strings, execution).
    WebApp(WebAppError),
    /// The application query's shape is outside what the engine supports
    /// (e.g. more than one range-bound selection attribute).
    UnsupportedQuery {
        /// What is unsupported.
        detail: String,
    },
    /// An internal invariant was violated (always a bug; surfaced as an
    /// error instead of a panic so long crawls fail soft).
    Internal {
        /// Description of the broken invariant.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relation(e) => write!(f, "relational error: {e}"),
            CoreError::WebApp(e) => write!(f, "web application error: {e}"),
            CoreError::UnsupportedQuery { detail } => {
                write!(f, "unsupported application query: {detail}")
            }
            CoreError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relation(e) => Some(e),
            CoreError::WebApp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        CoreError::Relation(e)
    }
}

impl From<WebAppError> for CoreError {
    fn from(e: WebAppError) -> Self {
        CoreError::WebApp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e: CoreError = RelationError::UnknownRelation {
            relation: "r".into(),
        }
        .into();
        assert!(e.to_string().contains("unknown relation"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::UnsupportedQuery {
            detail: "two ranges".into(),
        };
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CoreError>();
    }
}
