//! The fragment graph (Section VI-A of the paper), columnar.
//!
//! Every node is one fragment, weighted by its total keyword count
//! (Example 6: node `(American, 9)` has weight 8). An edge connects two
//! fragments when they can combine into a db-page containing no other
//! fragment — i.e. they agree on every equality-bound selection
//! attribute and are **adjacent** in the sorted domain of the
//! range-bound attribute. Fragments with different equality values
//! (e.g. `(Thai, 10)` among American fragments) stay disconnected,
//! exactly as in Figure 9.
//!
//! Storage is handle-native and **group-major**: each equality group
//! owns one contiguous node column of [`Frag`] handles (plus a parallel
//! weight column the top-k expansion reads), range-sorted. Group ids
//! ([`GroupId`]) are dense ranks in group-key order — maintained across
//! incremental inserts — so a candidate db-page is just
//! `(group, lo, hi)`, three integers, and the rank order doubles as the
//! deterministic tie-break order of the top-k heap. A `node_pos` column
//! indexed by fragment handle makes [`FragmentGraph::locate`] O(1)
//! (this sits on the hot path of every top-k seed). Adjacency stays
//! implicit in the order, which makes both bulk construction ("a lot of
//! comparisons can be saved if db-fragments are pre-sorted", §VI-A) and
//! the paper's incremental insertion cheap: an insert splices one
//! *group's* column (the seed semantics), never a flat global column —
//! the flat layout of PR 1 made every insert shift the entire node
//! space, which is what regressed `graph/incremental-insert`.
//!
//! Group-major columns are also the unit the sharded engine partitions:
//! a shard is a contiguous run of group ranks, so a shard-local rank
//! plus the shard's offset reproduces the global rank exactly (see
//! `crate::sharded`).

use std::collections::HashMap;
use std::time::Instant;

use dash_relation::Value;

use crate::error::CoreError;
use crate::fragment::{Fragment, FragmentId};
use crate::index::catalog::{Frag, FragmentCatalog};
use crate::par;
use crate::Result;

/// A dense equality-group handle: the group's rank in key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The handle as a column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node's address: its equality group and offset within the group's
/// range-sorted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef {
    /// The equality group.
    pub group: GroupId,
    /// Index within the group's sorted node run.
    pub position: u32,
}

/// Sentinel in `node_pos` for handles without a live node.
const ABSENT: (u32, u32) = (u32::MAX, u32::MAX);

/// One equality group's columns: its key and its range-sorted node and
/// weight runs (parallel, contiguous).
#[derive(Debug, Clone, Default)]
struct GroupColumn {
    /// The equality prefix (identifier minus the range position),
    /// resolved only at the output boundary.
    key: Vec<Value>,
    /// Node run: fragment handles, range-sorted.
    frags: Vec<Frag>,
    /// Parallel weight run (total keywords per node).
    weights: Vec<u64>,
}

/// The fragment graph.
///
/// Group columns live in stable *slots* (allocation order); a rank ⇄
/// slot permutation maintains the key-sorted [`GroupId`] rank order.
/// Creating or dropping a group therefore only splices the (tiny)
/// permutation — `node_pos`, which is `(slot, position)`, never needs a
/// global renumber, keeping incremental maintenance O(|group|).
#[derive(Debug, Clone, Default)]
pub struct FragmentGraph {
    /// Position of the range attribute within fragment identifiers;
    /// `None` for all-equality queries (no edges at all).
    range_position: Option<usize>,
    /// Group columns, indexed by slot (free-listed tombstones allowed).
    groups: Vec<GroupColumn>,
    /// Key rank → slot, sorted by group key — the rank is the
    /// [`GroupId`].
    slot_of_rank: Vec<u32>,
    /// Slot → key rank (`u32::MAX` for dead slots).
    rank_of_slot: Vec<u32>,
    /// Dead slots available for reuse.
    free_slots: Vec<u32>,
    /// Fragment handle → `(slot, position)`; `ABSENT` when the handle
    /// has no live node.
    node_pos: Vec<(u32, u32)>,
    /// Total live nodes across all groups.
    nodes: usize,
    /// Wall-clock seconds the last bulk build took (Table IV reports
    /// this).
    build_secs: f64,
}

impl FragmentGraph {
    /// Bulk-builds the graph: splits fragments into equality groups and
    /// range-sorts each group independently (in parallel); pre-sorted
    /// input is detected and skips the per-group sorts (the paper's
    /// comparison-saving strategy).
    ///
    /// Every fragment must already be interned in `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Internal`] when `range_position` is out of
    /// bounds for some fragment identifier.
    pub fn build(
        catalog: &FragmentCatalog,
        fragments: &[Fragment],
        range_position: Option<usize>,
    ) -> Result<Self> {
        let refs: Vec<&Fragment> = fragments.iter().collect();
        Self::build_refs(catalog, &refs, range_position)
    }

    /// [`FragmentGraph::build`] over borrowed fragments — the zero-copy
    /// path shard construction uses.
    ///
    /// # Errors
    ///
    /// Same as [`FragmentGraph::build`].
    pub fn build_refs(
        catalog: &FragmentCatalog,
        fragments: &[&Fragment],
        range_position: Option<usize>,
    ) -> Result<Self> {
        let start = Instant::now();
        if let Some(pos) = range_position {
            for f in fragments {
                if pos >= f.id.values().len() {
                    return Err(CoreError::Internal {
                        detail: format!("range position {pos} out of bounds for fragment {}", f.id),
                    });
                }
            }
        }
        // Group fragments by equality prefix without materializing keys:
        // the map is keyed by a borrowed view of the identifier minus
        // the range position.
        let mut group_of: HashMap<KeyRef<'_>, u32> = HashMap::new();
        let mut members: Vec<Vec<Frag>> = Vec::new();
        for f in fragments {
            let frag = catalog.frag(&f.id).expect("fragment interned in catalog");
            let key = KeyRef {
                id: &f.id,
                skip: range_position,
            };
            let g = *group_of.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                (members.len() - 1) as u32
            });
            members[g as usize].push(frag);
        }
        // Rank groups by key order (the seed's BTreeMap order).
        let mut order: Vec<u32> = (0..members.len() as u32).collect();
        let key_views: Vec<KeyRef<'_>> = {
            let mut views: Vec<Option<KeyRef<'_>>> = vec![None; members.len()];
            for (key, &g) in &group_of {
                views[g as usize] = Some(*key);
            }
            views
                .into_iter()
                .map(|v| v.expect("every group keyed"))
                .collect()
        };
        order.sort_unstable_by(|&a, &b| key_views[a as usize].cmp(&key_views[b as usize]));
        // Range-sort each group's members (skipped when already sorted).
        if let Some(pos) = range_position {
            let range_value = |frag: Frag| -> &Value { &catalog.id(frag).values()[pos] };
            par::for_each(
                members.iter_mut().filter(|m| m.len() > 1).collect(),
                |group: &mut Vec<Frag>| {
                    if group
                        .windows(2)
                        .any(|w| range_value(w[0]) > range_value(w[1]))
                    {
                        group.sort_by(|&a, &b| range_value(a).cmp(range_value(b)));
                    }
                },
            );
        }
        // Assemble group columns in group-rank order (slot == rank for a
        // bulk build; the permutation starts as the identity).
        let mut graph = FragmentGraph {
            range_position,
            groups: Vec::with_capacity(members.len()),
            slot_of_rank: (0..members.len() as u32).collect(),
            rank_of_slot: (0..members.len() as u32).collect(),
            free_slots: Vec::new(),
            node_pos: vec![ABSENT; catalog.len()],
            nodes: fragments.len(),
            build_secs: 0.0,
        };
        for &g in &order {
            let frags = std::mem::take(&mut members[g as usize]);
            let slot = graph.groups.len() as u32;
            let mut weights = Vec::with_capacity(frags.len());
            for (pos, &frag) in frags.iter().enumerate() {
                graph.node_pos[frag.index()] = (slot, pos as u32);
                weights.push(catalog.total_keywords(frag));
            }
            graph.groups.push(GroupColumn {
                key: key_views[g as usize].to_owned_key(),
                frags,
                weights,
            });
        }
        graph.build_secs = start.elapsed().as_secs_f64();
        Ok(graph)
    }

    /// The slot backing a group rank.
    #[inline]
    fn slot(&self, group: GroupId) -> usize {
        self.slot_of_rank[group.index()] as usize
    }

    /// Re-derives `rank_of_slot` for every rank at or after `rank`
    /// (called after the permutation splices; O(groups), never O(nodes)).
    fn rerank_from(&mut self, rank: usize) {
        for (r, &slot) in self.slot_of_rank.iter().enumerate().skip(rank) {
            self.rank_of_slot[slot as usize] = r as u32;
        }
    }

    /// The paper's incremental insertion: place the new fragment into
    /// its group at the right position; the implicit chain edges
    /// re-splice automatically (the edge between its new neighbors is
    /// replaced by two edges through the new node). The fragment must
    /// already be interned in `catalog`. Re-inserting a live fragment
    /// replaces its node (weights may have changed).
    ///
    /// Cost is O(|group|) — only the receiving group's columns splice;
    /// other groups are untouched (their ids shift only when a *new*
    /// group is created).
    pub fn insert(&mut self, catalog: &FragmentCatalog, fragment: &Fragment) {
        let frag = catalog.frag(&fragment.id).expect("fragment interned");
        // A second insert of the same fragment must not splice a
        // duplicate node column entry.
        self.remove(frag);
        let slot = match self.slot_of_rank.binary_search_by(|&s| {
            cmp_key_to_id(
                &self.groups[s as usize].key,
                &fragment.id,
                self.range_position,
            )
        }) {
            Ok(rank) => self.slot_of_rank[rank] as usize,
            Err(rank) => {
                // New group at its key rank: later ranks shift in the
                // permutation only — node addresses stay untouched.
                let column = GroupColumn {
                    key: group_key(&fragment.id, self.range_position),
                    frags: Vec::new(),
                    weights: Vec::new(),
                };
                let slot = match self.free_slots.pop() {
                    Some(slot) => {
                        self.groups[slot as usize] = column;
                        slot as usize
                    }
                    None => {
                        self.groups.push(column);
                        self.rank_of_slot.push(u32::MAX);
                        self.groups.len() - 1
                    }
                };
                self.slot_of_rank.insert(rank, slot as u32);
                self.rerank_from(rank);
                slot
            }
        };
        let group = &mut self.groups[slot];
        let position = match self.range_position {
            Some(pos) => {
                let range_value = &fragment.id.values()[pos];
                group
                    .frags
                    .binary_search_by(|&n| catalog.id(n).values()[pos].cmp(range_value))
                    .unwrap_or_else(|i| i)
            }
            None => group.frags.len(),
        };
        group.frags.insert(position, frag);
        group.weights.insert(position, fragment.total_keywords);
        self.nodes += 1;
        if frag.index() >= self.node_pos.len() {
            self.node_pos.resize(catalog.len(), ABSENT);
        }
        self.reindex_group(slot, position);
    }

    /// Removes a fragment's node, if present. Neighboring nodes become
    /// adjacent (the two edges collapse back into one).
    pub fn remove(&mut self, frag: Frag) -> bool {
        let Some((slot, position)) = self.locate_slot(frag) else {
            return false;
        };
        let group = &mut self.groups[slot];
        group.frags.remove(position);
        group.weights.remove(position);
        self.node_pos[frag.index()] = ABSENT;
        self.nodes -= 1;
        if group.frags.is_empty() {
            // Last node of the group: the group disappears; later key
            // ranks shift down in the permutation, node addresses stay
            // untouched.
            let rank = self.rank_of_slot[slot] as usize;
            self.slot_of_rank.remove(rank);
            self.rerank_from(rank);
            self.rank_of_slot[slot] = u32::MAX;
            self.groups[slot] = GroupColumn::default();
            self.free_slots.push(slot as u32);
        } else {
            self.reindex_group(slot, position);
        }
        true
    }

    /// Rewrites `node_pos` for the nodes of `slot` at or after
    /// `position` (in-group positions shift after a column splice;
    /// other groups' `(slot, position)` pairs are unaffected).
    fn reindex_group(&mut self, slot: usize, position: usize) {
        for (p, frag) in self.groups[slot].frags.iter().enumerate().skip(position) {
            self.node_pos[frag.index()] = (slot as u32, p as u32);
        }
    }

    /// A fragment's `(slot, position)` address, if live.
    #[inline]
    fn locate_slot(&self, frag: Frag) -> Option<(usize, usize)> {
        let &(slot, p) = self.node_pos.get(frag.index())?;
        if slot == u32::MAX {
            return None;
        }
        Some((slot as usize, p as usize))
    }

    /// Locates a fragment's node — O(1), two column lookups.
    #[inline]
    pub fn locate(&self, frag: Frag) -> Option<NodeRef> {
        let (slot, p) = self.locate_slot(frag)?;
        Some(NodeRef {
            group: GroupId(self.rank_of_slot[slot]),
            position: p as u32,
        })
    }

    /// The fragment at a node address.
    pub fn frag_at(&self, node: NodeRef) -> Option<Frag> {
        let &slot = self.slot_of_rank.get(node.group.index())?;
        self.groups[slot as usize]
            .frags
            .get(node.position as usize)
            .copied()
    }

    /// The node run of one group, sorted by range value.
    #[inline]
    pub fn group_nodes(&self, group: GroupId) -> &[Frag] {
        &self.groups[self.slot(group)].frags
    }

    /// The weight run of one group (total keywords per node), parallel
    /// to [`FragmentGraph::group_nodes`].
    #[inline]
    pub fn group_weights(&self, group: GroupId) -> &[u64] {
        &self.groups[self.slot(group)].weights
    }

    /// The equality prefix identifying a group.
    #[inline]
    pub fn group_key(&self, group: GroupId) -> &[Value] {
        &self.groups[self.slot(group)].key
    }

    /// The group holding a given equality prefix, if any.
    pub fn group_by_key(&self, key: &[Value]) -> Option<GroupId> {
        self.slot_of_rank
            .binary_search_by(|&s| self.groups[s as usize].key.as_slice().cmp(key))
            .ok()
            .map(|g| GroupId(g as u32))
    }

    /// The neighbors of a node: its predecessor and successor in range
    /// order (none for all-equality queries, where every node is
    /// isolated).
    pub fn neighbors(&self, node: NodeRef) -> Vec<NodeRef> {
        if self.range_position.is_none() {
            return Vec::new();
        }
        let Some(&slot) = self.slot_of_rank.get(node.group.index()) else {
            return Vec::new();
        };
        let len = self.groups[slot as usize].frags.len() as u32;
        let mut out = Vec::with_capacity(2);
        if node.position > 0 {
            out.push(NodeRef {
                group: node.group,
                position: node.position - 1,
            });
        }
        if node.position + 1 < len {
            out.push(NodeRef {
                group: node.group,
                position: node.position + 1,
            });
        }
        out
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Total edge count: each group of `n` nodes chains `n-1` edges.
    pub fn edge_count(&self) -> usize {
        if self.range_position.is_none() {
            return 0;
        }
        self.slot_of_rank
            .iter()
            .map(|&s| self.groups[s as usize].frags.len().saturating_sub(1))
            .sum()
    }

    /// Number of equality groups (connected components, when every
    /// group is non-empty).
    pub fn group_count(&self) -> usize {
        self.slot_of_rank.len()
    }

    /// Average keywords per fragment — Table IV's third column.
    pub fn avg_keywords(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let total: u64 = self
            .slot_of_rank
            .iter()
            .flat_map(|&s| &self.groups[s as usize].weights)
            .sum();
        total as f64 / self.nodes as f64
    }

    /// Seconds the bulk build took (Table IV's first column).
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// The range attribute's position within identifiers.
    pub fn range_position(&self) -> Option<usize> {
        self.range_position
    }

    /// Iterates over `(equality prefix, range-sorted node run)` groups
    /// in key order.
    pub fn iter_groups(&self) -> impl Iterator<Item = (&[Value], &[Frag])> {
        self.slot_of_rank.iter().map(|&s| {
            let g = &self.groups[s as usize];
            (g.key.as_slice(), g.frags.as_slice())
        })
    }

    /// The full group columns — `(key, frags, weights)` — in key-rank
    /// order: the arena-image dump view (`persist` v2). Rank order is
    /// canonical, so two graphs holding the same live nodes dump the
    /// same image regardless of their maintenance history (slot
    /// permutation and free list are derived state and never dumped).
    pub(crate) fn image_groups(
        &self,
    ) -> impl ExactSizeIterator<Item = (&[Value], &[Frag], &[u64])> {
        self.slot_of_rank.iter().map(|&s| {
            let g = &self.groups[s as usize];
            (g.key.as_slice(), g.frags.as_slice(), g.weights.as_slice())
        })
    }

    /// Reassembles a graph from dumped group columns (key-rank order) —
    /// the arena-image load path. Slots come back in rank order, so the
    /// rank ⇄ slot permutation is the identity and the free list is
    /// empty (exactly a bulk build's state); `node_pos` is re-derived
    /// in one linear pass. `catalog_len` sizes the `node_pos` column —
    /// handles without a live node stay `ABSENT`.
    pub(crate) fn from_image_groups(
        range_position: Option<usize>,
        groups: Vec<(Vec<Value>, Vec<Frag>, Vec<u64>)>,
        catalog_len: usize,
    ) -> Self {
        let mut graph = FragmentGraph {
            range_position,
            groups: Vec::with_capacity(groups.len()),
            slot_of_rank: (0..groups.len() as u32).collect(),
            rank_of_slot: (0..groups.len() as u32).collect(),
            free_slots: Vec::new(),
            node_pos: vec![ABSENT; catalog_len],
            nodes: 0,
            build_secs: 0.0,
        };
        for (key, frags, weights) in groups {
            let slot = graph.groups.len() as u32;
            for (pos, &frag) in frags.iter().enumerate() {
                graph.node_pos[frag.index()] = (slot, pos as u32);
            }
            graph.nodes += frags.len();
            graph.groups.push(GroupColumn {
                key,
                frags,
                weights,
            });
        }
        graph
    }
}

/// Compares a stored group key against the group key of `id` (the
/// identifier viewed with the range position skipped), without
/// allocating the latter.
fn cmp_key_to_id(key: &[Value], id: &FragmentId, skip: Option<usize>) -> std::cmp::Ordering {
    let view = KeyRef { id, skip };
    key.iter().cmp(view.values())
}

/// A borrowed group key: an identifier viewed with one position
/// skipped. Hashing/comparison walk the values without allocating.
#[derive(Debug, Clone, Copy)]
struct KeyRef<'a> {
    id: &'a FragmentId,
    skip: Option<usize>,
}

impl KeyRef<'_> {
    fn values(&self) -> impl Iterator<Item = &Value> {
        self.id
            .values()
            .iter()
            .enumerate()
            .filter(move |(i, _)| Some(*i) != self.skip)
            .map(|(_, v)| v)
    }

    fn to_owned_key(self) -> Vec<Value> {
        self.values().cloned().collect()
    }
}

impl PartialEq for KeyRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.values().eq(other.values())
    }
}
impl Eq for KeyRef<'_> {}

impl PartialOrd for KeyRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyRef<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl std::hash::Hash for KeyRef<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for v in self.values() {
            v.hash(state);
        }
    }
}

/// The equality-group key of a fragment identifier: the identifier with
/// the range position removed. This single derivation defines group
/// membership everywhere — the graph's grouping, the sharded engine's
/// partition AND the serving layer's cache-invalidation signatures must
/// agree on it bit for bit, or shard rank offsets stop matching global
/// group ranks (and stale cached pages could survive a delta).
pub fn group_key(id: &FragmentId, range_position: Option<usize>) -> Vec<Value> {
    match range_position {
        Some(pos) => id.without(pos),
        None => id.values().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn fragment(cuisine: &str, budget: i64, total: u64) -> Fragment {
        let mut occ = Map::new();
        occ.insert("w".to_string(), total);
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
            occ,
            1,
        )
    }

    /// The five fragments of Figure 5/9.
    fn figure_9() -> Vec<Fragment> {
        vec![
            fragment("American", 9, 8),
            fragment("American", 10, 8),
            fragment("American", 12, 17),
            fragment("American", 18, 8),
            fragment("Thai", 10, 10),
        ]
    }

    fn build(fragments: &[Fragment]) -> (FragmentCatalog, FragmentGraph) {
        let catalog = FragmentCatalog::from_fragments(fragments);
        let graph = FragmentGraph::build(&catalog, fragments, Some(1)).unwrap();
        (catalog, graph)
    }

    fn frag_of(catalog: &FragmentCatalog, cuisine: &str, budget: i64) -> Frag {
        catalog
            .frag(&FragmentId::new(vec![
                Value::str(cuisine),
                Value::Int(budget),
            ]))
            .unwrap()
    }

    #[test]
    fn figure_9_shape() {
        let (catalog, g) = build(&figure_9());
        assert_eq!(g.node_count(), 5);
        // American chain has 3 edges; Thai is isolated.
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.group_count(), 2);
        let american = g.group_by_key(&[Value::str("American")]).unwrap();
        let budgets: Vec<&Value> = g
            .group_nodes(american)
            .iter()
            .map(|&n| &catalog.id(n).values()[1])
            .collect();
        assert_eq!(
            budgets,
            vec![
                &Value::Int(9),
                &Value::Int(10),
                &Value::Int(12),
                &Value::Int(18)
            ]
        );
        // Group ids rank keys: American < Thai.
        assert_eq!(american, GroupId(0));
        assert_eq!(g.group_by_key(&[Value::str("Thai")]), Some(GroupId(1)));
    }

    #[test]
    fn neighbors_follow_sorted_order() {
        let (catalog, g) = build(&figure_9());
        let ten = g.locate(frag_of(&catalog, "American", 10)).unwrap();
        let neighbors = g.neighbors(ten);
        assert_eq!(neighbors.len(), 2);
        let budgets: Vec<&Value> = neighbors
            .iter()
            .map(|&r| &catalog.id(g.frag_at(r).unwrap()).values()[1])
            .collect();
        assert!(budgets.contains(&&Value::Int(9)));
        assert!(budgets.contains(&&Value::Int(12)));
        // Thai node is isolated.
        let thai = g.locate(frag_of(&catalog, "Thai", 10)).unwrap();
        assert_eq!(g.neighbors(thai).len(), 0);
    }

    #[test]
    fn incremental_insert_splices() {
        let fragments = figure_9();
        let mut all = fragments.clone();
        all.push(fragment("American", 11, 5));
        let catalog = FragmentCatalog::from_fragments(&all);
        let g0 = FragmentGraph::build(&catalog, &fragments, Some(1)).unwrap();
        let mut g = FragmentGraph::build(&catalog, &[], Some(1)).unwrap();
        for f in &fragments {
            g.insert(&catalog, f);
        }
        // Same structure as bulk build.
        assert_eq!(g.node_count(), g0.node_count());
        assert_eq!(g.edge_count(), g0.edge_count());
        // Insert (American, 11): edge (10,12) splits into (10,11),(11,12).
        g.insert(&catalog, &all[5]);
        assert_eq!(g.edge_count(), 4);
        let eleven = g.locate(frag_of(&catalog, "American", 11)).unwrap();
        assert_eq!(eleven.position, 2);
    }

    #[test]
    fn insert_new_group_keeps_key_order() {
        let fragments = figure_9();
        let mut all = fragments.clone();
        all.push(fragment("Cajun", 7, 4));
        let catalog = FragmentCatalog::from_fragments(&all);
        let mut g = FragmentGraph::build(&catalog, &fragments, Some(1)).unwrap();
        g.insert(&catalog, &all[5]);
        // Cajun ranks between American and Thai.
        assert_eq!(g.group_by_key(&[Value::str("American")]), Some(GroupId(0)));
        assert_eq!(g.group_by_key(&[Value::str("Cajun")]), Some(GroupId(1)));
        assert_eq!(g.group_by_key(&[Value::str("Thai")]), Some(GroupId(2)));
        // Every node still locates correctly after the shift.
        for f in &all {
            let frag = catalog.frag(&f.id).unwrap();
            let node = g.locate(frag).unwrap();
            assert_eq!(g.frag_at(node), Some(frag));
        }
    }

    #[test]
    fn remove_collapses_edges() {
        let (catalog, mut g) = build(&figure_9());
        assert!(g.remove(frag_of(&catalog, "American", 10)));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.remove(frag_of(&catalog, "American", 10)));
        // Removing the last of a group drops the group.
        assert!(g.remove(frag_of(&catalog, "Thai", 10)));
        assert_eq!(g.group_count(), 1);
        // Remaining nodes still locate.
        let nine = g.locate(frag_of(&catalog, "American", 9)).unwrap();
        assert_eq!(g.frag_at(nine), Some(frag_of(&catalog, "American", 9)));
    }

    #[test]
    fn all_equality_query_has_no_edges() {
        let fragments = vec![fragment("American", 1, 3), fragment("American", 2, 4)];
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let g = FragmentGraph::build(&catalog, &fragments, None).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        let r = g.locate(catalog.frag(&fragments[0].id).unwrap()).unwrap();
        assert!(g.neighbors(r).is_empty());
    }

    #[test]
    fn avg_keywords_matches_table_4_definition() {
        let (_, g) = build(&figure_9());
        // (8+8+17+8+10)/5 = 10.2
        assert!((g.avg_keywords() - 10.2).abs() < 1e-9);
        assert!(g.build_secs() >= 0.0);
    }

    #[test]
    fn out_of_bounds_range_position_rejected() {
        let fragments = figure_9();
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let err = FragmentGraph::build(&catalog, &fragments, Some(7)).unwrap_err();
        assert!(matches!(err, CoreError::Internal { .. }));
    }

    #[test]
    fn unsorted_input_sorts_groups() {
        let mut fragments = figure_9();
        fragments.swap(0, 3); // break range order within American
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let g = FragmentGraph::build(&catalog, &fragments, Some(1)).unwrap();
        let american = g.group_by_key(&[Value::str("American")]).unwrap();
        let budgets: Vec<&Value> = g
            .group_nodes(american)
            .iter()
            .map(|&n| &catalog.id(n).values()[1])
            .collect();
        assert_eq!(
            budgets,
            vec![
                &Value::Int(9),
                &Value::Int(10),
                &Value::Int(12),
                &Value::Int(18)
            ]
        );
    }

    #[test]
    fn incremental_converges_to_bulk_for_many_groups() {
        // Dozens of groups with interleaved inserts: group ids must stay
        // ranks and every node must stay locatable.
        let mut fragments = Vec::new();
        for c in 0..17 {
            for b in 0..5 {
                fragments.push(fragment(&format!("C{c:02}"), b * 3, (b + 1) as u64));
            }
        }
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let bulk = FragmentGraph::build(&catalog, &fragments, Some(1)).unwrap();
        let mut inc = FragmentGraph::build(&catalog, &[], Some(1)).unwrap();
        // Insert in an order that interleaves group creation.
        let mut shuffled = fragments.clone();
        shuffled.sort_by(|a, b| a.id.values()[1].cmp(&b.id.values()[1]));
        for f in &shuffled {
            inc.insert(&catalog, f);
        }
        assert_eq!(inc.node_count(), bulk.node_count());
        assert_eq!(inc.edge_count(), bulk.edge_count());
        assert_eq!(inc.group_count(), bulk.group_count());
        for f in &fragments {
            let frag = catalog.frag(&f.id).unwrap();
            assert_eq!(inc.locate(frag), bulk.locate(frag), "{}", f.id);
        }
        for ((ka, na), (kb, nb)) in inc.iter_groups().zip(bulk.iter_groups()) {
            assert_eq!(ka, kb);
            assert_eq!(na, nb);
        }
    }
}
