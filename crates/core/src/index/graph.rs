//! The fragment graph (Section VI-A of the paper).
//!
//! Every node is one fragment, weighted by its total keyword count
//! (Example 6: node `(American, 9)` has weight 8). An edge connects two
//! fragments when they can combine into a db-page containing no other
//! fragment — i.e. they agree on every equality-bound selection attribute
//! and are **adjacent** in the sorted domain of the range-bound attribute.
//! Fragments with different equality values (e.g. `(Thai, 10)` among
//! American fragments) stay disconnected, exactly as in Figure 9.
//!
//! The graph is stored as groups (one per equality prefix) of nodes
//! sorted by range value; adjacency is implicit in the order, which makes
//! both bulk construction ("a lot of comparisons can be saved if
//! db-fragments are pre-sorted", §VI-A) and the paper's incremental
//! insertion cheap.

use std::collections::BTreeMap;
use std::time::Instant;

use dash_relation::Value;

use crate::error::CoreError;
use crate::fragment::{Fragment, FragmentId};
use crate::Result;

/// One node of the fragment graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The fragment's identifier.
    pub id: FragmentId,
    /// Total keywords in the fragment (the node weight of Example 6).
    pub total_keywords: u64,
    /// Number of records in the fragment.
    pub record_count: u64,
}

/// The fragment graph.
#[derive(Debug, Clone, Default)]
pub struct FragmentGraph {
    /// Position of the range attribute within fragment identifiers;
    /// `None` for all-equality queries (no edges at all).
    range_position: Option<usize>,
    /// Equality prefix → nodes sorted by range value.
    groups: BTreeMap<Vec<Value>, Vec<GraphNode>>,
    /// Wall-clock seconds the last bulk build took (Table IV reports this).
    build_secs: f64,
}

/// A node's address: its equality group and offset within the sorted
/// group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef {
    /// The equality prefix identifying the group.
    pub group: Vec<Value>,
    /// Index within the group's sorted node vector.
    pub position: usize,
}

impl FragmentGraph {
    /// Bulk-builds the graph: pre-sorts fragments by identifier (the
    /// paper's comparison-saving strategy), then splits them into
    /// equality groups.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Internal`] when `range_position` is out of
    /// bounds for some fragment identifier.
    pub fn build(fragments: &[Fragment], range_position: Option<usize>) -> Result<Self> {
        let start = Instant::now();
        let mut groups: BTreeMap<Vec<Value>, Vec<GraphNode>> = BTreeMap::new();
        for f in fragments {
            if let Some(pos) = range_position {
                if pos >= f.id.values().len() {
                    return Err(CoreError::Internal {
                        detail: format!("range position {pos} out of bounds for fragment {}", f.id),
                    });
                }
            }
            let key = group_key(&f.id, range_position);
            groups.entry(key).or_default().push(GraphNode {
                id: f.id.clone(),
                total_keywords: f.total_keywords,
                record_count: f.record_count,
            });
        }
        if let Some(pos) = range_position {
            for nodes in groups.values_mut() {
                nodes.sort_by(|a, b| a.id.values()[pos].cmp(&b.id.values()[pos]));
            }
        }
        Ok(FragmentGraph {
            range_position,
            groups,
            build_secs: start.elapsed().as_secs_f64(),
        })
    }

    /// The paper's incremental insertion: place the new fragment into its
    /// group at the right position; the implicit chain edges re-splice
    /// automatically (the edge between its new neighbors is replaced by
    /// two edges through the new node).
    pub fn insert(&mut self, fragment: &Fragment) {
        let key = group_key(&fragment.id, self.range_position);
        let node = GraphNode {
            id: fragment.id.clone(),
            total_keywords: fragment.total_keywords,
            record_count: fragment.record_count,
        };
        let nodes = self.groups.entry(key).or_default();
        match self.range_position {
            Some(pos) => {
                let range_value = &fragment.id.values()[pos];
                let at = nodes
                    .binary_search_by(|n| n.id.values()[pos].cmp(range_value))
                    .unwrap_or_else(|i| i);
                nodes.insert(at, node);
            }
            None => nodes.push(node),
        }
    }

    /// Removes a fragment's node, if present. Neighboring nodes become
    /// adjacent (the two edges collapse back into one).
    pub fn remove(&mut self, id: &FragmentId) -> bool {
        let key = group_key(id, self.range_position);
        if let Some(nodes) = self.groups.get_mut(&key) {
            let before = nodes.len();
            nodes.retain(|n| n.id != *id);
            let removed = nodes.len() != before;
            if nodes.is_empty() {
                self.groups.remove(&key);
            }
            return removed;
        }
        false
    }

    /// Locates a fragment's node. Within a group nodes are sorted by
    /// range value, so the lookup is a binary search (O(log group) — this
    /// sits on the hot path of every top-k seed).
    pub fn locate(&self, id: &FragmentId) -> Option<NodeRef> {
        let key = group_key(id, self.range_position);
        let nodes = self.groups.get(&key)?;
        let position = match self.range_position {
            Some(pos) => {
                let target = &id.values()[pos];
                let at = nodes
                    .binary_search_by(|n| n.id.values()[pos].cmp(target))
                    .ok()?;
                // Equal range values are not possible within a group
                // (identifiers are unique), so `at` is the node.
                if nodes[at].id == *id {
                    at
                } else {
                    return None;
                }
            }
            None => nodes.iter().position(|n| n.id == *id)?,
        };
        Some(NodeRef {
            group: key,
            position,
        })
    }

    /// The node at a reference.
    pub fn node(&self, node_ref: &NodeRef) -> Option<&GraphNode> {
        self.groups.get(&node_ref.group)?.get(node_ref.position)
    }

    /// The nodes of one group, sorted by range value.
    pub fn group(&self, group: &[Value]) -> Option<&[GraphNode]> {
        self.groups.get(group).map(Vec::as_slice)
    }

    /// The neighbors of a node: its predecessor and successor in range
    /// order (none for all-equality queries, where every node is
    /// isolated).
    pub fn neighbors(&self, node_ref: &NodeRef) -> Vec<NodeRef> {
        if self.range_position.is_none() {
            return Vec::new();
        }
        let Some(nodes) = self.groups.get(&node_ref.group) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(2);
        if node_ref.position > 0 {
            out.push(NodeRef {
                group: node_ref.group.clone(),
                position: node_ref.position - 1,
            });
        }
        if node_ref.position + 1 < nodes.len() {
            out.push(NodeRef {
                group: node_ref.group.clone(),
                position: node_ref.position + 1,
            });
        }
        out
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Total edge count: each group of `n` nodes chains `n-1` edges.
    pub fn edge_count(&self) -> usize {
        if self.range_position.is_none() {
            return 0;
        }
        self.groups
            .values()
            .map(|nodes| nodes.len().saturating_sub(1))
            .sum()
    }

    /// Number of equality groups (connected components, when every group
    /// is non-empty).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Average keywords per fragment — Table IV's third column.
    pub fn avg_keywords(&self) -> f64 {
        let nodes = self.node_count();
        if nodes == 0 {
            return 0.0;
        }
        let total: u64 = self
            .groups
            .values()
            .flat_map(|ns| ns.iter().map(|n| n.total_keywords))
            .sum();
        total as f64 / nodes as f64
    }

    /// Seconds the bulk build took (Table IV's first column).
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// The range attribute's position within identifiers.
    pub fn range_position(&self) -> Option<usize> {
        self.range_position
    }

    /// Iterates over `(equality prefix, sorted nodes)` groups.
    pub fn iter_groups(&self) -> impl Iterator<Item = (&[Value], &[GraphNode])> {
        self.groups
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

fn group_key(id: &FragmentId, range_position: Option<usize>) -> Vec<Value> {
    match range_position {
        Some(pos) => id.without(pos),
        None => id.values().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn fragment(cuisine: &str, budget: i64, total: u64) -> Fragment {
        let mut occ = Map::new();
        occ.insert("w".to_string(), total);
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
            occ,
            1,
        )
    }

    /// The five fragments of Figure 5/9.
    fn figure_9() -> Vec<Fragment> {
        vec![
            fragment("American", 9, 8),
            fragment("American", 10, 8),
            fragment("American", 12, 17),
            fragment("American", 18, 8),
            fragment("Thai", 10, 10),
        ]
    }

    #[test]
    fn figure_9_shape() {
        let g = FragmentGraph::build(&figure_9(), Some(1)).unwrap();
        assert_eq!(g.node_count(), 5);
        // American chain has 3 edges; Thai is isolated.
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.group_count(), 2);
        let american = g.group(&[Value::str("American")]).unwrap();
        let budgets: Vec<&Value> = american.iter().map(|n| &n.id.values()[1]).collect();
        assert_eq!(
            budgets,
            vec![
                &Value::Int(9),
                &Value::Int(10),
                &Value::Int(12),
                &Value::Int(18)
            ]
        );
    }

    #[test]
    fn neighbors_follow_sorted_order() {
        let g = FragmentGraph::build(&figure_9(), Some(1)).unwrap();
        let ten = g
            .locate(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(10),
            ]))
            .unwrap();
        let neighbors = g.neighbors(&ten);
        assert_eq!(neighbors.len(), 2);
        let ids: Vec<&FragmentId> = neighbors.iter().map(|r| &g.node(r).unwrap().id).collect();
        assert!(ids.iter().any(|id| id.values()[1] == Value::Int(9)));
        assert!(ids.iter().any(|id| id.values()[1] == Value::Int(12)));
        // Thai node is isolated.
        let thai = g
            .locate(&FragmentId::new(vec![Value::str("Thai"), Value::Int(10)]))
            .unwrap();
        assert_eq!(g.neighbors(&thai).len(), 0);
    }

    #[test]
    fn incremental_insert_splices() {
        let g0 = FragmentGraph::build(&figure_9(), Some(1)).unwrap();
        let mut g = FragmentGraph::build(&[], Some(1)).unwrap();
        for f in figure_9() {
            g.insert(&f);
        }
        // Same structure as bulk build.
        assert_eq!(g.node_count(), g0.node_count());
        assert_eq!(g.edge_count(), g0.edge_count());
        // Insert (American, 11): edge (10,12) splits into (10,11),(11,12).
        g.insert(&fragment("American", 11, 5));
        assert_eq!(g.edge_count(), 4);
        let eleven = g
            .locate(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(11),
            ]))
            .unwrap();
        assert_eq!(eleven.position, 2);
    }

    #[test]
    fn remove_collapses_edges() {
        let mut g = FragmentGraph::build(&figure_9(), Some(1)).unwrap();
        assert!(g.remove(&FragmentId::new(vec![
            Value::str("American"),
            Value::Int(10)
        ])));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.remove(&FragmentId::new(vec![
            Value::str("American"),
            Value::Int(10)
        ])));
        // Removing the last of a group drops the group.
        assert!(g.remove(&FragmentId::new(vec![Value::str("Thai"), Value::Int(10)])));
        assert_eq!(g.group_count(), 1);
    }

    #[test]
    fn all_equality_query_has_no_edges() {
        let fragments = vec![fragment("American", 1, 3), fragment("American", 2, 4)];
        let g = FragmentGraph::build(&fragments, None).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        let r = g.locate(&fragments[0].id).unwrap();
        assert!(g.neighbors(&r).is_empty());
    }

    #[test]
    fn avg_keywords_matches_table_4_definition() {
        let g = FragmentGraph::build(&figure_9(), Some(1)).unwrap();
        // (8+8+17+8+10)/5 = 10.2
        assert!((g.avg_keywords() - 10.2).abs() < 1e-9);
        assert!(g.build_secs() >= 0.0);
    }

    #[test]
    fn out_of_bounds_range_position_rejected() {
        let err = FragmentGraph::build(&figure_9(), Some(7)).unwrap_err();
        assert!(matches!(err, CoreError::Internal { .. }));
    }
}
