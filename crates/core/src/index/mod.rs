//! The fragment index = inverted fragment index + fragment graph
//! (Sections V–VI of the paper).

pub mod graph;
pub mod inverted;

pub use graph::{FragmentGraph, GraphNode};
pub use inverted::InvertedFragmentIndex;

use crate::fragment::Fragment;
use crate::Result;

/// The complete fragment index Dash searches over.
#[derive(Debug, Clone)]
pub struct FragmentIndex {
    /// Keyword → TF-sorted fragment postings.
    pub inverted: InvertedFragmentIndex,
    /// Which fragments combine into db-pages.
    pub graph: FragmentGraph,
}

impl FragmentIndex {
    /// Builds both halves from materialized fragments.
    ///
    /// `range_position` is the index of the range-bound selection
    /// attribute within fragment identifiers (`None` when the application
    /// query has only equality parameters).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Internal`] on malformed fragments
    /// (identifier arity disagreement).
    pub fn build(fragments: &[Fragment], range_position: Option<usize>) -> Result<Self> {
        let inverted = InvertedFragmentIndex::build(fragments);
        let graph = FragmentGraph::build(fragments, range_position)?;
        Ok(FragmentIndex { inverted, graph })
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> usize {
        self.graph.node_count()
    }
}
