//! The fragment index = fragment catalog + inverted fragment index +
//! fragment graph (Sections V–VI of the paper).
//!
//! The [`FragmentCatalog`] interns every crawled fragment identifier
//! into a dense [`catalog::Frag`] handle; the
//! [`InvertedFragmentIndex`] and [`FragmentGraph`] are handle-native
//! and columnar, so search never touches a `Vec<Value>` identifier
//! until it emits results.

pub mod catalog;
pub mod graph;
pub mod inverted;

pub use catalog::{Frag, FragmentCatalog, Kw};
pub use graph::{FragmentGraph, GroupId, NodeRef};
pub(crate) use inverted::ProbeEntry;
pub use inverted::{InvertedFragmentIndex, KeywordInterner, Posting};

use std::collections::HashSet;

use crate::fragment::{Fragment, FragmentId};
use crate::par;
use crate::update::{IndexDelta, RefreshStats};
use crate::Result;

/// The complete fragment index Dash searches over.
#[derive(Debug, Clone, Default)]
pub struct FragmentIndex {
    /// Identifier ⇄ handle interning plus shared per-fragment columns.
    pub catalog: FragmentCatalog,
    /// Keyword → TF-sorted fragment postings (arena-backed).
    pub inverted: InvertedFragmentIndex,
    /// Which fragments combine into db-pages (columnar groups).
    pub graph: FragmentGraph,
}

impl FragmentIndex {
    /// Builds all parts from materialized fragments: interns handles,
    /// then constructs the inverted index and the graph in parallel
    /// (they share nothing but the read-only catalog).
    ///
    /// `range_position` is the index of the range-bound selection
    /// attribute within fragment identifiers (`None` when the application
    /// query has only equality parameters).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Internal`] on malformed fragments
    /// (identifier arity disagreement).
    pub fn build(fragments: &[Fragment], range_position: Option<usize>) -> Result<Self> {
        let refs: Vec<&Fragment> = fragments.iter().collect();
        Self::build_refs(&refs, range_position)
    }

    /// [`FragmentIndex::build`] over borrowed fragments — the zero-copy
    /// path the sharded partition uses (shard parts are reference runs
    /// into one crawl output; nothing is cloned until interning).
    ///
    /// # Errors
    ///
    /// Same as [`FragmentIndex::build`].
    pub fn build_refs(fragments: &[&Fragment], range_position: Option<usize>) -> Result<Self> {
        let catalog = FragmentCatalog::from_refs(fragments);
        let (inverted, graph) = par::join(
            || InvertedFragmentIndex::build_refs(&catalog, fragments),
            || FragmentGraph::build_refs(&catalog, fragments, range_position),
        );
        Ok(FragmentIndex {
            catalog,
            inverted,
            graph: graph?,
        })
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Applies one [`IndexDelta`] atomically: every structure sees the
    /// whole batch — removals first, then (re)insertions — before any
    /// search can observe the index again (`&mut self` guarantees
    /// exclusivity), and the inverted arenas are rewritten **once** for
    /// the batch rather than once per fragment. A delta may carry
    /// several recomputations of the same identifier (e.g. two record
    /// deltas concatenated); the **last** add for an identifier wins,
    /// so applying a concatenation equals applying the parts in order.
    /// This is the single mutation path both engines use;
    /// [`FragmentIndex::remove_fragment`] and
    /// [`FragmentIndex::add_fragment`] are one-element deltas.
    pub fn apply(&mut self, delta: &IndexDelta) -> RefreshStats {
        let mut stats = RefreshStats::default();
        if delta.removes.is_empty() && delta.adds.is_empty() {
            return stats;
        }
        // Last-wins dedup: a duplicated add must splice exactly one
        // posting per keyword, or df/IDF would drift from a rebuild.
        let mut adds: Vec<&Fragment> = Vec::with_capacity(delta.adds.len());
        let mut seen: HashSet<&FragmentId> = HashSet::with_capacity(delta.adds.len());
        for fragment in delta.adds.iter().rev() {
            if seen.insert(&fragment.id) {
                adds.push(fragment);
            }
        }
        adds.reverse();
        // Graph first (it owns liveness): splice out removed nodes,
        // splice in fresh ones — each touches only its own group column.
        // Only frags with a live node go to the posting splice — a
        // tombstoned handle has no postings, and skipping it here lets
        // an all-tombstone delta bypass the arena rewrite entirely.
        let mut removed_frags = Vec::with_capacity(delta.removes.len());
        for id in &delta.removes {
            if let Some(frag) = self.catalog.frag(id) {
                if self.graph.remove(frag) {
                    removed_frags.push(frag);
                    stats.removed += 1;
                }
            }
        }
        for fragment in &adds {
            self.catalog.intern(fragment);
            self.graph.insert(&self.catalog, fragment);
            stats.added += 1;
        }
        // One batched posting splice for the whole delta.
        self.inverted
            .apply_delta(&self.catalog, &removed_frags, &adds);
        self.inverted
            .set_fragment_count(self.graph.node_count() as u64);
        stats
    }

    /// Removes one fragment from every structure (incremental
    /// maintenance). Returns whether anything was removed. The handle
    /// stays interned (a tombstone), so re-adding the same identifier
    /// later re-uses it.
    pub fn remove_fragment(&mut self, id: &FragmentId) -> bool {
        let stats = self.apply(&IndexDelta::removing(vec![id.clone()]));
        stats.removed > 0
    }

    /// Splices one freshly derived fragment into every structure
    /// (incremental maintenance).
    pub fn add_fragment(&mut self, fragment: &Fragment) {
        self.apply(&IndexDelta::adding(vec![fragment.clone()]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_relation::Value;
    use std::collections::BTreeMap;

    fn fragment(cuisine: &str, budget: i64, words: &[(&str, u64)]) -> Fragment {
        let occ: BTreeMap<String, u64> = words.iter().map(|(w, n)| (w.to_string(), *n)).collect();
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
            occ,
            1,
        )
    }

    fn sample() -> Vec<Fragment> {
        vec![
            fragment("American", 9, &[("coffee", 1), ("nice", 1)]),
            fragment("American", 10, &[("burger", 2), ("queen", 1)]),
            fragment("American", 12, &[("burger", 1), ("fries", 1)]),
            fragment("Thai", 10, &[("burger", 1), ("thai", 1)]),
        ]
    }

    #[test]
    fn build_wires_all_parts_to_one_catalog() {
        let fragments = sample();
        let index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        assert_eq!(index.fragment_count(), 4);
        assert_eq!(index.catalog.len(), 4);
        // A posting's handle locates in the graph and resolves to an id.
        let burger = index.inverted.postings("burger").unwrap();
        for p in burger {
            let node = index.graph.locate(p.frag).expect("posting node");
            assert_eq!(index.graph.frag_at(node), Some(p.frag));
            assert!(index.catalog.frag(index.catalog.id(p.frag)) == Some(p.frag));
        }
    }

    #[test]
    fn double_add_replaces_instead_of_duplicating() {
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        // Re-adding a live fragment (no remove first) must replace its
        // node and postings, not splice duplicates.
        let updated = fragment("American", 10, &[("burger", 5), ("queen", 1)]);
        index.add_fragment(&updated);
        assert_eq!(index.fragment_count(), 4);
        let frag = index.catalog.frag(&updated.id).unwrap();
        let node = index.graph.locate(frag).unwrap();
        assert_eq!(index.graph.frag_at(node), Some(frag));
        assert_eq!(
            index
                .graph
                .group_nodes(node.group)
                .iter()
                .filter(|&&f| f == frag)
                .count(),
            1
        );
        let kw = index.inverted.kw("burger").unwrap();
        assert_eq!(index.inverted.occurrences(kw, frag), 5);
        // And it can still be removed cleanly afterwards.
        assert!(index.remove_fragment(&updated.id));
        assert_eq!(index.fragment_count(), 3);
    }

    #[test]
    fn duplicate_adds_dedupe_last_wins() {
        // A delta carrying two recomputations of one identifier must
        // splice exactly one posting set — the later one — or df/IDF
        // would drift from a rebuild.
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let stale = fragment("American", 10, &[("burger", 3), ("queen", 1)]);
        let fresh = fragment("American", 10, &[("burger", 7), ("queen", 2)]);
        let stats = index.apply(&IndexDelta::new(
            vec![stale.id.clone()],
            vec![stale.clone(), fresh.clone()],
        ));
        assert_eq!((stats.removed, stats.added), (1, 1));
        assert_eq!(index.fragment_count(), 4);
        // df sees ONE posting for the id; occurrences are the latest.
        assert_eq!(index.inverted.df("burger"), 3);
        let frag = index.catalog.frag(&fresh.id).unwrap();
        let kw = index.inverted.kw("burger").unwrap();
        assert_eq!(index.inverted.occurrences(kw, frag), 7);
        assert_eq!(index.catalog.total_keywords(frag), 9);
    }

    #[test]
    fn removing_tombstoned_id_is_cheap_noop() {
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let id = fragments[0].id.clone();
        assert!(index.remove_fragment(&id));
        let postings_before = index.inverted.posting_count();
        // Second removal: the id still resolves (tombstoned handle) but
        // nothing matches — arenas must be untouched.
        assert!(!index.remove_fragment(&id));
        assert_eq!(index.inverted.posting_count(), postings_before);
        assert_eq!(index.fragment_count(), 3);
    }

    #[test]
    fn maintenance_round_trip_matches_rebuild() {
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let id = fragments[1].id.clone();
        assert!(index.remove_fragment(&id));
        assert!(!index.remove_fragment(&id));
        assert_eq!(index.fragment_count(), 3);
        index.add_fragment(&fragments[1]);
        assert_eq!(index.fragment_count(), 4);
        let rebuilt = FragmentIndex::build(&fragments, Some(1)).unwrap();
        for word in ["burger", "coffee", "queen", "thai"] {
            assert_eq!(
                index.inverted.postings(word).map(|p| p
                    .iter()
                    .map(|x| (index.catalog.id(x.frag).clone(), x.occurrences))
                    .collect::<Vec<_>>()),
                rebuilt.inverted.postings(word).map(|p| p
                    .iter()
                    .map(|x| (rebuilt.catalog.id(x.frag).clone(), x.occurrences))
                    .collect::<Vec<_>>()),
                "{word}"
            );
        }
        assert_eq!(index.graph.edge_count(), rebuilt.graph.edge_count());
    }
}
