//! The fragment index = fragment catalog + inverted fragment index +
//! fragment graph (Sections V–VI of the paper).
//!
//! The [`FragmentCatalog`] interns every crawled fragment identifier
//! into a dense [`Frag`](catalog::Frag) handle; the
//! [`InvertedFragmentIndex`] and [`FragmentGraph`] are handle-native
//! and columnar, so search never touches a `Vec<Value>` identifier
//! until it emits results.

pub mod catalog;
pub mod graph;
pub mod inverted;

pub use catalog::{Frag, FragmentCatalog, Kw};
pub use graph::{FragmentGraph, GroupId, NodeRef};
pub use inverted::{InvertedFragmentIndex, KeywordInterner, Posting};

use crate::fragment::{Fragment, FragmentId};
use crate::par;
use crate::Result;

/// The complete fragment index Dash searches over.
#[derive(Debug, Clone, Default)]
pub struct FragmentIndex {
    /// Identifier ⇄ handle interning plus shared per-fragment columns.
    pub catalog: FragmentCatalog,
    /// Keyword → TF-sorted fragment postings (arena-backed).
    pub inverted: InvertedFragmentIndex,
    /// Which fragments combine into db-pages (columnar groups).
    pub graph: FragmentGraph,
}

impl FragmentIndex {
    /// Builds all parts from materialized fragments: interns handles,
    /// then constructs the inverted index and the graph in parallel
    /// (they share nothing but the read-only catalog).
    ///
    /// `range_position` is the index of the range-bound selection
    /// attribute within fragment identifiers (`None` when the application
    /// query has only equality parameters).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Internal`] on malformed fragments
    /// (identifier arity disagreement).
    pub fn build(fragments: &[Fragment], range_position: Option<usize>) -> Result<Self> {
        let catalog = FragmentCatalog::from_fragments(fragments);
        let (inverted, graph) = par::join(
            || InvertedFragmentIndex::build(&catalog, fragments),
            || FragmentGraph::build(&catalog, fragments, range_position),
        );
        Ok(FragmentIndex {
            catalog,
            inverted,
            graph: graph?,
        })
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Removes one fragment from every structure (incremental
    /// maintenance). Returns whether anything was removed. The handle
    /// stays interned (a tombstone), so re-adding the same identifier
    /// later re-uses it.
    pub fn remove_fragment(&mut self, id: &FragmentId) -> bool {
        let Some(frag) = self.catalog.frag(id) else {
            return false;
        };
        let touched = self.inverted.remove_fragment(&self.catalog, frag);
        let removed = self.graph.remove(frag);
        if removed {
            self.inverted
                .set_fragment_count(self.graph.node_count() as u64);
        }
        touched > 0 || removed
    }

    /// Splices one freshly derived fragment into every structure
    /// (incremental maintenance).
    pub fn add_fragment(&mut self, fragment: &Fragment) {
        self.catalog.intern(fragment);
        self.inverted.add_fragment(&self.catalog, fragment);
        self.graph.insert(&self.catalog, fragment);
        self.inverted
            .set_fragment_count(self.graph.node_count() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_relation::Value;
    use std::collections::BTreeMap;

    fn fragment(cuisine: &str, budget: i64, words: &[(&str, u64)]) -> Fragment {
        let occ: BTreeMap<String, u64> = words.iter().map(|(w, n)| (w.to_string(), *n)).collect();
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
            occ,
            1,
        )
    }

    fn sample() -> Vec<Fragment> {
        vec![
            fragment("American", 9, &[("coffee", 1), ("nice", 1)]),
            fragment("American", 10, &[("burger", 2), ("queen", 1)]),
            fragment("American", 12, &[("burger", 1), ("fries", 1)]),
            fragment("Thai", 10, &[("burger", 1), ("thai", 1)]),
        ]
    }

    #[test]
    fn build_wires_all_parts_to_one_catalog() {
        let fragments = sample();
        let index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        assert_eq!(index.fragment_count(), 4);
        assert_eq!(index.catalog.len(), 4);
        // A posting's handle locates in the graph and resolves to an id.
        let burger = index.inverted.postings("burger").unwrap();
        for p in burger {
            let node = index.graph.locate(p.frag).expect("posting node");
            assert_eq!(index.graph.frag_at(node), Some(p.frag));
            assert!(index.catalog.frag(index.catalog.id(p.frag)) == Some(p.frag));
        }
    }

    #[test]
    fn double_add_replaces_instead_of_duplicating() {
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        // Re-adding a live fragment (no remove first) must replace its
        // node and postings, not splice duplicates.
        let updated = fragment("American", 10, &[("burger", 5), ("queen", 1)]);
        index.add_fragment(&updated);
        assert_eq!(index.fragment_count(), 4);
        let frag = index.catalog.frag(&updated.id).unwrap();
        let node = index.graph.locate(frag).unwrap();
        assert_eq!(index.graph.frag_at(node), Some(frag));
        assert_eq!(
            index
                .graph
                .group_nodes(node.group)
                .iter()
                .filter(|&&f| f == frag)
                .count(),
            1
        );
        let kw = index.inverted.kw("burger").unwrap();
        assert_eq!(index.inverted.occurrences(kw, frag), 5);
        // And it can still be removed cleanly afterwards.
        assert!(index.remove_fragment(&updated.id));
        assert_eq!(index.fragment_count(), 3);
    }

    #[test]
    fn maintenance_round_trip_matches_rebuild() {
        let fragments = sample();
        let mut index = FragmentIndex::build(&fragments, Some(1)).unwrap();
        let id = fragments[1].id.clone();
        assert!(index.remove_fragment(&id));
        assert!(!index.remove_fragment(&id));
        assert_eq!(index.fragment_count(), 3);
        index.add_fragment(&fragments[1]);
        assert_eq!(index.fragment_count(), 4);
        let rebuilt = FragmentIndex::build(&fragments, Some(1)).unwrap();
        for word in ["burger", "coffee", "queen", "thai"] {
            assert_eq!(
                index.inverted.postings(word).map(|p| p
                    .iter()
                    .map(|x| (index.catalog.id(x.frag).clone(), x.occurrences))
                    .collect::<Vec<_>>()),
                rebuilt.inverted.postings(word).map(|p| p
                    .iter()
                    .map(|x| (rebuilt.catalog.id(x.frag).clone(), x.occurrences))
                    .collect::<Vec<_>>()),
                "{word}"
            );
        }
        assert_eq!(index.graph.edge_count(), rebuilt.graph.edge_count());
    }
}
