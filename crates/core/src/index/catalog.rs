//! Interned fragment handles.
//!
//! The seed implementation keyed every index structure on
//! [`FragmentId`] = `Vec<Value>`, so each posting, graph node and top-k
//! candidate carried (and cloned) multi-value vectors on the hot path.
//! The [`FragmentCatalog`] assigns each crawled fragment a dense
//! [`Frag`] handle (`u32`) once, at build/maintenance time; everything
//! downstream — inverted lists, graph columns, search candidates — is
//! handle-native and resolves back to identifiers only at the output
//! boundary. Dense handles also index straight into columnar arrays
//! (weights, node positions), which is what makes the fragment graph's
//! `locate` O(1) and keeps the index layout shard- and mmap-friendly.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::fragment::{Fragment, FragmentId};

/// A dense interned fragment handle. `Frag(i)` indexes the catalog's
/// columns directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frag(pub u32);

impl Frag {
    /// The handle as a column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense interned keyword handle (see
/// [`KeywordInterner`](crate::index::inverted::KeywordInterner)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kw(pub u32);

impl Kw {
    /// The handle as a column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The fragment interner: identifier ⇄ handle, plus the per-fragment
/// columns every layer shares (total keywords = node weight, record
/// count).
///
/// Handles are append-only: removing a fragment from the *index*
/// leaves its handle interned (a tombstone), so handles held anywhere
/// stay valid; re-adding the same identifier re-uses its handle and
/// refreshes the columns.
#[derive(Debug, Clone, Default)]
pub struct FragmentCatalog {
    ids: Vec<FragmentId>,
    /// Identifier→handle map, derived from `ids`. Lazily materialized
    /// (`OnceLock`) so the arena-image load path — which only ever
    /// *searches* until the first delta arrives — never pays the O(n)
    /// hash-map build; `intern`/`frag` force it on first use.
    lookup: OnceLock<HashMap<FragmentId, Frag>>,
    total_keywords: Vec<u64>,
    record_counts: Vec<u64>,
}

impl FragmentCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns every fragment, in order — when `fragments` is sorted by
    /// identifier (crawls produce sorted output), handle order equals
    /// identifier order.
    pub fn from_fragments(fragments: &[Fragment]) -> Self {
        let refs: Vec<&Fragment> = fragments.iter().collect();
        Self::from_refs(&refs)
    }

    /// [`FragmentCatalog::from_fragments`] over borrowed fragments — the
    /// zero-copy build path the sharded partition uses (shard parts are
    /// reference runs into one crawl output, never clones).
    pub fn from_refs(fragments: &[&Fragment]) -> Self {
        let mut catalog = FragmentCatalog {
            ids: Vec::with_capacity(fragments.len()),
            lookup: OnceLock::from(HashMap::with_capacity(fragments.len())),
            total_keywords: Vec::with_capacity(fragments.len()),
            record_counts: Vec::with_capacity(fragments.len()),
        };
        for f in fragments {
            catalog.intern(f);
        }
        catalog
    }

    /// The identifier→handle map, built from `ids` on first use.
    fn lookup(&self) -> &HashMap<FragmentId, Frag> {
        self.lookup.get_or_init(|| {
            self.ids
                .iter()
                .enumerate()
                .map(|(i, id)| (id.clone(), Frag(i as u32)))
                .collect()
        })
    }

    /// Interns one fragment, refreshing its columns if already known.
    pub fn intern(&mut self, fragment: &Fragment) -> Frag {
        self.lookup();
        let lookup = self.lookup.get_mut().expect("lookup initialized above");
        if let Some(&frag) = lookup.get(&fragment.id) {
            self.total_keywords[frag.index()] = fragment.total_keywords;
            self.record_counts[frag.index()] = fragment.record_count;
            return frag;
        }
        let frag = Frag(u32::try_from(self.ids.len()).expect("more than u32::MAX fragments"));
        self.ids.push(fragment.id.clone());
        lookup.insert(fragment.id.clone(), frag);
        self.total_keywords.push(fragment.total_keywords);
        self.record_counts.push(fragment.record_count);
        frag
    }

    /// The handle of an identifier, if interned.
    #[inline]
    pub fn frag(&self, id: &FragmentId) -> Option<Frag> {
        self.lookup().get(id).copied()
    }

    /// The identifier behind a handle.
    #[inline]
    pub fn id(&self, frag: Frag) -> &FragmentId {
        &self.ids[frag.index()]
    }

    /// The fragment's total keyword count (its graph node weight).
    #[inline]
    pub fn total_keywords(&self, frag: Frag) -> u64 {
        self.total_keywords[frag.index()]
    }

    /// The fragment's joined-record count.
    #[inline]
    pub fn record_count(&self, frag: Frag) -> u64 {
        self.record_counts[frag.index()]
    }

    /// Number of interned handles (tombstones included).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing was ever interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Compares two handles by their *identifiers* — the order every
    /// deterministic tie-break uses. Equals numeric handle order while
    /// interning happened in identifier order.
    #[inline]
    pub fn cmp_ids(&self, a: Frag, b: Frag) -> std::cmp::Ordering {
        self.ids[a.index()].cmp(&self.ids[b.index()])
    }

    /// The catalog's columns in handle order — the arena-image dump
    /// view (`persist` v2). The `lookup` map is derived state and not
    /// part of the image.
    pub(crate) fn image_parts(&self) -> (&[FragmentId], &[u64], &[u64]) {
        (&self.ids, &self.total_keywords, &self.record_counts)
    }

    /// Reassembles a catalog from dumped columns — the arena-image load
    /// path. The identifier→handle map is NOT built here: searches
    /// never consult it, so a loaded shard defers the O(n) hash build
    /// until the first `intern`/`frag` call (the first applied delta).
    /// Columns must be equal-length and in handle order.
    pub(crate) fn from_image_parts(
        ids: Vec<FragmentId>,
        total_keywords: Vec<u64>,
        record_counts: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(ids.len(), total_keywords.len());
        debug_assert_eq!(ids.len(), record_counts.len());
        FragmentCatalog {
            ids,
            lookup: OnceLock::new(),
            total_keywords,
            record_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_relation::Value;
    use std::collections::BTreeMap;

    fn fragment(cuisine: &str, budget: i64, total: u64) -> Fragment {
        let mut occ = BTreeMap::new();
        occ.insert("w".to_string(), total);
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)]),
            occ,
            total,
        )
    }

    #[test]
    fn roundtrip_id_handle_id() {
        let fragments = vec![
            fragment("American", 9, 8),
            fragment("American", 10, 8),
            fragment("Thai", 10, 10),
        ];
        let catalog = FragmentCatalog::from_fragments(&fragments);
        assert_eq!(catalog.len(), 3);
        for f in &fragments {
            let h = catalog.frag(&f.id).expect("interned");
            assert_eq!(catalog.id(h), &f.id);
            assert_eq!(catalog.total_keywords(h), f.total_keywords);
            assert_eq!(catalog.record_count(h), f.record_count);
        }
        assert_eq!(
            catalog.frag(&FragmentId::new(vec![Value::str("Nope"), Value::Int(1)])),
            None
        );
    }

    #[test]
    fn handles_are_dense_and_ordered_for_sorted_input() {
        let fragments = vec![
            fragment("American", 9, 8),
            fragment("American", 10, 8),
            fragment("Thai", 10, 10),
        ];
        let catalog = FragmentCatalog::from_fragments(&fragments);
        for (i, f) in fragments.iter().enumerate() {
            assert_eq!(catalog.frag(&f.id), Some(Frag(i as u32)));
        }
        assert_eq!(catalog.cmp_ids(Frag(0), Frag(2)), std::cmp::Ordering::Less);
    }

    #[test]
    fn reintern_refreshes_columns_and_keeps_handle() {
        let mut catalog = FragmentCatalog::new();
        let first = fragment("American", 9, 8);
        let h = catalog.intern(&first);
        let updated = fragment("American", 9, 13);
        assert_eq!(catalog.intern(&updated), h);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.total_keywords(h), 13);
    }
}
