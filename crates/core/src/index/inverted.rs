//! The inverted fragment index (Figure 6 of the paper), columnar.
//!
//! Structurally a conventional inverted file with *fragment handles* in
//! place of URLs: for each keyword, the fragments containing it with
//! their occurrence counts, sorted by descending TF. `IDF_w` is
//! approximated as `1 / |L_w|` — the inverse of the number of fragments
//! containing `w` (Section VI).
//!
//! Storage is two contiguous arenas sharing one offset table, indexed
//! by interned [`Kw`] handles:
//!
//! * `tf_arena` — every keyword's posting list sorted by descending TF
//!   (the order the top-k seeding cursor walks), one keyword after the
//!   next;
//! * `probe_arena` — the same postings sorted by fragment handle, so
//!   the occurrence of *any* fragment (an expansion neighbor) is one
//!   binary search away, replacing the seed's per-keyword
//!   `HashMap<FragmentId, u64>` maps and their clone-heavy probes.
//!
//! Posting lists never allocate per entry; building sorts each
//! keyword's slice independently (parallelized across lists).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::fragment::Fragment;
use crate::index::catalog::{Frag, FragmentCatalog, Kw};
use crate::par;

/// One entry of a TF-sorted inverted list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The fragment containing the keyword.
    pub frag: Frag,
    /// Raw occurrence count of the keyword in the fragment.
    pub occurrences: u64,
    /// Term frequency (occurrences / fragment keyword total),
    /// precomputed so the hot seeding loop never divides or chases the
    /// catalog.
    pub tf: f64,
}

/// One entry of a fragment-sorted probe list. Crate-visible so the
/// arena-image loader (`persist` v2) can decode its column bytes
/// straight into the final arena, no intermediate tuple vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProbeEntry {
    pub(crate) frag: Frag,
    pub(crate) occurrences: u64,
}

/// The keyword interner: keyword string ⇄ dense [`Kw`] handle.
#[derive(Debug, Clone, Default)]
pub struct KeywordInterner {
    words: Vec<String>,
    lookup: HashMap<String, Kw>,
}

impl KeywordInterner {
    /// Interns `word`, returning its stable handle.
    pub fn intern(&mut self, word: &str) -> Kw {
        if let Some(&kw) = self.lookup.get(word) {
            return kw;
        }
        let kw = Kw(u32::try_from(self.words.len()).expect("more than u32::MAX keywords"));
        self.words.push(word.to_string());
        self.lookup.insert(word.to_string(), kw);
        kw
    }

    /// The handle of `word`, if interned.
    #[inline]
    pub fn kw(&self, word: &str) -> Option<Kw> {
        self.lookup.get(word).copied()
    }

    /// The keyword behind a handle.
    #[inline]
    pub fn word(&self, kw: Kw) -> &str {
        &self.words[kw.index()]
    }

    /// Number of interned keywords (including ones whose lists emptied).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The interned words in handle order — the arena-image dump view.
    /// The `lookup` map is derived state and not part of the image.
    pub(crate) fn image_words(&self) -> &[String] {
        &self.words
    }

    /// Reassembles an interner from dumped words, re-deriving the
    /// word→handle map in one O(n) pass — the arena-image load path.
    pub(crate) fn from_image_words(words: Vec<String>) -> Self {
        let lookup = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), Kw(i as u32)))
            .collect();
        KeywordInterner { words, lookup }
    }
}

/// Per-keyword slice bounds, shared by both arenas.
#[derive(Debug, Clone, Copy, Default)]
struct ListRef {
    start: u32,
    len: u32,
}

/// The inverted half of the fragment index.
#[derive(Debug, Clone, Default)]
pub struct InvertedFragmentIndex {
    interner: KeywordInterner,
    lists: Vec<ListRef>,
    tf_arena: Vec<Posting>,
    probe_arena: Vec<ProbeEntry>,
    fragment_count: u64,
}

impl InvertedFragmentIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index from materialized fragments; every fragment must
    /// already be interned in `catalog`.
    pub fn build(catalog: &FragmentCatalog, fragments: &[Fragment]) -> Self {
        let refs: Vec<&Fragment> = fragments.iter().collect();
        Self::build_refs(catalog, &refs)
    }

    /// [`InvertedFragmentIndex::build`] over borrowed fragments — the
    /// zero-copy path shard construction uses.
    pub fn build_refs(catalog: &FragmentCatalog, fragments: &[&Fragment]) -> Self {
        let mut interner = KeywordInterner::default();
        // Pass 1: intern keywords, count list lengths.
        let mut counts: Vec<u32> = Vec::new();
        for f in fragments {
            for word in f.keyword_occurrences.keys() {
                let kw = interner.intern(word);
                if kw.index() == counts.len() {
                    counts.push(0);
                }
                counts[kw.index()] += 1;
            }
        }
        // Offsets: one prefix sum shared by both arenas.
        let mut lists = Vec::with_capacity(counts.len());
        let mut total = 0u32;
        for &len in &counts {
            lists.push(ListRef { start: total, len });
            total += len;
        }
        // Pass 2: place postings keyword-major. When fragments arrive
        // in ascending handle order (the common case: a crawl interned
        // in identifier order) each probe slice comes out sorted by
        // fragment already; out-of-order input is detected and the
        // affected slices re-sorted, since the occurrence probe binary
        // searches them.
        let mut probe_arena = vec![
            ProbeEntry {
                frag: Frag(0),
                occurrences: 0
            };
            total as usize
        ];
        let mut cursors: Vec<u32> = lists.iter().map(|l| l.start).collect();
        let mut monotone = true;
        let mut prev = None;
        for f in fragments {
            let frag = catalog.frag(&f.id).expect("fragment interned in catalog");
            monotone &= prev.is_none_or(|p| p < frag);
            prev = Some(frag);
            for (word, &occurrences) in &f.keyword_occurrences {
                let kw = interner.kw(word).expect("interned in pass 1");
                let at = cursors[kw.index()];
                probe_arena[at as usize] = ProbeEntry { frag, occurrences };
                cursors[kw.index()] = at + 1;
            }
        }
        if !monotone {
            for list in &lists {
                let slice = &mut probe_arena[list.start as usize..(list.start + list.len) as usize];
                slice.sort_unstable_by_key(|e| e.frag);
            }
        }
        let mut index = InvertedFragmentIndex {
            interner,
            lists,
            tf_arena: Vec::new(),
            probe_arena,
            fragment_count: fragments.len() as u64,
        };
        index.rebuild_tf_arena(catalog);
        index
    }

    /// Recomputes the TF-sorted arena from the probe arena, sorting
    /// every keyword's slice independently (in parallel).
    fn rebuild_tf_arena(&mut self, catalog: &FragmentCatalog) {
        self.tf_arena = self
            .probe_arena
            .iter()
            .map(|p| Posting {
                frag: p.frag,
                occurrences: p.occurrences,
                tf: tf_of(catalog, p.frag, p.occurrences),
            })
            .collect();
        // Carve the arena into per-keyword slices and sort each:
        // descending TF, ties by ascending fragment identifier (a total
        // order — index layout is independent of insertion order).
        let mut slices: Vec<&mut [Posting]> = Vec::with_capacity(self.lists.len());
        let mut rest: &mut [Posting] = &mut self.tf_arena;
        for list in &self.lists {
            let (head, tail) = rest.split_at_mut(list.len as usize);
            slices.push(head);
            rest = tail;
        }
        par::for_each(slices, |slice| {
            slice.sort_unstable_by(|a, b| {
                b.tf.partial_cmp(&a.tf)
                    .expect("finite TF")
                    .then_with(|| catalog.cmp_ids(a.frag, b.frag))
            });
        });
    }

    /// The TF-sorted inverted list for `word` (`None` when no fragment
    /// has it).
    #[inline]
    pub fn postings(&self, word: &str) -> Option<&[Posting]> {
        let list = self.interner.kw(word).map(|kw| self.lists[kw.index()])?;
        if list.len == 0 {
            return None;
        }
        Some(&self.tf_arena[list.start as usize..(list.start + list.len) as usize])
    }

    /// The TF-sorted inverted list for an interned keyword.
    #[inline]
    pub fn postings_kw(&self, kw: Kw) -> &[Posting] {
        let list = self.lists[kw.index()];
        &self.tf_arena[list.start as usize..(list.start + list.len) as usize]
    }

    /// The handle of `word`, if any fragment contains it.
    #[inline]
    pub fn kw(&self, word: &str) -> Option<Kw> {
        let kw = self.interner.kw(word)?;
        if self.lists[kw.index()].len == 0 {
            return None;
        }
        Some(kw)
    }

    /// The keyword behind a handle.
    pub fn word(&self, kw: Kw) -> &str {
        self.interner.word(kw)
    }

    /// Occurrences of keyword `kw` in fragment `frag` — the O(log L)
    /// probe the top-k search uses for expansion neighbors (replaces
    /// the seed's clone-per-call `occurrences_of` map API).
    #[inline]
    pub fn occurrences(&self, kw: Kw, frag: Frag) -> u64 {
        let list = self.lists[kw.index()];
        let slice = &self.probe_arena[list.start as usize..(list.start + list.len) as usize];
        match slice.binary_search_by(|e| e.frag.cmp(&frag)) {
            Ok(i) => slice[i].occurrences,
            Err(_) => 0,
        }
    }

    /// Fragment frequency of `word` (`|L_w|`).
    pub fn df(&self, word: &str) -> usize {
        self.interner
            .kw(word)
            .map_or(0, |kw| self.lists[kw.index()].len as usize)
    }

    /// Fragment frequency of an interned keyword.
    #[inline]
    pub fn df_kw(&self, kw: Kw) -> usize {
        self.lists[kw.index()].len as usize
    }

    /// `IDF_w = 1 / |L_w|` — Dash's fragment-based IDF approximation.
    pub fn idf(&self, word: &str) -> f64 {
        match self.df(word) {
            0 => 0.0,
            n => 1.0 / n as f64,
        }
    }

    /// IDF of an interned keyword.
    #[inline]
    pub fn idf_kw(&self, kw: Kw) -> f64 {
        match self.df_kw(kw) {
            0 => 0.0,
            n => 1.0 / n as f64,
        }
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> u64 {
        self.fragment_count
    }

    /// Number of distinct keywords with a non-empty list.
    pub fn keyword_count(&self) -> usize {
        self.lists.iter().filter(|l| l.len > 0).count()
    }

    /// Keywords by descending fragment frequency (for hot/warm/cold
    /// keyword selection in the evaluation).
    pub fn keywords_by_df(&self) -> Vec<(&str, usize)> {
        let mut out: Vec<(&str, usize)> = self
            .lists
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len > 0)
            .map(|(i, l)| (self.interner.word(Kw(i as u32)), l.len as usize))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// Applies one batched mutation — every posting splice of an
    /// [`IndexDelta`](crate::update::IndexDelta) — in a single pass:
    /// drops the postings of `removes`, supersedes the postings of
    /// re-added fragments, merges the additions at their fragment-sorted
    /// positions, and re-sorts the TF arena **once** for the whole
    /// batch (the per-fragment maintenance of earlier revisions paid one
    /// full TF re-sort per fragment). Every added fragment must already
    /// be interned in `catalog`. Returns the number of postings removed
    /// on behalf of `removes`.
    pub fn apply_delta(
        &mut self,
        catalog: &FragmentCatalog,
        removes: &[Frag],
        adds: &[&Fragment],
    ) -> usize {
        if removes.is_empty() && adds.is_empty() {
            return 0;
        }
        // Cheap pre-probe: a removes-only delta whose targets carry no
        // live postings (e.g. already-tombstoned handles) skips the
        // whole arena rewrite — O(lists · log L) probes instead of an
        // O(postings) copy.
        if adds.is_empty() && !removes.iter().any(|&frag| self.has_postings(frag)) {
            return 0;
        }
        let removed_set: HashSet<Frag> = removes.iter().copied().collect();
        // Per-keyword posting splices, interning new keywords up front so
        // `lists` covers them; a re-added fragment's stale postings are
        // superseded, not counted as removals.
        let mut replacing: HashSet<Frag> = HashSet::with_capacity(adds.len());
        let mut add_postings: HashMap<Kw, Vec<ProbeEntry>> = HashMap::new();
        let mut added = 0usize;
        for fragment in adds {
            let frag = catalog.frag(&fragment.id).expect("fragment interned");
            replacing.insert(frag);
            for (word, &occurrences) in &fragment.keyword_occurrences {
                let kw = self.interner.intern(word);
                if kw.index() == self.lists.len() {
                    self.lists.push(ListRef::default());
                }
                add_postings
                    .entry(kw)
                    .or_default()
                    .push(ProbeEntry { frag, occurrences });
                added += 1;
            }
        }
        for entries in add_postings.values_mut() {
            entries.sort_unstable_by_key(|e| e.frag);
        }
        // One rewrite of the probe arena: each list keeps its surviving
        // postings (frag-sorted) merged with its additions.
        let mut arena = Vec::with_capacity(self.probe_arena.len() + added);
        let mut lists = Vec::with_capacity(self.lists.len());
        let mut touched = 0usize;
        let mut superseded = 0usize;
        for (i, list) in self.lists.iter().enumerate() {
            let start = arena.len() as u32;
            let slice = &self.probe_arena[list.start as usize..(list.start + list.len) as usize];
            let mut additions = add_postings
                .remove(&Kw(i as u32))
                .unwrap_or_default()
                .into_iter()
                .peekable();
            for &entry in slice {
                if replacing.contains(&entry.frag) {
                    superseded += 1;
                    continue;
                }
                if removed_set.contains(&entry.frag) {
                    touched += 1;
                    continue;
                }
                while additions.peek().is_some_and(|a| a.frag < entry.frag) {
                    arena.push(additions.next().expect("peeked"));
                }
                arena.push(entry);
            }
            arena.extend(additions);
            lists.push(ListRef {
                start,
                len: (arena.len() as u32) - start,
            });
        }
        if touched == 0 && superseded == 0 && added == 0 {
            // Nothing matched (e.g. removing an already-tombstoned id):
            // keep the existing arenas, skip the TF re-sort.
            return 0;
        }
        self.probe_arena = arena;
        self.lists = lists;
        self.rebuild_tf_arena(catalog);
        touched
    }

    /// Removes every posting of `frag` (incremental maintenance).
    /// Returns the number of inverted lists touched.
    pub fn remove_fragment(&mut self, catalog: &FragmentCatalog, frag: Frag) -> usize {
        self.apply_delta(catalog, &[frag], &[])
    }

    /// Adds the postings of a single fragment (incremental maintenance),
    /// replacing any live postings it already had. The fragment must
    /// already be interned in `catalog`.
    pub fn add_fragment(&mut self, catalog: &FragmentCatalog, fragment: &Fragment) {
        self.apply_delta(catalog, &[], &[fragment]);
        self.fragment_count += 1;
    }

    /// The keyword-occurrence maps of **every** live fragment,
    /// reconstructed in one pass over the probe arena — O(total
    /// postings). This is the dump path of per-shard persistence: the
    /// index stores no fragment-major copy of the occurrence maps, so
    /// a shard's fragments are re-derived keyword-major (probing
    /// per-fragment instead would cost O(fragments × keywords log L)).
    pub fn all_fragment_terms(&self) -> HashMap<Frag, BTreeMap<String, u64>> {
        let mut terms: HashMap<Frag, BTreeMap<String, u64>> = HashMap::new();
        for (i, list) in self.lists.iter().enumerate() {
            if list.len == 0 {
                continue;
            }
            let word = self.interner.word(Kw(i as u32));
            let slice = &self.probe_arena[list.start as usize..(list.start + list.len) as usize];
            for entry in slice {
                terms
                    .entry(entry.frag)
                    .or_default()
                    .insert(word.to_string(), entry.occurrences);
            }
        }
        terms
    }

    /// The live keywords of **one** fragment, with occurrence counts —
    /// one binary search per inverted list, O(keywords · log L). The
    /// serving layer uses this to widen a delta's invalidation
    /// signature with the terms a removed fragment is about to take out
    /// of the index (for whole-index dumps use
    /// [`InvertedFragmentIndex::all_fragment_terms`], which amortizes
    /// the arena walk across every fragment at once).
    pub fn fragment_terms(&self, frag: Frag) -> Vec<(&str, u64)> {
        let mut terms = Vec::new();
        for (i, list) in self.lists.iter().enumerate() {
            if list.len == 0 {
                continue;
            }
            let slice = &self.probe_arena[list.start as usize..(list.start + list.len) as usize];
            if let Ok(at) = slice.binary_search_by(|e| e.frag.cmp(&frag)) {
                terms.push((self.interner.word(Kw(i as u32)), slice[at].occurrences));
            }
        }
        terms
    }

    /// Whether any inverted list holds a posting for `frag` (one binary
    /// search per list — the no-op-removal pre-probe).
    fn has_postings(&self, frag: Frag) -> bool {
        self.lists.iter().any(|list| {
            let slice = &self.probe_arena[list.start as usize..(list.start + list.len) as usize];
            slice.binary_search_by(|e| e.frag.cmp(&frag)).is_ok()
        })
    }

    /// Adjusts the stored fragment count (used by incremental
    /// maintenance after removals).
    pub fn set_fragment_count(&mut self, count: u64) {
        self.fragment_count = count;
    }

    /// Total postings across every inverted list.
    pub fn posting_count(&self) -> usize {
        self.tf_arena.len()
    }

    /// The per-keyword slice bounds as `(start, len)` pairs in handle
    /// order — the arena-image dump view of the shared offset table.
    pub(crate) fn image_lists(&self) -> impl ExactSizeIterator<Item = (u32, u32)> + '_ {
        self.lists.iter().map(|l| (l.start, l.len))
    }

    /// The TF-sorted arena, exactly as laid out in memory.
    pub(crate) fn image_tf_arena(&self) -> &[Posting] {
        &self.tf_arena
    }

    /// The fragment-sorted probe arena as `(frag, occurrences)` pairs.
    pub(crate) fn image_probe(&self) -> impl ExactSizeIterator<Item = (u32, u64)> + '_ {
        self.probe_arena.iter().map(|e| (e.frag.0, e.occurrences))
    }

    /// The interner behind the index (arena-image dump view).
    pub(crate) fn image_interner(&self) -> &KeywordInterner {
        &self.interner
    }

    /// Reassembles an index from dumped arenas without re-sorting a
    /// single list — the arena-image load path. Callers are expected to
    /// hand back exactly what [`InvertedFragmentIndex::image_lists`] /
    /// `image_tf_arena` / `image_probe` produced (the checksummed v2
    /// persist sections), so both arenas arrive already in their final
    /// sort orders.
    pub(crate) fn from_image_parts(
        interner: KeywordInterner,
        lists: Vec<(u32, u32)>,
        tf_arena: Vec<Posting>,
        probe_arena: Vec<ProbeEntry>,
        fragment_count: u64,
    ) -> Self {
        InvertedFragmentIndex {
            interner,
            lists: lists
                .into_iter()
                .map(|(start, len)| ListRef { start, len })
                .collect(),
            tf_arena,
            probe_arena,
            fragment_count,
        }
    }
}

#[inline]
fn tf_of(catalog: &FragmentCatalog, frag: Frag, occurrences: u64) -> f64 {
    let total = catalog.total_keywords(frag);
    if total == 0 {
        0.0
    } else {
        occurrences as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentId;
    use dash_relation::Value;
    use std::collections::BTreeMap;

    fn fragment(id: &[Value], words: &[(&str, u64)]) -> Fragment {
        let occ: BTreeMap<String, u64> = words.iter().map(|(w, n)| (w.to_string(), *n)).collect();
        Fragment::new(FragmentId::new(id.to_vec()), occ, 1)
    }

    /// The paper's Figure 6 sample: burger appears in (American,10) ×2,
    /// (American,12) ×1, (Thai,10) ×1.
    fn figure_6_fragments() -> Vec<Fragment> {
        vec![
            fragment(
                &[Value::str("American"), Value::Int(9)],
                &[("coffee", 1), ("nice", 1), ("cafe", 1)],
            ),
            fragment(
                &[Value::str("American"), Value::Int(10)],
                &[("burger", 2), ("queen", 1), ("experts", 1)],
            ),
            fragment(
                &[Value::str("American"), Value::Int(12)],
                &[("burger", 1), ("fries", 1), ("unique", 1), ("bad", 1)],
            ),
            fragment(
                &[Value::str("Thai"), Value::Int(10)],
                &[("burger", 1), ("thai", 1)],
            ),
        ]
    }

    fn build() -> (FragmentCatalog, InvertedFragmentIndex) {
        let fragments = figure_6_fragments();
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let index = InvertedFragmentIndex::build(&catalog, &fragments);
        (catalog, index)
    }

    #[test]
    fn df_and_idf_match_figure_6() {
        let (_, idx) = build();
        assert_eq!(idx.df("burger"), 3);
        assert!((idx.idf("burger") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(idx.df("coffee"), 1);
        assert_eq!(idx.df("fries"), 1);
        assert_eq!(idx.fragment_count(), 4);
        assert_eq!(idx.posting_count(), 12);
    }

    #[test]
    fn postings_tf_sorted() {
        let (catalog, idx) = build();
        let burger = idx.postings("burger").unwrap();
        // (American,10) has TF 2/4 here — the highest.
        assert_eq!(
            catalog.id(burger[0].frag),
            &FragmentId::new(vec![Value::str("American"), Value::Int(10)])
        );
        assert!(burger[0].tf >= burger[1].tf);
        assert!(burger[1].tf >= burger[2].tf);
    }

    #[test]
    fn probe_finds_arbitrary_fragments() {
        let (catalog, idx) = build();
        let kw = idx.kw("burger").unwrap();
        let ten = catalog
            .frag(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(10),
            ]))
            .unwrap();
        let nine = catalog
            .frag(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(9),
            ]))
            .unwrap();
        assert_eq!(idx.occurrences(kw, ten), 2);
        assert_eq!(idx.occurrences(kw, nine), 0);
        assert_eq!(idx.kw("zzz"), None);
    }

    #[test]
    fn incremental_remove_and_add() {
        let fragments = figure_6_fragments();
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let mut idx = InvertedFragmentIndex::build(&catalog, &fragments);
        let target = catalog
            .frag(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(10),
            ]))
            .unwrap();
        let touched = idx.remove_fragment(&catalog, target);
        assert_eq!(touched, 3); // burger, queen, experts
        assert_eq!(idx.df("burger"), 2);
        assert_eq!(idx.postings("queen"), None);
        idx.add_fragment(&catalog, &fragments[1]);
        assert_eq!(idx.df("burger"), 3);
        let kw = idx.kw("burger").unwrap();
        assert_eq!(idx.occurrences(kw, target), 2);
    }

    #[test]
    fn maintenance_converges_to_bulk_layout() {
        let fragments = figure_6_fragments();
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let bulk = InvertedFragmentIndex::build(&catalog, &fragments);
        let mut incremental = InvertedFragmentIndex::build(&catalog, &fragments);
        let target = catalog
            .frag(&FragmentId::new(vec![
                Value::str("American"),
                Value::Int(10),
            ]))
            .unwrap();
        incremental.remove_fragment(&catalog, target);
        incremental.set_fragment_count(3);
        incremental.add_fragment(&catalog, &fragments[1]);
        for word in ["burger", "coffee", "queen", "thai", "fries"] {
            assert_eq!(bulk.postings(word), incremental.postings(word), "{word}");
        }
        assert_eq!(bulk.fragment_count(), incremental.fragment_count());
    }

    #[test]
    fn build_tolerates_out_of_order_fragments() {
        // The catalog interned one order; the build slice iterates
        // another. Probe slices must still binary-search correctly.
        let fragments = figure_6_fragments();
        let catalog = FragmentCatalog::from_fragments(&fragments);
        let mut reordered = fragments.clone();
        reordered.reverse();
        let idx = InvertedFragmentIndex::build(&catalog, &reordered);
        let kw = idx.kw("burger").unwrap();
        for f in &fragments {
            let frag = catalog.frag(&f.id).unwrap();
            assert_eq!(
                idx.occurrences(kw, frag),
                f.occurrences("burger"),
                "probe for {}",
                f.id
            );
        }
        let sorted = InvertedFragmentIndex::build(&catalog, &fragments);
        for word in ["burger", "coffee", "thai"] {
            assert_eq!(idx.postings(word), sorted.postings(word), "{word}");
        }
    }

    #[test]
    fn keywords_by_df_ranks_hot_first() {
        let (_, idx) = build();
        let ranked = idx.keywords_by_df();
        assert_eq!(ranked[0], ("burger", 3));
        assert_eq!(idx.keyword_count(), ranked.len());
    }
}
