//! The inverted fragment index (Figure 6 of the paper).
//!
//! Structurally a conventional inverted file with *fragment identifiers*
//! in place of URLs: for each keyword, the fragments containing it with
//! their occurrence counts, sorted by descending TF. `IDF_w` is
//! approximated as `1 / |L_w|` — the inverse of the number of fragments
//! containing `w` (Section VI).

use std::collections::HashMap;

use dash_text::{InvertedFile, Posting};

use crate::fragment::{Fragment, FragmentId};

/// The inverted half of the fragment index.
///
/// Alongside each TF-sorted inverted list, a keyword → (fragment →
/// occurrences) map is kept so the top-k search can probe *arbitrary*
/// fragments (expansion neighbors) in O(1) without scanning or
/// rebuilding anything per query.
#[derive(Debug, Clone, Default)]
pub struct InvertedFragmentIndex {
    file: InvertedFile<FragmentId>,
    maps: HashMap<String, HashMap<FragmentId, u64>>,
}

impl InvertedFragmentIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index from materialized fragments.
    pub fn build(fragments: &[Fragment]) -> Self {
        let mut file: InvertedFile<FragmentId> = InvertedFile::new();
        let mut maps: HashMap<String, HashMap<FragmentId, u64>> = HashMap::new();
        for f in fragments {
            for (word, &occurrences) in &f.keyword_occurrences {
                file.add_posting(
                    word.clone(),
                    Posting {
                        doc: f.id.clone(),
                        occurrences,
                        doc_len: f.total_keywords,
                    },
                );
                maps.entry(word.clone())
                    .or_default()
                    .insert(f.id.clone(), occurrences);
            }
        }
        file.set_document_count(fragments.len() as u64);
        file.finalize();
        InvertedFragmentIndex { file, maps }
    }

    /// The TF-sorted inverted list for `word`.
    pub fn postings(&self, word: &str) -> Option<&[Posting<FragmentId>]> {
        self.file.postings(word)
    }

    /// Fragment frequency of `word` (`|L_w|`).
    pub fn df(&self, word: &str) -> usize {
        self.file.df(word)
    }

    /// `IDF_w = 1 / |L_w|` — Dash's fragment-based IDF approximation.
    pub fn idf(&self, word: &str) -> f64 {
        self.file.idf(word)
    }

    /// Number of indexed fragments.
    pub fn fragment_count(&self) -> u64 {
        self.file.document_count()
    }

    /// Number of distinct keywords.
    pub fn keyword_count(&self) -> usize {
        self.file.keyword_count()
    }

    /// Keywords by descending fragment frequency (for hot/warm/cold
    /// keyword selection in the evaluation).
    pub fn keywords_by_df(&self) -> Vec<(&str, usize)> {
        self.file.keywords_by_df()
    }

    /// Per-fragment occurrence counts for one queried keyword — the O(1)
    /// probe the top-k search uses for expansion neighbors. Returns the
    /// prebuilt map, empty when no fragment has the word.
    pub fn occurrences_of(&self, word: &str) -> HashMap<FragmentId, u64> {
        self.maps.get(word).cloned().unwrap_or_default()
    }

    /// Borrowing variant of [`InvertedFragmentIndex::occurrences_of`]
    /// (no clone; `None` when the keyword is unknown).
    pub fn occurrence_map(&self, word: &str) -> Option<&HashMap<FragmentId, u64>> {
        self.maps.get(word)
    }

    /// Removes every posting of `id` (incremental maintenance). Returns
    /// the number of inverted lists touched.
    pub fn remove_fragment(&mut self, id: &FragmentId) -> usize {
        self.maps.retain(|_, m| {
            m.remove(id);
            !m.is_empty()
        });
        self.file.remove_document(id)
    }

    /// Adds the postings of a single fragment and re-sorts affected lists
    /// (incremental maintenance).
    pub fn add_fragment(&mut self, fragment: &Fragment) {
        for (word, &occurrences) in &fragment.keyword_occurrences {
            self.file.add_posting(
                word.clone(),
                Posting {
                    doc: fragment.id.clone(),
                    occurrences,
                    doc_len: fragment.total_keywords,
                },
            );
            self.maps
                .entry(word.clone())
                .or_default()
                .insert(fragment.id.clone(), occurrences);
        }
        self.file.set_document_count(self.file.document_count() + 1);
        self.file.finalize();
    }

    /// Adjusts the stored fragment count (used by incremental maintenance
    /// after removals).
    pub fn set_fragment_count(&mut self, count: u64) {
        self.file.set_document_count(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_relation::Value;
    use std::collections::BTreeMap;

    fn fragment(id: &[Value], words: &[(&str, u64)], _len_unused: u64) -> Fragment {
        let occ: BTreeMap<String, u64> = words.iter().map(|(w, n)| (w.to_string(), *n)).collect();
        Fragment::new(FragmentId::new(id.to_vec()), occ, 1)
    }

    /// The paper's Figure 6 sample: burger appears in (American,10) ×2,
    /// (American,12) ×1, (Thai,10) ×1.
    fn figure_6_fragments() -> Vec<Fragment> {
        vec![
            fragment(
                &[Value::str("American"), Value::Int(9)],
                &[("coffee", 1), ("nice", 1), ("cafe", 1)],
                8,
            ),
            fragment(
                &[Value::str("American"), Value::Int(10)],
                &[("burger", 2), ("queen", 1), ("experts", 1)],
                8,
            ),
            fragment(
                &[Value::str("American"), Value::Int(12)],
                &[("burger", 1), ("fries", 1), ("unique", 1), ("bad", 1)],
                17,
            ),
            fragment(
                &[Value::str("Thai"), Value::Int(10)],
                &[("burger", 1), ("thai", 1)],
                10,
            ),
        ]
    }

    #[test]
    fn df_and_idf_match_figure_6() {
        let idx = InvertedFragmentIndex::build(&figure_6_fragments());
        assert_eq!(idx.df("burger"), 3);
        assert!((idx.idf("burger") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(idx.df("coffee"), 1);
        assert_eq!(idx.df("fries"), 1);
        assert_eq!(idx.fragment_count(), 4);
    }

    #[test]
    fn postings_tf_sorted() {
        let idx = InvertedFragmentIndex::build(&figure_6_fragments());
        let burger = idx.postings("burger").unwrap();
        // (American,10) has TF 2/4 here — the highest.
        assert_eq!(
            burger[0].doc,
            FragmentId::new(vec![Value::str("American"), Value::Int(10)])
        );
        assert!(burger[0].tf() >= burger[1].tf());
        assert!(burger[1].tf() >= burger[2].tf());
    }

    #[test]
    fn occurrences_lookup() {
        let idx = InvertedFragmentIndex::build(&figure_6_fragments());
        let occ = idx.occurrences_of("burger");
        assert_eq!(
            occ[&FragmentId::new(vec![Value::str("American"), Value::Int(10)])],
            2
        );
        assert!(idx.occurrences_of("zzz").is_empty());
    }

    #[test]
    fn incremental_remove_and_add() {
        let fragments = figure_6_fragments();
        let mut idx = InvertedFragmentIndex::build(&fragments);
        let target = FragmentId::new(vec![Value::str("American"), Value::Int(10)]);
        let touched = idx.remove_fragment(&target);
        assert_eq!(touched, 3); // burger, queen, experts
        assert_eq!(idx.df("burger"), 2);
        idx.add_fragment(&fragments[1]);
        assert_eq!(idx.df("burger"), 3);
    }
}
