//! Db-page fragments (Definition 2 of the paper).
//!
//! Given a parameterized PSJ query, a *db-page fragment* is the query with
//! every selection predicate pinned to equality on one concrete value
//! combination. The value vector `⟨v1 … vm⟩` — in WHERE-clause order — is
//! the fragment's **identifier**. Fragments partition the full join result
//! disjointly, which is exactly why Dash can index them instead of the
//! (massively overlapping) db-pages.

use std::collections::BTreeMap;
use std::fmt;

use dash_mapreduce::ByteSized;
use dash_relation::Value;
use serde::{Deserialize, Serialize};

/// A fragment identifier: concrete selection-attribute values in
/// WHERE-clause order, e.g. `(American, 10)` for the running example.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FragmentId(pub Vec<Value>);

impl FragmentId {
    /// Creates an identifier from its values.
    pub fn new(values: Vec<Value>) -> Self {
        FragmentId(values)
    }

    /// The identifier's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The values at every position except `skip` (used to derive the
    /// equality-prefix of a fragment-graph group).
    pub fn without(&self, skip: usize) -> Vec<Value> {
        self.0
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| v.clone())
            .collect()
    }
}

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl ByteSized for Fragment {
    /// Identifier + the two u64 scalars + every occurrence-map entry
    /// (length-prefixed keyword + u64 count) — matching what the v1
    /// persist codec writes, so mapreduce byte meters over fragments
    /// track the real dump volume.
    fn byte_size(&self) -> usize {
        self.id.byte_size()
            + 16
            + self
                .keyword_occurrences
                .keys()
                .map(|kw| kw.len() + 4 + 8)
                .sum::<usize>()
    }
}

impl ByteSized for FragmentId {
    fn byte_size(&self) -> usize {
        4 + self
            .0
            .iter()
            .map(|v| match v {
                Value::Null => 1,
                Value::Int(_) => 8,
                Value::Decimal(_) => 8,
                Value::Str(s) => s.len() + 4,
                Value::Date(_) => 4,
            })
            .sum::<usize>()
    }
}

/// A materialized db-page fragment: identifier plus keyword statistics.
///
/// Dash never stores fragment *content* (rows); it stores what search
/// needs — keyword occurrence counts and the total keyword count (the node
/// weight in the fragment graph, e.g. `8` for `(American, 9)` in
/// Example 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragment {
    /// The identifier `⟨v1 … vm⟩`.
    pub id: FragmentId,
    /// Occurrences per keyword, deterministic order.
    pub keyword_occurrences: BTreeMap<String, u64>,
    /// Total keywords in the fragment (`Σ` of the occurrence map).
    pub total_keywords: u64,
    /// Number of joined records the fragment carries.
    pub record_count: u64,
}

impl Fragment {
    /// Creates a fragment from a keyword-occurrence map.
    pub fn new(
        id: FragmentId,
        keyword_occurrences: BTreeMap<String, u64>,
        record_count: u64,
    ) -> Self {
        let total_keywords = keyword_occurrences.values().sum();
        Fragment {
            id,
            keyword_occurrences,
            total_keywords,
            record_count,
        }
    }

    /// Occurrences of one keyword.
    pub fn occurrences(&self, keyword: &str) -> u64 {
        *self.keyword_occurrences.get(keyword).unwrap_or(&0)
    }

    /// Term frequency of `keyword` within the fragment.
    pub fn tf(&self, keyword: &str) -> f64 {
        if self.total_keywords == 0 {
            0.0
        } else {
            self.occurrences(keyword) as f64 / self.total_keywords as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(values: &[Value]) -> FragmentId {
        FragmentId::new(values.to_vec())
    }

    #[test]
    fn identifier_display() {
        let f = id(&[Value::str("American"), Value::Int(10)]);
        assert_eq!(f.to_string(), "(American,10)");
    }

    #[test]
    fn identifier_ordering_groups_eq_prefixes() {
        let mut ids = [
            id(&[Value::str("Thai"), Value::Int(10)]),
            id(&[Value::str("American"), Value::Int(12)]),
            id(&[Value::str("American"), Value::Int(9)]),
        ];
        ids.sort();
        assert_eq!(ids[0].values()[0], Value::str("American"));
        assert_eq!(ids[0].values()[1], Value::Int(9));
        assert_eq!(ids[2].values()[0], Value::str("Thai"));
    }

    #[test]
    fn without_skips_position() {
        let f = id(&[Value::str("American"), Value::Int(10)]);
        assert_eq!(f.without(1), vec![Value::str("American")]);
        assert_eq!(f.without(0), vec![Value::Int(10)]);
    }

    #[test]
    fn byte_size_counts_values() {
        let f = id(&[Value::str("abc"), Value::Int(1)]);
        assert_eq!(f.byte_size(), 4 + 7 + 8);
    }

    #[test]
    fn fragment_totals_and_tf() {
        let mut occ = BTreeMap::new();
        occ.insert("burger".to_string(), 2);
        occ.insert("queen".to_string(), 1);
        occ.insert("experts".to_string(), 1);
        let f = Fragment::new(id(&[Value::str("American"), Value::Int(10)]), occ, 1);
        assert_eq!(f.total_keywords, 4);
        assert_eq!(f.occurrences("burger"), 2);
        assert!((f.tf("burger") - 0.5).abs() < 1e-12);
        assert_eq!(f.occurrences("nope"), 0);
    }

    #[test]
    fn empty_fragment_tf_zero() {
        let f = Fragment::new(id(&[Value::Int(1)]), BTreeMap::new(), 0);
        assert_eq!(f.tf("x"), 0.0);
    }
}
