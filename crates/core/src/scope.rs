//! Selective crawling — the paper's third future-work item (Section
//! VIII): "There exists a tradeoff between (i) the amount of db-page
//! fragments to be collected and (ii) crawling and index efficiency."
//!
//! A [`CrawlScope`] restricts which fragments are derived, by
//! constraining selection-attribute values (e.g. only `American`
//! cuisines, only budgets 5–15, only the current year's orders). Scoped
//! engines index less, build faster, and simply cannot answer for
//! out-of-scope pages — the tradeoff quantified in `tests/scope.rs`.

use dash_relation::Value;

use crate::fragment::FragmentId;

/// A per-selection-attribute constraint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttrConstraint {
    /// Inclusive lower bound, if any.
    pub low: Option<Value>,
    /// Inclusive upper bound, if any.
    pub high: Option<Value>,
    /// Explicit allow-list, if any (checked in addition to the bounds).
    pub one_of: Option<Vec<Value>>,
}

impl AttrConstraint {
    fn admits(&self, value: &Value) -> bool {
        if let Some(low) = &self.low {
            if value < low {
                return false;
            }
        }
        if let Some(high) = &self.high {
            if value > high {
                return false;
            }
        }
        if let Some(allowed) = &self.one_of {
            if !allowed.contains(value) {
                return false;
            }
        }
        true
    }

    fn is_free(&self) -> bool {
        self.low.is_none() && self.high.is_none() && self.one_of.is_none()
    }
}

/// Which fragments a crawl should derive: one optional constraint per
/// selection attribute (in fragment-identifier order).
///
/// ```
/// use dash_core::scope::CrawlScope;
/// use dash_core::FragmentId;
/// use dash_relation::Value;
///
/// // Only American pages with budgets 5..=15.
/// let scope = CrawlScope::all()
///     .restrict_values(0, vec![Value::str("American")])
///     .restrict_range(1, Some(Value::Int(5)), Some(Value::Int(15)));
/// assert!(scope.admits(&FragmentId::new(vec![Value::str("American"), Value::Int(10)])));
/// assert!(!scope.admits(&FragmentId::new(vec![Value::str("Thai"), Value::Int(10)])));
/// assert!(!scope.admits(&FragmentId::new(vec![Value::str("American"), Value::Int(18)])));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CrawlScope {
    constraints: Vec<(usize, AttrConstraint)>,
}

impl CrawlScope {
    /// The unconstrained scope (derive everything — the paper's default).
    pub fn all() -> Self {
        CrawlScope::default()
    }

    /// Restricts selection attribute `position` to `[low, high]`
    /// (builder style; either bound may be open).
    pub fn restrict_range(
        mut self,
        position: usize,
        low: Option<Value>,
        high: Option<Value>,
    ) -> Self {
        let c = self.constraint_mut(position);
        c.low = low;
        c.high = high;
        self
    }

    /// Restricts selection attribute `position` to an explicit value set.
    pub fn restrict_values(mut self, position: usize, values: Vec<Value>) -> Self {
        self.constraint_mut(position).one_of = Some(values);
        self
    }

    fn constraint_mut(&mut self, position: usize) -> &mut AttrConstraint {
        if let Some(idx) = self.constraints.iter().position(|(p, _)| *p == position) {
            &mut self.constraints[idx].1
        } else {
            self.constraints.push((position, AttrConstraint::default()));
            &mut self.constraints.last_mut().expect("just pushed").1
        }
    }

    /// Whether the scope admits a fragment identifier.
    pub fn admits(&self, id: &FragmentId) -> bool {
        self.admits_values(id.values())
    }

    /// Whether the scope admits a selection-value vector.
    pub fn admits_values(&self, values: &[Value]) -> bool {
        self.constraints
            .iter()
            .all(|(pos, c)| values.get(*pos).map(|v| c.admits(v)).unwrap_or(false))
    }

    /// True when the scope constrains nothing.
    pub fn is_unrestricted(&self) -> bool {
        self.constraints.iter().all(|(_, c)| c.is_free())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(cuisine: &str, budget: i64) -> FragmentId {
        FragmentId::new(vec![Value::str(cuisine), Value::Int(budget)])
    }

    #[test]
    fn unrestricted_admits_everything() {
        let scope = CrawlScope::all();
        assert!(scope.is_unrestricted());
        assert!(scope.admits(&id("Thai", 99)));
    }

    #[test]
    fn range_bounds_inclusive() {
        let scope = CrawlScope::all().restrict_range(1, Some(Value::Int(5)), Some(Value::Int(15)));
        assert!(scope.admits(&id("x", 5)));
        assert!(scope.admits(&id("x", 15)));
        assert!(!scope.admits(&id("x", 4)));
        assert!(!scope.admits(&id("x", 16)));
        assert!(!scope.is_unrestricted());
    }

    #[test]
    fn half_open_ranges() {
        let scope = CrawlScope::all().restrict_range(1, Some(Value::Int(10)), None);
        assert!(scope.admits(&id("x", 1000)));
        assert!(!scope.admits(&id("x", 9)));
    }

    #[test]
    fn value_list() {
        let scope =
            CrawlScope::all().restrict_values(0, vec![Value::str("American"), Value::str("Thai")]);
        assert!(scope.admits(&id("Thai", 1)));
        assert!(!scope.admits(&id("Sushi", 1)));
    }

    #[test]
    fn combined_constraints_and_out_of_bounds_position() {
        let scope = CrawlScope::all()
            .restrict_values(0, vec![Value::str("American")])
            .restrict_range(1, Some(Value::Int(10)), Some(Value::Int(12)));
        assert!(scope.admits(&id("American", 10)));
        assert!(!scope.admits(&id("American", 9)));
        // Constraint on a position the identifier lacks → rejected.
        let scope = CrawlScope::all().restrict_range(5, Some(Value::Int(0)), None);
        assert!(!scope.admits(&id("American", 10)));
    }
}
