//! The stepwise crawling + indexing algorithm (Section V-A, Example 4).
//!
//! Database crawling and fragment indexing as two separate stages:
//!
//! 1. **Crawling** — the operand relations are joined pairwise, one
//!    MapReduce job per join, with the *full projection payload* riding
//!    through every shuffle (this is precisely the inefficiency the
//!    integrated algorithm removes); then one job groups the joined
//!    records by selection-attribute values into fragments.
//! 2. **Indexing** — one job treats each fragment as a document and builds
//!    the inverted fragment index.
//!
//! Job labels match Figure 10's stacked bars: `SW-Jn`, `SW-Grp`, `SW-Idx`.

use std::collections::BTreeMap;

use dash_mapreduce::{ClusterConfig, JobSpec, Workflow};
use dash_relation::{Database, JoinKind, Value};
use dash_webapp::WebApplication;

use crate::crawl::{keywords_of, CrawlOutput, Key, Row};
use crate::fragment::{Fragment, FragmentId};
use crate::Result;

/// Runs the stepwise workflow.
///
/// # Errors
///
/// Propagates relational errors from schema lookups.
pub fn run(app: &WebApplication, db: &Database, cluster: &ClusterConfig) -> Result<CrawlOutput> {
    run_scoped(app, db, cluster, &crate::scope::CrawlScope::all())
}

/// [`run`] restricted to a [`crate::scope::CrawlScope`]; out-of-scope
/// records are dropped in the grouping map, before they cost anything in
/// the grouping shuffle or the indexing job.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_scoped(
    app: &WebApplication,
    db: &Database,
    cluster: &ClusterConfig,
    scope: &crate::scope::CrawlScope,
) -> Result<CrawlOutput> {
    let mut wf = Workflow::new("stepwise", cluster.clone());
    let q = &app.query;

    // ---- crawling: join chain, one MR job per join ----
    let first = db.table(&q.relations[0])?;
    let mut acc_schema = first.schema().clone();
    let mut acc_rows: Vec<Row> = first.iter().map(|r| Row(r.values().to_vec())).collect();

    for step in &q.joins {
        let right_table = db.table(&step.right_relation)?;
        let left_idx = acc_schema.index_of(&step.left_joined_name)?;
        let right_idx = right_table.schema().index_of(&step.right_column)?;
        let right_arity = right_table.schema().arity();
        let outer = step.kind == JoinKind::LeftOuter;

        let mut inputs: Vec<(u8, Row)> = acc_rows.into_iter().map(|r| (0u8, r)).collect();
        inputs.extend(right_table.iter().map(|r| (1u8, Row(r.values().to_vec()))));

        acc_rows = wf.run(
            JobSpec::new(format!("SW join ⋈{}", step.right_relation)).label("SW-Jn"),
            &inputs,
            move |(side, row): &(u8, Row), emit| {
                let idx = if *side == 0 { left_idx } else { right_idx };
                let key = &row.0[idx];
                if key.is_null() {
                    // NULL keys never match; left rows survive only under
                    // an outer join (padded by the reducer).
                    if *side == 0 && outer {
                        emit(Key(vec![Value::Null]), (0u8, row.clone()));
                    }
                    return;
                }
                emit(Key(vec![key.clone()]), (*side, row.clone()));
            },
            move |_key: &Key, values: Vec<(u8, Row)>, emit| {
                let mut lefts: Vec<Row> = Vec::new();
                let mut rights: Vec<Row> = Vec::new();
                for (side, row) in values {
                    if side == 0 {
                        lefts.push(row);
                    } else {
                        rights.push(row);
                    }
                }
                for l in &lefts {
                    if rights.is_empty() {
                        if outer {
                            let mut v = l.0.clone();
                            v.extend(std::iter::repeat_with(|| Value::Null).take(right_arity));
                            emit(Row(v));
                        }
                    } else {
                        for r in &rights {
                            let mut v = l.0.clone();
                            v.extend_from_slice(&r.0);
                            emit(Row(v));
                        }
                    }
                }
            },
        );
        acc_schema = acc_schema.join(right_table.schema());
    }

    // ---- crawling: group by selection-attribute values ----
    let sel_idx: Vec<usize> = q
        .selection_joined_names()
        .iter()
        .map(|name| acc_schema.index_of(name))
        .collect::<std::result::Result<_, _>>()?;
    let proj_idx: Vec<usize> = q
        .projection_joined_names()
        .iter()
        .map(|name| acc_schema.index_of(name))
        .collect::<std::result::Result<_, _>>()?;

    let sel_for_map = sel_idx.clone();
    let proj_for_map = proj_idx.clone();
    let scope_for_map = scope.clone();
    let grouped: Vec<(Key, Vec<Row>)> = wf.run(
        JobSpec::new("SW group by selection attrs").label("SW-Grp"),
        &acc_rows,
        move |row: &Row, emit| {
            let key: Vec<_> = sel_for_map.iter().map(|&i| row.0[i].clone()).collect();
            if !scope_for_map.admits_values(&key) {
                return; // out-of-scope: dropped before the shuffle
            }
            let projected = Row(proj_for_map.iter().map(|&i| row.0[i].clone()).collect());
            emit(Key(key), projected);
        },
        |key: &Key, rows: Vec<Row>, emit| emit((key.clone(), rows)),
    );

    // ---- indexing: fragments as documents → inverted fragment index ----
    let postings: Vec<(String, Vec<(Key, u64)>)> = wf.run(
        JobSpec::new("SW index fragments").label("SW-Idx"),
        &grouped,
        |(id, rows): &(Key, Vec<Row>), emit| {
            let mut counts: BTreeMap<String, u64> = BTreeMap::new();
            for row in rows {
                for kw in keywords_of(&row.0) {
                    *counts.entry(kw).or_insert(0) += 1;
                }
            }
            for (kw, n) in counts {
                emit(kw, (id.clone(), n));
            }
        },
        |kw: &String, mut entries: Vec<(Key, u64)>, emit| {
            entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            emit((kw.clone(), entries));
        },
    );

    // ---- assemble Fragment structs from the job outputs ----
    let mut occurrence_maps: BTreeMap<FragmentId, BTreeMap<String, u64>> = BTreeMap::new();
    let mut record_counts: BTreeMap<FragmentId, u64> = BTreeMap::new();
    for (id, rows) in &grouped {
        record_counts.insert(FragmentId::new(id.0.clone()), rows.len() as u64);
    }
    for (kw, entries) in postings {
        for (id, n) in entries {
            occurrence_maps
                .entry(FragmentId::new(id.0))
                .or_default()
                .insert(kw.clone(), n);
        }
    }
    let fragments: Vec<Fragment> = record_counts
        .into_iter()
        .map(|(id, records)| {
            let occ = occurrence_maps.remove(&id).unwrap_or_default();
            Fragment::new(id, occ, records)
        })
        .collect();

    Ok(CrawlOutput {
        fragments,
        stats: wf.into_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::reference;
    use dash_mapreduce::ClusterConfig;
    use dash_webapp::fooddb;

    #[test]
    fn matches_reference_on_fooddb() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let out = run(&app, &db, &ClusterConfig::default()).unwrap();
        let expected = reference::fragments(&app, &db).unwrap();
        assert_eq!(out.fragments, expected);
    }

    #[test]
    fn workflow_has_expected_jobs() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let out = run(&app, &db, &ClusterConfig::default()).unwrap();
        // Two joins + group + index = 4 jobs.
        assert_eq!(out.stats.jobs.len(), 4);
        let labels = out.stats.label_breakdown();
        assert_eq!(labels[0].0, "SW-Jn");
        assert_eq!(labels[1].0, "SW-Grp");
        assert_eq!(labels[2].0, "SW-Idx");
        assert!(out.stats.sim_total_secs() > 0.0);
    }

    #[test]
    fn deterministic() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let a = run(&app, &db, &ClusterConfig::default()).unwrap();
        let b = run(&app, &db, &ClusterConfig::default()).unwrap();
        assert_eq!(a.fragments, b.fragments);
        assert!((a.stats.sim_total_secs() - b.stats.sim_total_secs()).abs() < 1e-12);
    }
}
