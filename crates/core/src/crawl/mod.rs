//! Database crawling and fragment indexing (Section V of the paper).
//!
//! Dash crawls the **database**, not the web: starting from the analyzed
//! application query it derives every db-page fragment and indexes it.
//! Two MapReduce workflows implement this:
//!
//! * [`stepwise`] — join all operand relations (payload and all), group
//!   the joined records by selection-attribute values, then index each
//!   group. Simple, but projection payloads ride through every shuffle.
//! * [`integrated`] — derive query parameters first (join only selection
//!   attributes, join attributes and duplicate counts θ), then extract
//!   keywords per operand relation with multiplicity Θ_i = Πθ_x/θ_i, then
//!   consolidate. Payloads never enter a join shuffle.
//!
//! Both produce identical fragments (tested against each other and
//! against the in-memory [`reference`](mod@reference) crawler); they differ — by design —
//! in their [`WorkflowStats`].

pub mod integrated;
pub mod reference;
pub mod stepwise;

use dash_mapreduce::{ByteSized, ClusterConfig, WorkflowStats};
use dash_relation::{Database, Value};
use dash_webapp::WebApplication;
use serde::{Deserialize, Serialize};

use crate::fragment::Fragment;
use crate::Result;

/// Which crawling/indexing algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrawlAlgorithm {
    /// The stepwise algorithm (Section V-A) — "SW" in Figure 10.
    Stepwise,
    /// The integrated algorithm (Section V-B) — "INT" in Figure 10.
    /// The paper's recommended default.
    #[default]
    Integrated,
}

/// The result of a crawl: every db-page fragment plus the MapReduce
/// workflow statistics (the raw material of Figure 10).
#[derive(Debug, Clone)]
pub struct CrawlOutput {
    /// All derived fragments, sorted by identifier.
    pub fragments: Vec<Fragment>,
    /// Per-job meters and simulated elapsed time.
    pub stats: WorkflowStats,
}

/// Runs the selected crawling + indexing workflow.
///
/// # Errors
///
/// Propagates relational errors (schema lookups) and
/// [`crate::CoreError::UnsupportedQuery`] for query shapes outside
/// Definition 1.
pub fn run(
    app: &WebApplication,
    db: &Database,
    cluster: &ClusterConfig,
    algorithm: CrawlAlgorithm,
) -> Result<CrawlOutput> {
    run_scoped(
        app,
        db,
        cluster,
        algorithm,
        &crate::scope::CrawlScope::all(),
    )
}

/// [`run`] restricted to a [`CrawlScope`](crate::scope::CrawlScope) — the selective-crawling
/// tradeoff of Section VIII. Out-of-scope fragments are dropped *early*
/// (at grouping time for stepwise, before extraction for integrated), so
/// the scope shrinks the downstream jobs, not just the output.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_scoped(
    app: &WebApplication,
    db: &Database,
    cluster: &ClusterConfig,
    algorithm: CrawlAlgorithm,
    scope: &crate::scope::CrawlScope,
) -> Result<CrawlOutput> {
    match algorithm {
        CrawlAlgorithm::Stepwise => stepwise::run_scoped(app, db, cluster, scope),
        CrawlAlgorithm::Integrated => integrated::run_scoped(app, db, cluster, scope),
    }
}

/// A record travelling through a MapReduce job: a plain value vector.
/// (Newtype so the byte-metering [`ByteSized`] impl lives in this crate.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub(crate) struct Row(pub Vec<Value>);

/// A shuffle key: a value vector with `Ord + Hash`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub(crate) struct Key(pub Vec<Value>);

fn values_byte_size(values: &[Value]) -> usize {
    4 + values
        .iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Decimal(_) => 8,
            Value::Str(s) => s.len() + 4,
            Value::Date(_) => 4,
        })
        .sum::<usize>()
}

impl ByteSized for Row {
    fn byte_size(&self) -> usize {
        values_byte_size(&self.0)
    }
}

impl ByteSized for Key {
    fn byte_size(&self) -> usize {
        values_byte_size(&self.0)
    }
}

/// Extracts the keyword tokens of a projected value vector, in render
/// order (NULLs render empty and contribute nothing).
pub(crate) fn keywords_of(values: &[Value]) -> Vec<String> {
    let mut out = Vec::new();
    for v in values {
        let rendered = v.render();
        if !rendered.is_empty() {
            dash_text::tokenize_into(&rendered, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_key_byte_sizes() {
        let row = Row(vec![Value::str("abc"), Value::Int(1), Value::Null]);
        assert_eq!(row.byte_size(), 4 + 7 + 8 + 1);
        let key = Key(vec![Value::Int(2)]);
        assert_eq!(key.byte_size(), 12);
    }

    #[test]
    fn keyword_extraction_skips_nulls() {
        let kws = keywords_of(&[Value::str("Burger Queen"), Value::Null, Value::Int(10)]);
        assert_eq!(kws, vec!["burger", "queen", "10"]);
    }

    #[test]
    fn default_algorithm_is_integrated() {
        assert_eq!(CrawlAlgorithm::default(), CrawlAlgorithm::Integrated);
    }
}
