//! The integrated crawling + indexing algorithm (Section V-B, Example 5).
//!
//! Three steps, each a family of MapReduce jobs:
//!
//! 1. **Query-parameter derivation** (`INT-Jn`): every operand relation is
//!    reduced to its *skeleton* — the selection attributes, the join
//!    attributes, and a duplicate count θ_i (the paper's aggregate query
//!    `c_i, j_i G count(*) as θ_i (R_i)`) — and the skeletons are joined.
//!    The result `R` holds every fragment identifier with, per relation,
//!    how many records share each (cᵢ, jᵢ) combination.
//! 2. **Keyword extraction** (`INT-Ext`): each relation is joined with `R`
//!    on its own (cᵢ, jᵢ). A record matching a skeleton row replicates
//!    `Θ_i = Π_x θ_x / θ_i` times in the full join, so each of its
//!    keywords is emitted with its occurrence count multiplied by Θ_i.
//! 3. **Consolidation** (`INT-Cnsd`): occurrences of the same keyword for
//!    the same fragment are summed and each inverted list is sorted.
//!
//! Projection payloads never ride through a join shuffle — only skeletons
//! and `(keyword, fragment, count)` triples move — which is where the
//! paper's 21%-average / 64%-best elapsed-time saving comes from.
//!
//! Limitation (shared with the paper's formulation): join attributes in
//! the *base data* must be non-NULL; NULLs appear only through outer-join
//! padding, where θ = 0 marks the missing side (`Θ` treats it as 1 and
//! extraction never matches the padded key).

use std::collections::BTreeMap;

use dash_mapreduce::{ClusterConfig, JobSpec, Workflow};
use dash_relation::{Database, JoinKind, Value};
use dash_webapp::WebApplication;

use crate::crawl::{keywords_of, CrawlOutput, Key, Row};
use crate::fragment::{Fragment, FragmentId};
use crate::Result;

/// Per-relation skeleton layout: which of its columns the skeleton keeps.
#[derive(Debug, Clone)]
struct RelationSkeleton {
    relation: String,
    /// Column names kept (selection attrs first, then join attrs), with
    /// their indices in the base table.
    columns: Vec<(String, usize)>,
    /// Indices (within the base table) of this relation's projected
    /// attributes — the keyword sources for extraction.
    projected: Vec<usize>,
}

/// Skeleton-join bookkeeping: where each relation's kept columns sit in
/// the accumulated skeleton row, and where each θ sits in the theta
/// vector.
#[derive(Debug, Clone, Default)]
struct SkeletonLayout {
    /// `(relation, column)` per accumulated skeleton position.
    cols: Vec<(String, String)>,
    /// Relation order (θ position = index in this vector).
    relations: Vec<String>,
}

impl SkeletonLayout {
    fn position(&self, relation: &str, column: &str) -> Option<usize> {
        self.cols
            .iter()
            .position(|(r, c)| r == relation && c == column)
    }

    fn theta_index(&self, relation: &str) -> Option<usize> {
        self.relations.iter().position(|r| r == relation)
    }
}

/// Runs the integrated workflow.
///
/// # Errors
///
/// Propagates relational errors from schema lookups.
pub fn run(app: &WebApplication, db: &Database, cluster: &ClusterConfig) -> Result<CrawlOutput> {
    run_scoped(app, db, cluster, &crate::scope::CrawlScope::all())
}

/// [`run`] restricted to a [`crate::scope::CrawlScope`]; out-of-scope
/// parameter combinations are dropped from `R` right after derivation,
/// shrinking both the extraction and consolidation steps.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_scoped(
    app: &WebApplication,
    db: &Database,
    cluster: &ClusterConfig,
    scope: &crate::scope::CrawlScope,
) -> Result<CrawlOutput> {
    let mut wf = Workflow::new("integrated", cluster.clone());
    let q = &app.query;

    // ---- plan: per-relation skeleton column sets ----
    let skeletons = plan_skeletons(app, db)?;

    // ---- step 1: skeleton join chain → R, with θ aggregation folded
    // into the joins ("the evaluation of θi … can be performed during the
    // join, as ji is used as both a join key and one of group-by keys",
    // §V-B; Figure 8 feeds the raw relations straight into the joins).
    // Raw sides are projected to their skeleton columns in the map and
    // duplicate-counted by a map-side combiner, so only skinny rows and
    // counts ever shuffle.
    let mut layout = SkeletonLayout::default();
    let first_sk = &skeletons[0];
    for (name, _) in &first_sk.columns {
        layout.cols.push((first_sk.relation.clone(), name.clone()));
    }
    layout.relations.push(first_sk.relation.clone());

    // Accumulated R rows: (skeleton values, θ per relation in order).
    // Before the first join the accumulation is just R1 — aggregated by
    // a standalone job only when the query has no joins at all.
    let mut acc: Vec<(Row, Vec<u64>)>;
    if q.joins.is_empty() {
        let table = db.table(&first_sk.relation)?;
        let rows: Vec<Row> = table.iter().map(|r| Row(r.values().to_vec())).collect();
        let col_idx: Vec<usize> = first_sk.columns.iter().map(|(_, i)| *i).collect();
        acc = wf
            .run(
                JobSpec::new(format!("INT aggregate {}", first_sk.relation))
                    .label("INT-Jn")
                    .combiner(|_k: &Key, vs: Vec<u64>| vec![vs.iter().sum()]),
                &rows,
                move |row: &Row, emit| {
                    let key = Key(col_idx.iter().map(|&i| row.0[i].clone()).collect());
                    emit(key, 1u64);
                },
                |key: &Key, counts: Vec<u64>, emit| emit((key.clone(), counts.iter().sum::<u64>())),
            )
            .into_iter()
            .map(|(k, theta)| (Row(k.0), vec![theta]))
            .collect();
    } else {
        acc = Vec::new();
    }

    for (step_no, step) in q.joins.iter().enumerate() {
        let right_sk = skeletons
            .iter()
            .find(|s| s.relation == step.right_relation)
            .expect("skeleton planned for every operand");
        let left_pos = layout
            .position(&step.left_relation, &step.left_column)
            .ok_or_else(|| crate::CoreError::Internal {
                detail: format!(
                    "join column {}.{} missing from skeleton layout",
                    step.left_relation, step.left_column
                ),
            })?;
        let right_col_idx: Vec<usize> = right_sk.columns.iter().map(|(_, i)| *i).collect();
        let right_pos = right_sk
            .columns
            .iter()
            .position(|(c, _)| *c == step.right_column)
            .expect("join column is part of the skeleton by construction");
        let right_width = right_sk.columns.len();
        let outer = step.kind == JoinKind::LeftOuter;
        let left_is_raw = step_no == 0;
        let left_col_idx: Vec<usize> = first_sk.columns.iter().map(|(_, i)| *i).collect();
        let left_raw_pos = first_sk
            .columns
            .iter()
            .position(|(c, _)| step.left_relation == first_sk.relation && *c == step.left_column)
            .unwrap_or(left_pos);

        // Inputs: the accumulated skinny left side (or the raw first
        // relation) tagged 0, the raw right relation tagged 1. Raw rows
        // carry an empty θ vector and are projected in the map.
        let mut inputs: Vec<(u8, Row, Vec<u64>)> = if left_is_raw {
            db.table(&first_sk.relation)?
                .iter()
                .map(|r| (0u8, Row(r.values().to_vec()), Vec::new()))
                .collect()
        } else {
            acc.into_iter()
                .map(|(row, thetas)| (0u8, row, thetas))
                .collect()
        };
        inputs.extend(
            db.table(&right_sk.relation)?
                .iter()
                .map(|r| (1u8, Row(r.values().to_vec()), Vec::new())),
        );

        acc = wf
            .run(
                JobSpec::new(format!("INT skeleton ⋈{}", step.right_relation))
                    .label("INT-Jn")
                    .combiner(|_k: &Key, vs: Vec<(u8, Row, Vec<u64>)>| merge_duplicate_rows(vs)),
                &inputs,
                move |(side, row, thetas): &(u8, Row, Vec<u64>), emit| {
                    // Project raw rows down to their skeleton columns and
                    // start their θ count at 1.
                    let (skinny, thetas, key_pos) = if *side == 1 {
                        (
                            Row(right_col_idx.iter().map(|&i| row.0[i].clone()).collect()),
                            vec![1u64],
                            right_pos,
                        )
                    } else if left_is_raw {
                        (
                            Row(left_col_idx.iter().map(|&i| row.0[i].clone()).collect()),
                            vec![1u64],
                            left_raw_pos,
                        )
                    } else {
                        (row.clone(), thetas.clone(), left_pos)
                    };
                    let key = &skinny.0[key_pos];
                    if key.is_null() {
                        if *side == 0 && outer {
                            emit(Key(vec![Value::Null]), (0u8, skinny, thetas));
                        }
                        return;
                    }
                    emit(Key(vec![key.clone()]), (*side, skinny, thetas));
                },
                move |_key: &Key, values: Vec<(u8, Row, Vec<u64>)>, emit| {
                    // Finish the θ aggregation (combiners only see one
                    // split), then cross the two sides.
                    let merged = merge_duplicate_rows(values);
                    let mut lefts: Vec<(Row, Vec<u64>)> = Vec::new();
                    let mut rights: Vec<(Row, Vec<u64>)> = Vec::new();
                    for (side, row, thetas) in merged {
                        if side == 0 {
                            lefts.push((row, thetas));
                        } else {
                            rights.push((row, thetas));
                        }
                    }
                    for (lrow, lthetas) in &lefts {
                        if rights.is_empty() {
                            if outer {
                                let mut v = lrow.0.clone();
                                v.extend(std::iter::repeat_with(|| Value::Null).take(right_width));
                                let mut t = lthetas.clone();
                                t.push(0); // θ = 0 marks the padded side
                                emit((Row(v), t));
                            }
                        } else {
                            for (rrow, rthetas) in &rights {
                                let mut v = lrow.0.clone();
                                v.extend_from_slice(&rrow.0);
                                let mut t = lthetas.clone();
                                t.extend_from_slice(rthetas);
                                emit((Row(v), t));
                            }
                        }
                    }
                },
            )
            .into_iter()
            .collect();
        for (name, _) in &right_sk.columns {
            layout.cols.push((right_sk.relation.clone(), name.clone()));
        }
        layout.relations.push(right_sk.relation.clone());
    }

    // Positions of the fragment-identifier values within skeleton rows.
    let frag_positions: Vec<usize> = q
        .selections
        .iter()
        .map(|s| {
            layout
                .position(&s.column.relation, &s.column.column)
                .expect("selection attrs are skeleton columns")
        })
        .collect();

    // Selective crawling: drop out-of-scope parameter combinations from
    // R before anything downstream sees them.
    if !scope.is_unrestricted() {
        acc.retain(|(row, _)| {
            let values: Vec<Value> = frag_positions.iter().map(|&i| row.0[i].clone()).collect();
            scope.admits_values(&values)
        });
    }

    // Fragment record counts: Σ over R rows of Π max(θ_x, 1).
    let mut record_counts: BTreeMap<FragmentId, u64> = BTreeMap::new();
    for (row, thetas) in &acc {
        let id = FragmentId::new(frag_positions.iter().map(|&i| row.0[i].clone()).collect());
        let product: u64 = thetas.iter().map(|&t| t.max(1)).product();
        *record_counts.entry(id).or_insert(0) += product;
    }

    // ---- step 2: per-relation keyword extraction ----
    // Output is compact: one `(fragment, [(keyword, count)…])` entry per
    // fragment per reduce group, so the fragment identifier is written
    // once per keyword *list*, not once per keyword.
    let mut extracts: Vec<(Key, Vec<(String, u64)>)> = Vec::new();
    for sk in &skeletons {
        if sk.projected.is_empty() {
            continue;
        }
        let table = db.table(&sk.relation)?;
        let theta_idx = layout
            .theta_index(&sk.relation)
            .expect("every operand in layout");
        // Key positions: in the base record and in the skeleton row.
        let record_key_idx: Vec<usize> = sk.columns.iter().map(|(_, i)| *i).collect();
        let skeleton_key_pos: Vec<usize> = sk
            .columns
            .iter()
            .map(|(c, _)| {
                layout
                    .position(&sk.relation, c)
                    .expect("skeleton columns in layout")
            })
            .collect();
        let projected = sk.projected.clone();
        let frag_pos = frag_positions.clone();

        let mut inputs: Vec<(u8, Row, Vec<u64>)> = table
            .iter()
            .map(|r| (0u8, Row(r.values().to_vec()), Vec::new()))
            .collect();
        inputs.extend(
            acc.iter()
                .map(|(row, thetas)| (1u8, row.clone(), thetas.clone())),
        );

        let out: Vec<(Key, Vec<(String, u64)>)> = wf.run(
            JobSpec::new(format!("INT extract {}", sk.relation)).label("INT-Ext"),
            &inputs,
            move |(side, row, thetas): &(u8, Row, Vec<u64>), emit| {
                let key = if *side == 0 {
                    Key(record_key_idx.iter().map(|&i| row.0[i].clone()).collect())
                } else {
                    Key(skeleton_key_pos.iter().map(|&i| row.0[i].clone()).collect())
                };
                // Padded skeleton keys (NULL) never match base records.
                if *side == 1 && key.0.iter().any(Value::is_null) {
                    return;
                }
                emit(key, (*side, row.clone(), thetas.clone()));
            },
            move |_key: &Key, values: Vec<(u8, Row, Vec<u64>)>, emit| {
                let mut records: Vec<Row> = Vec::new();
                let mut skeleton_rows: Vec<(Row, Vec<u64>)> = Vec::new();
                for (side, row, thetas) in values {
                    if side == 0 {
                        records.push(row);
                    } else {
                        skeleton_rows.push((row, thetas));
                    }
                }
                let mut per_fragment: BTreeMap<Key, BTreeMap<String, u64>> = BTreeMap::new();
                for record in &records {
                    let projected_values: Vec<Value> =
                        projected.iter().map(|&i| record.0[i].clone()).collect();
                    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
                    for kw in keywords_of(&projected_values) {
                        *counts.entry(kw).or_insert(0) += 1;
                    }
                    if counts.is_empty() {
                        continue;
                    }
                    for (srow, thetas) in &skeleton_rows {
                        // Θ_i = Π_{x≠i} max(θ_x, 1): how many times this
                        // record replicates in the full join for this
                        // parameter combination.
                        let multiplier: u64 = thetas
                            .iter()
                            .enumerate()
                            .filter(|(x, _)| *x != theta_idx)
                            .map(|(_, &t)| t.max(1))
                            .product();
                        let id = Key(frag_pos.iter().map(|&i| srow.0[i].clone()).collect());
                        let entry = per_fragment.entry(id).or_default();
                        for (kw, n) in &counts {
                            *entry.entry(kw.clone()).or_insert(0) += n * multiplier;
                        }
                    }
                }
                for (id, counts) in per_fragment {
                    emit((id, counts.into_iter().collect::<Vec<_>>()));
                }
            },
        );
        extracts.extend(out);
    }

    // ---- step 3: consolidation ----
    // The extract jobs all hash-partition by fragment-correlated keys, so
    // on a real cluster their output files are fragment-aligned; the
    // consolidate mappers therefore see each fragment's per-relation
    // lists contiguously and the map-side combiner collapses them to one
    // entry per (keyword, fragment) before the shuffle — the same volume
    // the stepwise index job shuffles. Sorting here reproduces that
    // alignment for the in-memory pipeline (bookkeeping between jobs, not
    // a metered operation).
    extracts.sort_by(|a, b| a.0.cmp(&b.0));
    let postings: Vec<(String, Vec<(Key, u64)>)> = wf.run(
        JobSpec::new("INT consolidate").label("INT-Cnsd").combiner(
            |_k: &String, vs: Vec<(Key, u64)>| {
                let mut sums: BTreeMap<Key, u64> = BTreeMap::new();
                for (id, n) in vs {
                    *sums.entry(id).or_insert(0) += n;
                }
                sums.into_iter().collect()
            },
        ),
        &extracts,
        |(id, counts): &(Key, Vec<(String, u64)>), emit| {
            for (kw, n) in counts {
                emit(kw.clone(), (id.clone(), *n));
            }
        },
        |kw: &String, entries: Vec<(Key, u64)>, emit| {
            let mut sums: BTreeMap<Key, u64> = BTreeMap::new();
            for (id, n) in entries {
                *sums.entry(id).or_insert(0) += n;
            }
            let mut list: Vec<(Key, u64)> = sums.into_iter().collect();
            list.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            emit((kw.clone(), list));
        },
    );

    // ---- assemble fragments ----
    let mut occurrence_maps: BTreeMap<FragmentId, BTreeMap<String, u64>> = BTreeMap::new();
    for (kw, entries) in postings {
        for (id, n) in entries {
            occurrence_maps
                .entry(FragmentId::new(id.0))
                .or_default()
                .insert(kw.clone(), n);
        }
    }
    let fragments: Vec<Fragment> = record_counts
        .into_iter()
        .map(|(id, records)| {
            let occ = occurrence_maps.remove(&id).unwrap_or_default();
            Fragment::new(id, occ, records)
        })
        .collect();

    Ok(CrawlOutput {
        fragments,
        stats: wf.into_stats(),
    })
}

/// Merges duplicate `(side, skinny row)` entries by element-wise θ
/// addition — the group-by-count of the paper's aggregate query,
/// evaluated inside the join (map-side via the combiner, reduce-side for
/// cross-split leftovers).
fn merge_duplicate_rows(values: Vec<(u8, Row, Vec<u64>)>) -> Vec<(u8, Row, Vec<u64>)> {
    let mut merged: BTreeMap<(u8, Row), Vec<u64>> = BTreeMap::new();
    for (side, row, thetas) in values {
        match merged.entry((side, row)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(thetas);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let acc = e.get_mut();
                debug_assert_eq!(acc.len(), thetas.len());
                for (a, b) in acc.iter_mut().zip(thetas) {
                    *a += b;
                }
            }
        }
    }
    merged
        .into_iter()
        .map(|((side, row), thetas)| (side, row, thetas))
        .collect()
}

/// Decides each operand relation's skeleton columns and projected-keyword
/// sources.
fn plan_skeletons(app: &WebApplication, db: &Database) -> Result<Vec<RelationSkeleton>> {
    let q = &app.query;
    let mut out = Vec::with_capacity(q.relations.len());
    for rel in &q.relations {
        let schema = db.table(rel)?.schema().clone();
        let mut columns: Vec<(String, usize)> = Vec::new();
        let push = |name: &str,
                    schema: &dash_relation::Schema,
                    columns: &mut Vec<(String, usize)>|
         -> Result<()> {
            if columns.iter().any(|(c, _)| c == name) {
                return Ok(());
            }
            let idx = schema.index_of(name)?;
            columns.push((name.to_string(), idx));
            Ok(())
        };
        // Selection attributes hosted on this relation, in selection order.
        for sel in &q.selections {
            if sel.column.relation == *rel {
                push(&sel.column.column, &schema, &mut columns)?;
            }
        }
        // Join attributes touching this relation, in join order.
        for step in &q.joins {
            if step.left_relation == *rel {
                push(&step.left_column, &schema, &mut columns)?;
            }
            if step.right_relation == *rel {
                push(&step.right_column, &schema, &mut columns)?;
            }
        }
        // Projected attributes hosted on this relation.
        let projected: Vec<usize> = q
            .projection
            .iter()
            .filter(|p| p.relation == *rel)
            .map(|p| schema.index_of(&p.column))
            .collect::<std::result::Result<_, _>>()?;
        out.push(RelationSkeleton {
            relation: rel.clone(),
            columns,
            projected,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{reference, stepwise};
    use dash_mapreduce::ClusterConfig;
    use dash_webapp::fooddb;

    #[test]
    fn matches_reference_on_fooddb() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let out = run(&app, &db, &ClusterConfig::default()).unwrap();
        let expected = reference::fragments(&app, &db).unwrap();
        assert_eq!(out.fragments, expected);
    }

    #[test]
    fn matches_stepwise_exactly() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let int = run(&app, &db, &ClusterConfig::default()).unwrap();
        let sw = stepwise::run(&app, &db, &ClusterConfig::default()).unwrap();
        assert_eq!(int.fragments, sw.fragments);
    }

    #[test]
    fn example_5_theta_arithmetic() {
        // Example 5: restaurant rid=004 joins two comments which join one
        // customer; Wandy's keywords are multiplied by 2 in (American,12).
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let out = run(&app, &db, &ClusterConfig::default()).unwrap();
        let f12 = out
            .fragments
            .iter()
            .find(|f| f.id.to_string() == "(American,12)")
            .unwrap();
        // Figure 5: three rows — Wandy's 4.1 (padded), Wandy's 4.2 × 2.
        assert_eq!(f12.record_count, 3);
        // "wandy's" appears 3× (once from rid=003, twice from rid=004).
        assert_eq!(f12.occurrences("wandy's"), 3);
        // "bill" appears twice (customer 132 replicated by θ_comment = 2).
        assert_eq!(f12.occurrences("bill"), 2);
    }

    #[test]
    fn workflow_job_structure_matches_figure_8() {
        // 2 skeleton joins (θ aggregated in-join) + 3 extracts +
        // 1 consolidate = 6 jobs.
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let out = run(&app, &db, &ClusterConfig::default()).unwrap();
        assert_eq!(out.stats.jobs.len(), 6);
        let labels: Vec<String> = out
            .stats
            .label_breakdown()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["INT-Jn", "INT-Ext", "INT-Cnsd"]);
    }

    #[test]
    fn integrated_shuffles_fewer_bytes_at_scale() {
        // On non-toy data the skeleton join moves far fewer bytes than
        // the payload join (Q1's customer rows are ~200 B wide; skeletons
        // keep two columns plus θ).
        let db = dash_tpch::generate(&dash_tpch::TpchConfig::new(dash_tpch::Scale::Small));
        let app = dash_tpch::q1_application(&db).unwrap();
        let int = run(&app, &db, &ClusterConfig::default()).unwrap();
        let sw = stepwise::run(&app, &db, &ClusterConfig::default()).unwrap();
        assert_eq!(int.fragments, sw.fragments);
        let int_join_bytes: u64 = int
            .stats
            .jobs
            .iter()
            .filter(|j| j.label == "INT-Jn")
            .map(|j| j.shuffle.input_bytes)
            .sum();
        let sw_join_bytes: u64 = sw
            .stats
            .jobs
            .iter()
            .filter(|j| j.label == "SW-Jn")
            .map(|j| j.shuffle.input_bytes)
            .sum();
        assert!(int_join_bytes < sw_join_bytes);
    }
}
