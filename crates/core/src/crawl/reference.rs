//! The reference (single-machine, non-MapReduce) fragment derivation.
//!
//! Semantically this is Definition 2 executed literally: materialize the
//! full join, group records by selection-attribute values, count keywords
//! per group. It defines *what the MapReduce algorithms must produce* —
//! both are tested for output equality against it — and powers the
//! incremental-maintenance path, which recomputes a handful of fragments
//! and has no use for a cluster.

use std::collections::BTreeMap;

use dash_relation::{Database, Table, Value};
use dash_webapp::WebApplication;

use crate::crawl::keywords_of;
use crate::fragment::{Fragment, FragmentId};
use crate::Result;

/// Derives all fragments of `app` over `db`, sorted by identifier.
///
/// # Errors
///
/// Propagates relational errors from the join/column lookups.
pub fn fragments(app: &WebApplication, db: &Database) -> Result<Vec<Fragment>> {
    let joined = app.query.join_all(db).map_err(crate::CoreError::from)?;
    fragments_of_joined(app, &joined)
}

/// [`fragments`] restricted to a [`crate::scope::CrawlScope`].
///
/// # Errors
///
/// Same as [`fragments`].
pub fn fragments_scoped(
    app: &WebApplication,
    db: &Database,
    scope: &crate::scope::CrawlScope,
) -> Result<Vec<Fragment>> {
    Ok(fragments(app, db)?
        .into_iter()
        .filter(|f| scope.admits(&f.id))
        .collect())
}

/// Derives only the fragments whose identifiers appear in `targets` —
/// the bulk re-crawl behind delta building. One `join_all` feeds every
/// target (instead of one reference crawl per record change), and rows
/// outside the target groups are discarded *before* keyword counting,
/// so the expensive tokenization runs only over the affected equality
/// groups' rows.
///
/// # Errors
///
/// Same as [`fragments`].
pub fn fragments_for_ids(
    app: &WebApplication,
    db: &Database,
    targets: &std::collections::BTreeSet<FragmentId>,
) -> Result<Vec<Fragment>> {
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    let joined = app.query.join_all(db).map_err(crate::CoreError::from)?;
    fragments_of_joined_filtered(app, &joined, |id| targets.contains(id))
}

/// Derives the fragments present in an already-joined table (used by the
/// incremental refresher, which filters the join first).
///
/// # Errors
///
/// Propagates column-lookup errors.
pub fn fragments_of_joined(app: &WebApplication, joined: &Table) -> Result<Vec<Fragment>> {
    fragments_of_joined_filtered(app, joined, |_| true)
}

/// The Definition-2 grouping core both entry points share: rows whose
/// identifier fails `admit` are skipped *before* keyword counting, so
/// scoped derivations never pay tokenization for rows they discard.
fn fragments_of_joined_filtered(
    app: &WebApplication,
    joined: &Table,
    admit: impl Fn(&FragmentId) -> bool,
) -> Result<Vec<Fragment>> {
    let schema = joined.schema();
    let sel_idx: Vec<usize> = app
        .query
        .selection_joined_names()
        .iter()
        .map(|name| schema.index_of(name))
        .collect::<std::result::Result<_, _>>()
        .map_err(crate::CoreError::from)?;
    let proj_idx: Vec<usize> = app
        .query
        .projection_joined_names()
        .iter()
        .map(|name| schema.index_of(name))
        .collect::<std::result::Result<_, _>>()
        .map_err(crate::CoreError::from)?;

    let mut groups: BTreeMap<FragmentId, (BTreeMap<String, u64>, u64)> = BTreeMap::new();
    for record in joined.iter() {
        let id = FragmentId::new(
            sel_idx
                .iter()
                .map(|&i| record.values()[i].clone())
                .collect(),
        );
        if !admit(&id) {
            continue;
        }
        let projected: Vec<Value> = proj_idx
            .iter()
            .map(|&i| record.values()[i].clone())
            .collect();
        let entry = groups.entry(id).or_default();
        for kw in keywords_of(&projected) {
            *entry.0.entry(kw).or_insert(0) += 1;
        }
        entry.1 += 1;
    }

    Ok(groups
        .into_iter()
        .map(|(id, (occ, records))| Fragment::new(id, occ, records))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_webapp::fooddb;

    #[test]
    fn fooddb_fragments_match_figure_5() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let fragments = fragments(&app, &db).unwrap();
        // Figure 5: (American,9), (American,10), (American,12),
        // (American,18), (Thai,10).
        assert_eq!(fragments.len(), 5);
        let ids: Vec<String> = fragments.iter().map(|f| f.id.to_string()).collect();
        assert_eq!(
            ids,
            vec![
                "(American,9)",
                "(American,10)",
                "(American,12)",
                "(American,18)",
                "(Thai,10)"
            ]
        );
    }

    #[test]
    fn keyword_totals_match_example_6() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let fragments = fragments(&app, &db).unwrap();
        let by_id = |s: &str| {
            fragments
                .iter()
                .find(|f| f.id.to_string() == s)
                .unwrap_or_else(|| panic!("fragment {s}"))
        };
        // Example 6: (American,9) holds eight keywords — Bond's, Cafe, 9,
        // 4.3, Nice, Coffee, James, 01/11.
        assert_eq!(by_id("(American,9)").total_keywords, 8);
        // Example 7: (American,10) has TF("burger") = 2/8.
        let f10 = by_id("(American,10)");
        assert_eq!(f10.total_keywords, 8);
        assert_eq!(f10.occurrences("burger"), 2);
        // (American,12) has 17 keywords, 1 "burger" (TF 1/17 per Example 7
        // merged arithmetic: (2+1)/(8+17) = 3/25).
        let f12 = by_id("(American,12)");
        assert_eq!(f12.total_keywords, 17);
        assert_eq!(f12.occurrences("burger"), 1);
        assert_eq!(f12.record_count, 3);
        // (Thai,10) has 10 keywords with 1 "burger" (TF 1/10).
        let thai = by_id("(Thai,10)");
        assert_eq!(thai.total_keywords, 10);
        assert_eq!(thai.occurrences("burger"), 1);
    }

    #[test]
    fn fragments_for_ids_match_the_full_derivation() {
        // The bulk re-crawl must produce byte-identical fragments to
        // deriving everything and filtering — it only skips work.
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let all = fragments(&app, &db).unwrap();
        let targets: std::collections::BTreeSet<FragmentId> = all
            .iter()
            .filter(|f| f.id.to_string().contains("American"))
            .map(|f| f.id.clone())
            .collect();
        let expected: Vec<Fragment> = all
            .into_iter()
            .filter(|f| targets.contains(&f.id))
            .collect();
        assert_eq!(expected.len(), 4);
        assert_eq!(fragments_for_ids(&app, &db, &targets).unwrap(), expected);
        assert!(fragments_for_ids(&app, &db, &Default::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fragments_partition_disjointly() {
        // Sum of record counts equals the joined row count: no overlap, no
        // loss — the core fragment invariant.
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let joined = app.query.join_all(&db).unwrap();
        let fragments = fragments(&app, &db).unwrap();
        let total: u64 = fragments.iter().map(|f| f.record_count).sum();
        assert_eq!(total, joined.len() as u64);
    }
}
