//! The distributed index build: crawl output → contiguous key-rank
//! partition → per-shard index build, expressed as a restartable
//! two-job `dash-mapreduce` workflow (the paper ran exactly this
//! pipeline on a 4-node Hadoop cluster, §VII).
//!
//! ```text
//!                      ┌─────────────── job 1: ING-Plan ────────────────┐
//!  fragments ──map──▶  (group key, 1)  ──combine/reduce──▶  (key, count)│
//!                      └────────────────────┬────────────────────────────┘
//!                         driver: sort keys, prefix-sum counts
//!                                  ▼
//!                          PartitionPlan { key → (rank, shard) }
//!                      ┌─────────────── job 2: ING-Build ───────────────┐
//!  (idx, &frag) ─map─▶ (shard, FragRef{idx, rank}) ──reduce──▶ shard    │
//!                      │            sort refs by rank          dump     │
//!                      └────────────────────┬────────────────────────────┘
//!                         driver: resolve refs → per-shard runs
//!                                  ▼
//!                   ShardedEngine::from_shard_refs_impl (bulk load)
//! ```
//!
//! **Byte-identity.** The driver re-derives exactly the partition
//! [`ShardedEngine`]'s own builder computes: job 1's reduce output is
//! globally re-sorted by group key (the `BTreeMap` order the direct
//! path iterates in) and shard assignment uses the same
//! `(assigned * shards / total).min(shards - 1)` prefix-sum rule, so
//! `route_bounds` come out identical. Within a shard, fragments are
//! ordered by group rank with input order preserved inside each group:
//! the runner's shuffle sort is *stable* and concatenates split
//! outputs in split-index order, so one key's values arrive in global
//! input order, and the reducer's stable sort by rank reproduces the
//! direct partition's exact fragment sequence — interning order, and
//! therefore every handle, arena and image byte, matches. Engines
//! built through this workflow are byte-identical to direct builds
//! (`tests/ingest_equivalence.rs` proves it golden + property-style,
//! under injected faults and across kill-and-restart).
//!
//! **Zero-clone.** Job 2's inputs are `(index, &Fragment)` pairs and
//! its values are `FragRef`s carrying the fragment's *modeled* byte
//! size — the cost model meters realistic shuffle volume while the
//! wall clock moves ~24 bytes per record, and the driver resolves
//! indices back to borrowed fragments so nothing is cloned until
//! interning (or spilling).
//!
//! **Restartability.** With [`IngestConfig::spill_dir`] set, the
//! driver persists each stage's output (the partition plan after job
//! 1, the per-shard dumps after job 2) keyed by a corpus fingerprint.
//! A re-run after a crash resumes from the newest valid artifact
//! instead of recrawling: valid dumps skip both jobs, a valid plan
//! skips job 1. A fingerprint mismatch (different corpus, shard count
//! or range position) ignores stale artifacts and re-runs from
//! scratch. Both files are checksummed end to end and written
//! atomically (tmp + rename), so a torn spill is indistinguishable
//! from a missing one.
//!
//! **Fault tolerance.** Both jobs run under the configured
//! [`FaultPlan`]: scheduled task attempts fail and are retried (every
//! attempt charged by the cost model), and the output — being a pure
//! function of the inputs — is byte-identical to a fault-free run. A
//! task exhausting its attempts aborts the workflow with
//! [`CoreError::Internal`]; anything already spilled is picked up by
//! the next run.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dash_mapreduce::{ByteSized, ClusterConfig, FaultPlan, JobSpec, Workflow, WorkflowStats};
use dash_relation::{Database, Value};
use dash_webapp::WebApplication;

use crate::crawl;
use crate::engine::{validate_query, DashConfig};
use crate::error::CoreError;
use crate::fragment::{Fragment, FragmentId};
use crate::index::graph::group_key;
use crate::ingest::IngestSource;
use crate::persist;
use crate::sharded::ShardedEngine;
use crate::Result;

/// Spill-file magic for a persisted partition plan.
const PLAN_MAGIC: &[u8; 8] = b"DASHPLN1";
/// Spill-file magic for persisted per-shard fragment dumps.
const DUMPS_MAGIC: &[u8; 8] = b"DASHIDM1";
/// Plan spill file name under [`IngestConfig::spill_dir`].
const PLAN_FILE: &str = "ingest-plan.dash";
/// Dumps spill file name under [`IngestConfig::spill_dir`].
const DUMPS_FILE: &str = "ingest-dumps.dash";

/// Configuration of one distributed build.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The (simulated) cluster the workflow runs on.
    pub cluster: ClusterConfig,
    /// Target shard count; clamped to at least 1.
    pub shards: usize,
    /// Injected task failures (retried up to `faults.max_attempts`).
    pub faults: FaultPlan,
    /// Directory for restartable intermediate outputs. `None` disables
    /// spilling (the workflow still runs, but a crash re-runs it in
    /// full).
    pub spill_dir: Option<PathBuf>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            cluster: ClusterConfig::default(),
            shards: 1,
            faults: FaultPlan::new(),
            spill_dir: None,
        }
    }
}

/// What a [`distributed_build`] actually did: which stages ran, which
/// were resumed from spill, and how many task attempts the fault plan
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Job 1 was skipped because a valid persisted plan was found.
    pub resumed_plan: bool,
    /// Both jobs were skipped because valid persisted dumps were found.
    pub resumed_dumps: bool,
    /// MapReduce jobs actually executed (0, 1 or 2).
    pub jobs_run: usize,
    /// Total map-task attempts across executed jobs (> task count when
    /// the fault plan forced retries).
    pub map_attempts: u64,
    /// Total reduce-task attempts across executed jobs.
    pub reduce_attempts: u64,
}

/// The per-shard fragment runs a workflow produced: borrowed from the
/// caller's corpus on a live run, owned when resumed from spill.
#[derive(Debug)]
pub enum ShardData<'a> {
    /// Reference runs into the input corpus — the zero-clone path.
    Refs(Vec<Vec<&'a Fragment>>),
    /// Decoded spill dumps (the corpus bytes live in the file).
    Owned(Vec<Vec<Fragment>>),
}

/// Everything a finished workflow hands the engine builder: the
/// partitioned fragments, the accumulated job statistics, and the
/// execution report. Feed it to
/// [`IngestSource::Distributed`](crate::ingest::IngestSource).
#[derive(Debug)]
pub struct IngestOutput<'a> {
    /// Per-shard fragment runs, position-aligned with shard indices
    /// (empty shards preserved — the image header records the count).
    pub data: ShardData<'a>,
    /// Stats of every executed job (empty when resumed from dumps).
    pub stats: WorkflowStats,
    /// What ran, what resumed, what the faults cost.
    pub report: IngestReport,
}

/// The map value of job 2: a fragment's input index and global group
/// rank, metered at the fragment's real encoded size so the shuffle
/// cost model sees the true dump volume while only ~24 bytes move.
#[derive(Debug, Clone, Copy)]
struct FragRef {
    idx: u64,
    rank: u64,
    bytes: usize,
}

impl ByteSized for FragRef {
    fn byte_size(&self) -> usize {
        self.bytes
    }
}

/// The reduce output of job 2: one shard's fragment references in
/// final (rank, input) order.
#[derive(Debug)]
struct BuiltShard {
    shard: u32,
    refs: Vec<FragRef>,
}

impl ByteSized for BuiltShard {
    fn byte_size(&self) -> usize {
        8 + self.refs.iter().map(|r| r.bytes).sum::<usize>()
    }
}

/// Job 1's driver-side product: every group key in global key order
/// with its assigned shard; a group's rank is its position.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PartitionPlan {
    shards: usize,
    /// `(group key, shard)`, sorted ascending by key.
    groups: Vec<(Vec<Value>, usize)>,
}

impl PartitionPlan {
    /// The global rank of a group key (its index in key order).
    fn rank_of(&self, key: &[Value]) -> Option<usize> {
        self.groups
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
    }
}

/// Runs the two-job distributed build over `fragments` and returns the
/// partitioned output, resuming from spilled intermediates when
/// [`IngestConfig::spill_dir`] holds valid ones. The returned
/// [`IngestOutput`] feeds
/// [`IngestSource::Distributed`](crate::ingest::IngestSource); the
/// resulting engine is byte-identical to
/// `ShardedEngine::builder(app).shards(n).source(IngestSource::Fragments(..))`.
///
/// # Errors
///
/// Propagates query-validation errors; returns
/// [`CoreError::Internal`] when a task exhausts its fault-plan
/// attempts or a spill file cannot be written.
pub fn distributed_build<'a>(
    app: &WebApplication,
    fragments: &'a [Fragment],
    config: &IngestConfig,
) -> Result<IngestOutput<'a>> {
    validate_query(app)?;
    let range_position = app.query.range_selection_index();
    let shards = config.shards.max(1);
    let fingerprint = corpus_fingerprint(fragments, shards, range_position);
    let paths = config
        .spill_dir
        .as_deref()
        .map(|dir| (dir.join(PLAN_FILE), dir.join(DUMPS_FILE)));

    // Newest valid artifact wins: dumps skip both jobs outright.
    if let Some((_, dumps_path)) = &paths {
        if let Some(shard_fragments) = load_dumps(dumps_path, fingerprint) {
            global_counter("dash_ingest_resumed_dumps_total").inc();
            return Ok(IngestOutput {
                data: ShardData::Owned(shard_fragments),
                stats: WorkflowStats::new(),
                report: IngestReport {
                    resumed_dumps: true,
                    ..IngestReport::default()
                },
            });
        }
    }

    let mut wf = Workflow::new("ingest", config.cluster.clone());
    let mut jobs_run = 0usize;

    // ---- job 1: ING-Plan — count fragments per equality group ----
    let (plan, resumed_plan) = match paths
        .as_ref()
        .and_then(|(plan_path, _)| load_plan(plan_path, fingerprint))
    {
        Some(plan) => (plan, true),
        None => {
            let spec = JobSpec::new("ingest partition-plan")
                .label("ING-Plan")
                .combiner(|_k: &FragmentId, vs: Vec<u64>| vec![vs.iter().sum::<u64>()]);
            let counts: Vec<(FragmentId, u64)> = wf
                .run_with_faults(
                    spec,
                    fragments,
                    |f: &Fragment, emit| {
                        emit(FragmentId::new(group_key(&f.id, range_position)), 1u64)
                    },
                    |k: &FragmentId, vs: Vec<u64>, emit| emit((k.clone(), vs.iter().sum::<u64>())),
                    &config.faults,
                )
                .map_err(|e| aborted("partition-plan", &e))?;
            jobs_run += 1;
            let plan = assign_shards(counts, shards);
            if let Some((plan_path, _)) = &paths {
                persist_plan(plan_path, fingerprint, &plan)
                    .map_err(|e| spill_failed("plan", &e))?;
            }
            (plan, false)
        }
    };

    // ---- job 2: ING-Build — route fragments, order each shard ----
    let inputs: Vec<(u64, &Fragment)> = fragments
        .iter()
        .enumerate()
        .map(|(i, f)| (i as u64, f))
        .collect();
    let spec = JobSpec::new("ingest shard-build")
        .label("ING-Build")
        .reduce_tasks(shards);
    let plan_ref = &plan;
    let built: Vec<BuiltShard> = wf
        .run_with_faults(
            spec,
            &inputs,
            |&(idx, f): &(u64, &Fragment), emit| {
                let key = group_key(&f.id, range_position);
                let rank = plan_ref
                    .rank_of(&key)
                    .expect("every input group is in the plan");
                emit(
                    plan_ref.groups[rank].1 as u32,
                    FragRef {
                        idx,
                        rank: rank as u64,
                        bytes: f.byte_size(),
                    },
                );
            },
            |&shard: &u32, mut refs: Vec<FragRef>, emit| {
                // The shuffle sort is stable and split outputs
                // concatenate in split order, so values arrive in
                // global input order; a stable sort by rank reproduces
                // the direct partition's exact fragment sequence.
                refs.sort_by_key(|r| r.rank);
                emit(BuiltShard { shard, refs });
            },
            &config.faults,
        )
        .map_err(|e| aborted("shard-build", &e))?;
    jobs_run += 1;

    let mut shard_refs: Vec<Vec<&'a Fragment>> = (0..shards).map(|_| Vec::new()).collect();
    for dump in built {
        shard_refs[dump.shard as usize] = dump
            .refs
            .iter()
            .map(|r| &fragments[r.idx as usize])
            .collect();
    }
    if let Some((_, dumps_path)) = &paths {
        persist_dumps(dumps_path, fingerprint, &shard_refs)
            .map_err(|e| spill_failed("dumps", &e))?;
    }

    let stats = wf.into_stats();
    let report = IngestReport {
        resumed_plan,
        resumed_dumps: false,
        jobs_run,
        map_attempts: stats.jobs.iter().map(|j| j.map_task_attempts).sum(),
        reduce_attempts: stats.jobs.iter().map(|j| j.reduce_task_attempts).sum(),
    };
    if resumed_plan {
        global_counter("dash_ingest_resumed_plan_total").inc();
    }
    global_counter("dash_ingest_jobs_total").add(jobs_run as u64);
    global_counter("dash_ingest_map_attempts_total").add(report.map_attempts);
    global_counter("dash_ingest_reduce_attempts_total").add(report.reduce_attempts);
    Ok(IngestOutput {
        data: ShardData::Refs(shard_refs),
        stats,
        report,
    })
}

/// Crawl, then [`distributed_build`], then assemble — the full
/// paper pipeline (crawl → partition → index) behind one call. The
/// crawl workflow's stats and both mapreduce jobs' stats land on the
/// engine's accumulator ([`ShardedEngine::crawl_stats`]).
///
/// # Errors
///
/// Propagates crawl, workflow and assembly errors (see
/// [`distributed_build`]).
pub fn distributed_crawl_build(
    app: &WebApplication,
    db: &Database,
    config: &DashConfig,
    ingest: &IngestConfig,
) -> Result<ShardedEngine> {
    validate_query(app)?;
    let crawl = crawl::run_scoped(app, db, &config.cluster, config.algorithm, &config.scope)?;
    let output = distributed_build(app, &crawl.fragments, ingest)?;
    ShardedEngine::builder(app.clone())
        .stats(crawl.stats)
        .source(IngestSource::Distributed(output))
        .build()
}

/// Job 1's driver step: sort group counts into global key order and
/// assign each group a shard by fragment-mass prefix sum — the exact
/// rule the direct partition uses, so `route_bounds` match.
fn assign_shards(mut counts: Vec<(FragmentId, u64)>, shards: usize) -> PartitionPlan {
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    let total: usize = counts.iter().map(|(_, n)| *n as usize).sum();
    let total = total.max(1);
    let mut groups = Vec::with_capacity(counts.len());
    let mut assigned = 0usize;
    for (key, n) in counts {
        let shard = (assigned * shards / total).min(shards - 1);
        groups.push((key.0, shard));
        assigned += n as usize;
    }
    PartitionPlan { shards, groups }
}

fn aborted(job: &str, e: &dash_mapreduce::JobAborted) -> CoreError {
    CoreError::Internal {
        detail: format!("ingest {job}: {e}"),
    }
}

fn spill_failed(what: &str, e: &std::io::Error) -> CoreError {
    CoreError::Internal {
        detail: format!("ingest spill ({what}): {e}"),
    }
}

// ---------------------------------------------------------------------
// Corpus fingerprint + spill files
// ---------------------------------------------------------------------

/// An order-sensitive fingerprint of (corpus, shard count, range
/// position): each fragment is canonically encoded (v1 record codec)
/// and checksummed, and the rolling mix rotates between fragments so
/// reorderings change the value. Spilled artifacts carry this; a
/// mismatch on load means the artifact belongs to a different build
/// and is ignored.
fn corpus_fingerprint(fragments: &[Fragment], shards: usize, range_position: Option<usize>) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = (fragments.len() as u64)
        .wrapping_mul(K)
        .wrapping_add(shards as u64)
        .wrapping_mul(K)
        .wrapping_add(range_position.map_or(u64::MAX, |p| p as u64));
    let mut buf = Vec::new();
    for f in fragments {
        buf.clear();
        persist::write_one_fragment(&mut buf, f).expect("vec write cannot fail");
        h = h.rotate_left(17) ^ persist::checksum64(&buf);
    }
    h
}

/// Writes `magic + payload + checksum64(payload)` atomically: to a tmp
/// file first, then renamed into place, so a crash mid-write leaves no
/// half-valid artifact.
fn write_spill(path: &Path, magic: &[u8; 8], payload: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(magic)?;
        file.write_all(payload)?;
        file.write_all(&persist::checksum64(payload).to_le_bytes())?;
        file.sync_all()?;
    }
    global_counter("dash_ingest_spill_write_bytes_total").add(16 + payload.len() as u64);
    fs::rename(&tmp, path)
}

/// Reads a spill file back, verifying magic and trailing checksum.
/// Any failure (missing, foreign, torn, bit-flipped) returns `None` —
/// a bad artifact is never an error, just a cache miss that re-runs
/// the stage.
fn read_spill(path: &Path, magic: &[u8; 8]) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    global_counter("dash_ingest_spill_read_bytes_total").add(bytes.len() as u64);
    if bytes.len() < 16 || &bytes[..8] != magic {
        return None;
    }
    let payload = &bytes[8..bytes.len() - 8];
    let want = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().ok()?);
    if persist::checksum64(payload) != want {
        return None;
    }
    Some(payload.to_vec())
}

/// A counter of [`dash_obs::Registry::global`] — ingest has no
/// instance boundary, so its tallies are process-wide.
fn global_counter(name: &str) -> std::sync::Arc<dash_obs::Counter> {
    dash_obs::Registry::global().counter(name)
}

fn persist_plan(path: &Path, fingerprint: u64, plan: &PartitionPlan) -> std::io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&(plan.shards as u64).to_le_bytes());
    payload.extend_from_slice(&(plan.groups.len() as u64).to_le_bytes());
    for (key, shard) in &plan.groups {
        payload.extend_from_slice(&(key.len() as u64).to_le_bytes());
        for v in key {
            persist::write_value(&mut payload, v)?;
        }
        payload.extend_from_slice(&(*shard as u64).to_le_bytes());
    }
    write_spill(path, PLAN_MAGIC, &payload)
}

fn load_plan(path: &Path, fingerprint: u64) -> Option<PartitionPlan> {
    let payload = read_spill(path, PLAN_MAGIC)?;
    let mut reader = payload.as_slice();
    if persist::read_u64(&mut reader).ok()? != fingerprint {
        return None;
    }
    let shards = persist::read_u64(&mut reader).ok()? as usize;
    let count = persist::read_u64(&mut reader).ok()?;
    let mut groups = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let arity = persist::read_u64(&mut reader).ok()?;
        if arity > 64 {
            return None;
        }
        let mut key = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            key.push(persist::read_value(&mut reader).ok()?);
        }
        let shard = persist::read_u64(&mut reader).ok()? as usize;
        if shard >= shards {
            return None;
        }
        groups.push((key, shard));
    }
    Some(PartitionPlan { shards, groups })
}

fn persist_dumps(path: &Path, fingerprint: u64, shards: &[Vec<&Fragment>]) -> std::io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&(shards.len() as u64).to_le_bytes());
    for refs in shards {
        persist::write_fragment_ref_list(&mut payload, refs)?;
    }
    write_spill(path, DUMPS_MAGIC, &payload)
}

fn load_dumps(path: &Path, fingerprint: u64) -> Option<Vec<Vec<Fragment>>> {
    let payload = read_spill(path, DUMPS_MAGIC)?;
    let mut reader = payload.as_slice();
    if persist::read_u64(&mut reader).ok()? != fingerprint {
        return None;
    }
    let shards = persist::read_u64(&mut reader).ok()?;
    if shards > (1 << 16) {
        return None;
    }
    (0..shards)
        .map(|_| persist::read_fragment_list(&mut reader).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchRequest;
    use dash_webapp::fooddb;

    fn fooddb_fragments() -> (WebApplication, Vec<Fragment>) {
        let app = fooddb::search_application().unwrap();
        let db = fooddb::database();
        let crawl = crawl::run(&app, &db, &Default::default(), Default::default()).unwrap();
        (app, crawl.fragments)
    }

    #[test]
    fn workflow_build_matches_direct_build_exactly() {
        let (app, fragments) = fooddb_fragments();
        for shards in [1usize, 2, 4] {
            let direct = ShardedEngine::builder(app.clone())
                .shards(shards)
                .source(IngestSource::Fragments(&fragments))
                .build()
                .unwrap();
            let config = IngestConfig {
                shards,
                ..IngestConfig::default()
            };
            let output = distributed_build(&app, &fragments, &config).unwrap();
            assert_eq!(output.report.jobs_run, 2);
            assert!(!output.report.resumed_plan && !output.report.resumed_dumps);
            let distributed = ShardedEngine::builder(app.clone())
                .source(IngestSource::Distributed(output))
                .build()
                .unwrap();
            assert_eq!(distributed.shard_sizes(), direct.shard_sizes());
            // Byte-identity: same arena image, bit for bit.
            let (mut a, mut b) = (Vec::new(), Vec::new());
            direct.write_image(&mut a).unwrap();
            distributed.write_image(&mut b).unwrap();
            assert_eq!(a, b, "shards={shards}");
            let req = SearchRequest::new(&["burger", "fries"]).k(10).min_size(1);
            assert_eq!(distributed.search(&req), direct.search(&req));
        }
    }

    #[test]
    fn faults_do_not_change_the_output() {
        let (app, fragments) = fooddb_fragments();
        let clean = distributed_build(
            &app,
            &fragments,
            &IngestConfig {
                shards: 2,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        let faulted = distributed_build(
            &app,
            &fragments,
            &IngestConfig {
                shards: 2,
                faults: FaultPlan::new().fail_map(0, 0).fail_reduce(0, 0),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert!(faulted.report.map_attempts > clean.report.map_attempts);
        let engine_of = |output| {
            ShardedEngine::builder(app.clone())
                .source(IngestSource::Distributed(output))
                .build()
                .unwrap()
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        engine_of(clean).write_image(&mut a).unwrap();
        engine_of(faulted).write_image(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_builds_empty_shards() {
        let (app, _) = fooddb_fragments();
        let config = IngestConfig {
            shards: 3,
            ..IngestConfig::default()
        };
        let output = distributed_build(&app, &[], &config).unwrap();
        let distributed = ShardedEngine::builder(app.clone())
            .source(IngestSource::Distributed(output))
            .build()
            .unwrap();
        let direct = ShardedEngine::builder(app)
            .shards(3)
            .source(IngestSource::Fragments(&[]))
            .build()
            .unwrap();
        assert_eq!(distributed.shard_count(), 3);
        assert_eq!(distributed.shard_sizes(), direct.shard_sizes());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        direct.write_image(&mut a).unwrap();
        distributed.write_image(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_faults_abort_with_internal_error() {
        let (app, fragments) = fooddb_fragments();
        let mut faults = FaultPlan::new();
        for a in 0..faults.max_attempts {
            faults = faults.fail_map(0, a);
        }
        let err = distributed_build(
            &app,
            &fragments,
            &IngestConfig {
                shards: 2,
                faults,
                ..IngestConfig::default()
            },
        )
        .expect_err("map task 0 exhausts its attempts");
        assert!(err.to_string().contains("ingest partition-plan"));
    }

    #[test]
    fn crawl_build_convenience_matches_builder_crawl() {
        let app = fooddb::search_application().unwrap();
        let db = fooddb::database();
        let dash_config = DashConfig::default();
        let direct = ShardedEngine::builder(app.clone())
            .shards(2)
            .source(IngestSource::Crawl {
                db: &db,
                config: &dash_config,
            })
            .build()
            .unwrap();
        let ingest = IngestConfig {
            shards: 2,
            ..IngestConfig::default()
        };
        let distributed = distributed_crawl_build(&app, &db, &dash_config, &ingest).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        direct.write_image(&mut a).unwrap();
        distributed.write_image(&mut b).unwrap();
        assert_eq!(a, b);
        // The mapreduce jobs' stats rode along with the crawl's.
        assert!(distributed.crawl_stats().jobs.len() > direct.crawl_stats().jobs.len());
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let (_, fragments) = fooddb_fragments();
        let base = corpus_fingerprint(&fragments, 2, None);
        assert_eq!(base, corpus_fingerprint(&fragments, 2, None));
        assert_ne!(base, corpus_fingerprint(&fragments, 3, None));
        assert_ne!(base, corpus_fingerprint(&fragments, 2, Some(1)));
        let mut reversed = fragments.clone();
        reversed.reverse();
        assert_ne!(base, corpus_fingerprint(&reversed, 2, None));
        assert_ne!(base, corpus_fingerprint(&fragments[1..], 2, None));
    }
}
