//! The engine-ingest layer: one front door for every way a
//! [`ShardedEngine`] comes to exist, plus the distributed
//! (mapreduce-backed) bulk build.
//!
//! The engine's construction surface had accreted five uncoordinated
//! entry points (crawl-and-build, in-memory fragments, per-shard
//! dumps, arena images, streamed batches) before the distributed build
//! would have added a sixth. [`EngineBuilder`] collapses them into one
//! API: pick an [`IngestSource`], optionally set the shard count and a
//! stats accumulator, and `build()`:
//!
//! ```text
//! ShardedEngine::builder(app)
//!     .shards(4)
//!     .source(IngestSource::Fragments(&fragments))
//!     .build()?
//! ```
//!
//! Sources that carry their own partition (dumps, images, batches,
//! mapreduce output) ignore `shards` — the partition is taken exactly
//! as given, never re-derived, so maintained engines round-trip with
//! their drifted balance intact.
//!
//! The distributed build lives in [`distributed`]: crawl → partition →
//! per-shard index build expressed as a two-job `dash-mapreduce`
//! workflow whose output feeds [`IngestSource::Distributed`] and is
//! **byte-identical** to a direct build over the same fragments — see
//! the module docs there for the workflow diagram and the
//! restartability story.

pub mod distributed;

use dash_mapreduce::WorkflowStats;
use dash_relation::Database;
use dash_webapp::WebApplication;

use crate::engine::DashConfig;
use crate::fragment::Fragment;
use crate::sharded::ShardedEngine;
use crate::Result;

pub use distributed::{
    distributed_build, distributed_crawl_build, IngestConfig, IngestOutput, IngestReport, ShardData,
};

/// Where an [`EngineBuilder`] gets its fragments from.
///
/// Two families: *unpartitioned* sources ([`IngestSource::Fragments`],
/// [`IngestSource::Crawl`]) hand the builder raw fragments and let it
/// derive the contiguous key-rank partition at the configured shard
/// count; *pre-partitioned* sources carry their partition with them
/// and ignore the builder's `shards` setting.
pub enum IngestSource<'a> {
    /// Already-derived fragments; the builder partitions them into the
    /// configured number of shards.
    Fragments(&'a [Fragment]),
    /// Per-shard fragment lists (the output of
    /// [`ShardedEngine::dump_shards`] or
    /// [`crate::persist::read_sharded_fragments`]); the partition is
    /// taken exactly as given.
    ShardDumps(&'a [Vec<Fragment>]),
    /// A v2 `DASHIMG2` arena image ([`ShardedEngine::write_image`] is
    /// the dump half) — the zero-parse bulk-read load path.
    Image(&'a [u8]),
    /// Per-shard fragment batches consumed one at a time — the
    /// bounded-memory path for generated corpora (each batch is
    /// indexed and dropped before the next is pulled).
    Batches(Box<dyn Iterator<Item = Vec<Fragment>> + 'a>),
    /// Crawl the database first (the paper's pipeline front half),
    /// then partition into the configured number of shards. The crawl
    /// workflow's job stats are pushed onto the builder's accumulator.
    Crawl {
        /// The database to crawl.
        db: &'a Database,
        /// Crawl algorithm/scope/cluster configuration.
        config: &'a DashConfig,
    },
    /// The output of a distributed mapreduce build
    /// ([`distributed_build`]); its workflow stats are pushed onto the
    /// builder's accumulator and its per-shard runs load zero-copy.
    Distributed(IngestOutput<'a>),
}

impl std::fmt::Debug for IngestSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestSource::Fragments(frags) => {
                f.debug_tuple("Fragments").field(&frags.len()).finish()
            }
            IngestSource::ShardDumps(shards) => {
                f.debug_tuple("ShardDumps").field(&shards.len()).finish()
            }
            IngestSource::Image(bytes) => f.debug_tuple("Image").field(&bytes.len()).finish(),
            IngestSource::Batches(_) => f.write_str("Batches(..)"),
            IngestSource::Crawl { .. } => f.write_str("Crawl { .. }"),
            IngestSource::Distributed(output) => {
                f.debug_tuple("Distributed").field(&output.report).finish()
            }
        }
    }
}

/// Builds a [`ShardedEngine`] from any [`IngestSource`] — the single
/// construction API. Created by [`ShardedEngine::builder`].
///
/// Defaults: one shard, an empty fragment source, a fresh (empty)
/// stats accumulator.
#[derive(Debug)]
pub struct EngineBuilder<'a> {
    app: WebApplication,
    shards: usize,
    stats: WorkflowStats,
    source: IngestSource<'a>,
}

impl<'a> EngineBuilder<'a> {
    pub(crate) fn new(app: WebApplication) -> Self {
        EngineBuilder {
            app,
            shards: 1,
            stats: WorkflowStats::new(),
            source: IngestSource::Fragments(&[]),
        }
    }

    /// Sets the shard count for unpartitioned sources
    /// ([`IngestSource::Fragments`], [`IngestSource::Crawl`]); clamped
    /// to at least 1. Pre-partitioned sources (dumps, images, batches,
    /// distributed output) carry their own partition and ignore this.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Seeds the stats accumulator the engine will report from
    /// [`ShardedEngine::crawl_stats`]; sources that run workflows
    /// ([`IngestSource::Crawl`], [`IngestSource::Distributed`]) push
    /// their job stats on top.
    pub fn stats(mut self, stats: WorkflowStats) -> Self {
        self.stats = stats;
        self
    }

    /// Sets the ingest source (default: an empty fragment list).
    pub fn source(mut self, source: IngestSource<'a>) -> Self {
        self.source = source;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates query validation and index-construction errors; for
    /// pre-partitioned sources, returns
    /// [`CoreError::Internal`](crate::CoreError::Internal) when the
    /// shards are not contiguous, disjoint runs of group-key order,
    /// and for [`IngestSource::Image`] when the image is torn,
    /// corrupted, or from a mismatched application.
    pub fn build(self) -> Result<ShardedEngine> {
        let EngineBuilder {
            app,
            shards,
            mut stats,
            source,
        } = self;
        match source {
            IngestSource::Fragments(fragments) => {
                ShardedEngine::from_fragments_impl(app, fragments, shards, stats)
            }
            IngestSource::ShardDumps(shard_fragments) => {
                ShardedEngine::from_shard_fragments_impl(app, shard_fragments, stats)
            }
            IngestSource::Image(bytes) => ShardedEngine::from_image_impl(app, bytes, stats),
            IngestSource::Batches(batches) => ShardedEngine::from_batches_impl(app, batches, stats),
            IngestSource::Crawl { db, config } => {
                ShardedEngine::crawl_build_impl(&app, db, config, shards, stats)
            }
            IngestSource::Distributed(output) => {
                for job in output.stats.jobs {
                    stats.push(job);
                }
                match output.data {
                    ShardData::Refs(shard_refs) => {
                        ShardedEngine::from_shard_refs_impl(app, &shard_refs, stats)
                    }
                    ShardData::Owned(shard_fragments) => {
                        ShardedEngine::from_shard_fragments_impl(app, &shard_fragments, stats)
                    }
                }
            }
        }
    }
}

impl ShardedEngine {
    /// Starts an [`EngineBuilder`] — the single front door for every
    /// construction path (see [`crate::ingest`] for the source
    /// catalog).
    pub fn builder<'a>(app: WebApplication) -> EngineBuilder<'a> {
        EngineBuilder::new(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use crate::search::SearchRequest;
    use dash_webapp::fooddb;

    fn fooddb_parts() -> (WebApplication, Database) {
        (fooddb::search_application().unwrap(), fooddb::database())
    }

    #[test]
    fn every_source_builds_the_same_engine() {
        let (app, db) = fooddb_parts();
        let config = DashConfig::default();
        let crawled = ShardedEngine::builder(app.clone())
            .shards(2)
            .source(IngestSource::Crawl {
                db: &db,
                config: &config,
            })
            .build()
            .unwrap();
        assert!(crawled.fragment_count() > 0);
        // Crawl stats rode along on the accumulator.
        assert!(!crawled.crawl_stats().jobs.is_empty());

        let shards = crawled.dump_shards();
        let flat: Vec<Fragment> = shards.iter().flatten().cloned().collect();
        let req = SearchRequest::new(&["burger", "fries"]).k(10).min_size(1);
        let want = crawled.search(&req);

        let from_fragments = ShardedEngine::builder(app.clone())
            .shards(2)
            .source(IngestSource::Fragments(&flat))
            .build()
            .unwrap();
        assert_eq!(from_fragments.search(&req), want);

        let from_dumps = ShardedEngine::builder(app.clone())
            .source(IngestSource::ShardDumps(&shards))
            .build()
            .unwrap();
        assert_eq!(from_dumps.shard_sizes(), crawled.shard_sizes());
        assert_eq!(from_dumps.search(&req), want);

        let from_batches = ShardedEngine::builder(app.clone())
            .source(IngestSource::Batches(Box::new(shards.clone().into_iter())))
            .build()
            .unwrap();
        assert_eq!(from_batches.search(&req), want);

        let mut image = Vec::new();
        crawled.write_image(&mut image).unwrap();
        let from_image = ShardedEngine::builder(app)
            .source(IngestSource::Image(&image))
            .build()
            .unwrap();
        assert_eq!(from_image.shard_sizes(), crawled.shard_sizes());
        assert_eq!(from_image.search(&req), want);
    }

    #[test]
    fn default_source_is_an_empty_engine() {
        let (app, _) = fooddb_parts();
        let engine = ShardedEngine::builder(app).build().unwrap();
        assert_eq!(engine.fragment_count(), 0);
        assert_eq!(engine.shard_count(), 1);
    }

    #[test]
    fn dumps_roundtrip_through_persist() {
        let (app, db) = fooddb_parts();
        let config = DashConfig::default();
        let engine = ShardedEngine::builder(app.clone())
            .shards(3)
            .source(IngestSource::Crawl {
                db: &db,
                config: &config,
            })
            .build()
            .unwrap();
        let shards = engine.dump_shards();
        let mut bytes = Vec::new();
        persist::write_sharded_fragments(&mut bytes, &shards).unwrap();
        let decoded = persist::read_sharded_fragments(bytes.as_slice()).unwrap();
        let loaded = ShardedEngine::builder(app)
            .source(IngestSource::ShardDumps(&decoded))
            .build()
            .unwrap();
        assert_eq!(loaded.shard_sizes(), engine.shard_sizes());
    }
}
