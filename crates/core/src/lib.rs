//! # dash-core
//!
//! The Dash search engine itself (ICDCS 2012): everything between "here is
//! a web application and its database" and "here are the URLs of the k
//! db-pages most relevant to your keywords".
//!
//! ## The pipeline (Figure 4 of the paper)
//!
//! 1. **Web application analysis** ([`dash_webapp`]) yields a
//!    parameterized PSJ query and the reverse query-string parsing logic.
//! 2. **Database crawling** ([`crawl`]) derives *db-page fragments* — the
//!    disjoint building blocks of all db-pages (Definition 2) — with
//!    MapReduce workflows: the straightforward [`crawl::stepwise`]
//!    algorithm and the shuffle-minimizing [`crawl::integrated`] algorithm.
//! 3. **Fragment indexing** ([`index`]) builds the *fragment index*: a
//!    [fragment catalog](index::FragmentCatalog) interning every fragment
//!    identifier into a dense [`index::Frag`] handle, an
//!    [inverted fragment index](index::InvertedFragmentIndex) (keyword →
//!    TF-sorted fragment postings) and a
//!    [fragment graph](index::FragmentGraph) recording which fragments can
//!    merge into a db-page.
//! 4. **Top-k search** ([`search`]) assembles fragments into db-pages with
//!    Algorithm 1 and suggests their URLs.
//!
//! ## Handle-native, columnar index layout
//!
//! Everything past the crawl is keyed on interned handles, not
//! `Vec<Value>` identifiers:
//!
//! * The **catalog** assigns each fragment a `u32` [`index::Frag`]
//!   handle (and each keyword a [`index::Kw`]) once, at build or
//!   maintenance time. Handles index columnar arrays directly.
//! * The **inverted index** stores all posting lists in two contiguous
//!   arenas — TF-sorted for the seeding cursor, fragment-sorted for the
//!   O(log L) occurrence probe — instead of nested
//!   `HashMap<String, HashMap<FragmentId, u64>>` maps.
//! * The **graph** stores each equality group as its own contiguous
//!   node/weight column, addressed through a key-rank permutation —
//!   locating a posting's node is an O(1) lookup, and incremental
//!   maintenance splices one group's column, never a global one.
//! * **Top-k candidates** are six plain integers/floats (`Copy`), with
//!   per-candidate keyword occurrences in a pooled scratch — the heap
//!   loop performs zero `Vec<Value>` clones. Identifiers are resolved
//!   back only when a [`SearchHit`] is emitted.
//!
//! Index construction parallelizes across equality groups and inverted
//! lists (scoped threads).
//!
//! ## Sharded, concurrent search on a persistent worker pool
//!
//! [`sharded::ShardedEngine`] partitions the equality groups into `N`
//! contiguous runs of key-rank order (zero-copy: shard parts borrow
//! the crawl output), builds each shard a self-contained
//! [`FragmentIndex`], and serves search by running the heap loop per
//! shard and merging the recorded pop traces in exact global heap
//! order. Every shard owns a long-lived, channel-fed worker thread
//! with its own pooled scratch; the calling thread executes the first
//! shard inline, so single-shard (and single-core) searches never
//! touch a channel. Results are **byte-identical** to
//! [`DashEngine::search`] for any shard count — proven by the
//! `sharded_equivalence` test tier — and both engines offer a batched
//! `search_many` that reuses scratch across requests. `DASH_SHARDS`
//! selects the partition width in deployments (see
//! [`sharded::env_shards`]).
//!
//! ## One front door for construction: the ingest layer
//!
//! Every way a `ShardedEngine` comes to exist goes through
//! [`ingest::EngineBuilder`] — `ShardedEngine::builder(app)` plus an
//! [`ingest::IngestSource`] (crawl-and-build, in-memory fragments,
//! per-shard dumps, `DASHIMG2` arena images, streamed batches, or the
//! output of the distributed build). [`ingest::distributed`] expresses
//! crawl → partition → per-shard index build as a restartable two-job
//! `dash-mapreduce` workflow whose resulting engine is byte-identical
//! to a direct build — including under injected worker faults and
//! across kill-and-restart resume (the `ingest_equivalence` test
//! tier).
//!
//! ## The unified delta write path
//!
//! Both engines mutate through one abstraction: an
//! [`update::IndexDelta`] (stale identifiers out, fresh
//! fragments in), built from a base-table change by [`update`] and
//! applied atomically by [`FragmentIndex::apply`] — posting splices
//! batched into one arena rewrite, graph splices confined to the
//! affected groups' columns. [`DashEngine`] applies deltas to its one
//! index; [`sharded::ShardedEngine`] routes each entry
//! to the shard owning its equality group (a static key-range table)
//! and applies sub-deltas on the worker pool, refreshing global group
//! ranks and IDF incrementally — per-shard work only, no rebuild, with
//! post-update searches byte-identical to a freshly built single
//! engine (the `sharded_maintenance` test tier). Per-shard persistence
//! ([`persist`]) round-trips a maintained partition without
//! re-partitioning.
//!
//! [`engine::DashEngine`] packages the single-heap pipeline; both
//! engines implement [`engine::SearchEngine`], the
//! serving trait [`multi::MultiDash`] federates over (so
//! multi-application scoping composes with sharding); [`baseline`]
//! provides the naive materialize-every-db-page engine the fragment
//! design is motivated against; [`update`] and [`multi`] implement the
//! paper's two future-work extensions (incremental index maintenance and
//! multi-application fragment sharing).
//!
//! ## Quickstart
//!
//! ```
//! use dash_core::{DashConfig, DashEngine, SearchRequest};
//! use dash_webapp::fooddb;
//!
//! # fn main() -> Result<(), dash_core::CoreError> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! let engine = DashEngine::build(&app, &db, &DashConfig::default())?;
//! // Example 7 of the paper: top-2 pages for "burger" with s = 20.
//! let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
//! assert_eq!(hits.len(), 2);
//! assert!(hits.iter().any(|h| h.url.contains("c=Thai")));
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod crawl;
pub mod engine;
pub mod error;
pub mod fragment;
pub mod index;
pub mod ingest;
pub mod multi;
mod par;
pub mod persist;
pub mod scope;
pub mod search;
pub mod sharded;
pub mod stats;
pub mod update;
pub mod wire;

pub use crawl::{CrawlAlgorithm, CrawlOutput};
pub use engine::{DashConfig, DashEngine, SearchEngine};
pub use error::CoreError;
pub use fragment::{Fragment, FragmentId};
pub use index::{
    Frag, FragmentCatalog, FragmentGraph, FragmentIndex, GroupId, InvertedFragmentIndex, Kw,
};
pub use ingest::{
    distributed_build, distributed_crawl_build, EngineBuilder, IngestConfig, IngestOutput,
    IngestReport, IngestSource, ShardData,
};
pub use multi::MultiDash;
pub use scope::CrawlScope;
pub use search::{SearchHit, SearchRequest};
pub use sharded::{env_shards, ShardedEngine};
pub use stats::IndexStats;
pub use update::{DeltaSignature, IndexDelta, RecordChange, RefreshStats};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
