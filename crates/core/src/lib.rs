//! # dash-core
//!
//! The Dash search engine itself (ICDCS 2012): everything between "here is
//! a web application and its database" and "here are the URLs of the k
//! db-pages most relevant to your keywords".
//!
//! ## The pipeline (Figure 4 of the paper)
//!
//! 1. **Web application analysis** ([`dash_webapp`]) yields a
//!    parameterized PSJ query and the reverse query-string parsing logic.
//! 2. **Database crawling** ([`crawl`]) derives *db-page fragments* — the
//!    disjoint building blocks of all db-pages (Definition 2) — with
//!    MapReduce workflows: the straightforward [`crawl::stepwise`]
//!    algorithm and the shuffle-minimizing [`crawl::integrated`] algorithm.
//! 3. **Fragment indexing** ([`index`]) builds the *fragment index*: an
//!    [inverted fragment index](index::InvertedFragmentIndex) (keyword →
//!    TF-sorted fragment postings) plus a
//!    [fragment graph](index::FragmentGraph) recording which fragments can
//!    merge into a db-page.
//! 4. **Top-k search** ([`search`]) assembles fragments into db-pages with
//!    Algorithm 1 and suggests their URLs.
//!
//! [`engine::DashEngine`] packages the whole thing; [`baseline`] provides
//! the naive materialize-every-db-page engine the fragment design is
//! motivated against; [`update`] and [`multi`] implement the paper's two
//! future-work extensions (incremental index maintenance and
//! multi-application fragment sharing).
//!
//! ## Quickstart
//!
//! ```
//! use dash_core::{DashConfig, DashEngine, SearchRequest};
//! use dash_webapp::fooddb;
//!
//! # fn main() -> Result<(), dash_core::CoreError> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! let engine = DashEngine::build(&app, &db, &DashConfig::default())?;
//! // Example 7 of the paper: top-2 pages for "burger" with s = 20.
//! let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
//! assert_eq!(hits.len(), 2);
//! assert!(hits.iter().any(|h| h.url.contains("c=Thai")));
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod crawl;
pub mod engine;
pub mod error;
pub mod fragment;
pub mod index;
pub mod multi;
pub mod persist;
pub mod scope;
pub mod search;
pub mod stats;
pub mod update;

pub use crawl::{CrawlAlgorithm, CrawlOutput};
pub use engine::{DashConfig, DashEngine};
pub use error::CoreError;
pub use fragment::{Fragment, FragmentId};
pub use index::{FragmentGraph, FragmentIndex, InvertedFragmentIndex};
pub use scope::CrawlScope;
pub use search::{SearchHit, SearchRequest};
pub use stats::IndexStats;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
