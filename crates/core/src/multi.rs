//! Multiple web applications over one database — the paper's second
//! future-work item (Section VIII): "multiple web applications would
//! derive db-pages based on some common contents from a database … a new
//! approach is demanded to eliminate duplicate contents of db-pages from
//! different web applications".
//!
//! [`MultiDash`] builds one fragment index per application but (a)
//! reports how much fragment *content* the applications share, and (b)
//! searches all applications at once, suppressing result pages whose
//! content signature duplicates a higher-ranked page from another
//! application.
//!
//! The federation is generic over the
//! [`crate::engine::SearchEngine`] backing each
//! application: [`MultiDash::build`] federates single-index
//! [`DashEngine`]s, [`MultiDash::build_sharded`] federates
//! [`crate::sharded::ShardedEngine`]s — multi-application
//! scoping composes with sharding (and with the shard worker pools
//! underneath) without the merge layer knowing.

use std::collections::{BTreeMap, HashMap};

use dash_mapreduce::ClusterConfig;
use dash_relation::Database;
use dash_webapp::WebApplication;

use crate::crawl::{self, CrawlAlgorithm};
use crate::engine::{DashEngine, SearchEngine};
use crate::fragment::{Fragment, FragmentId};
use crate::search::{SearchHit, SearchRequest};
use crate::sharded::ShardedEngine;
use crate::Result;

/// Cross-application content-sharing statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharingStats {
    /// Total fragments across all applications.
    pub total_fragments: usize,
    /// Distinct fragment *contents* (keyword multiset signatures).
    pub distinct_contents: usize,
    /// Fragments whose content also appears under another application.
    pub shared_fragments: usize,
}

/// A search hit attributed to the application that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHit {
    /// Index into the application list.
    pub app_index: usize,
    /// Application name.
    pub app_name: String,
    /// The underlying hit.
    pub hit: SearchHit,
}

/// A federation of Dash engines over one database, generic over the
/// engine kind backing each application (single-index by default).
#[derive(Debug)]
pub struct MultiDash<E: SearchEngine = DashEngine> {
    engines: Vec<E>,
    /// Per application: fragment id → content signature.
    signatures: Vec<HashMap<FragmentId, u64>>,
    stats: SharingStats,
}

impl MultiDash<DashEngine> {
    /// Builds one single-index engine per application (all crawled with
    /// the same algorithm and cluster) and computes sharing statistics.
    ///
    /// # Errors
    ///
    /// Propagates per-application build errors.
    pub fn build(
        apps: &[WebApplication],
        db: &Database,
        cluster: &ClusterConfig,
        algorithm: CrawlAlgorithm,
    ) -> Result<Self> {
        Self::build_with(apps, db, cluster, algorithm, DashEngine::from_fragments)
    }
}

impl MultiDash<ShardedEngine> {
    /// Builds one *sharded* engine per application — multi-application
    /// scoping composed with sharding: every application's handle space
    /// is partitioned into `shards` worker-pool-served shards, and the
    /// federation's merge/dedup layer runs unchanged on top (per-app
    /// results are byte-identical to the single-index build, so the
    /// federated results are too).
    ///
    /// # Errors
    ///
    /// Propagates per-application build errors.
    pub fn build_sharded(
        apps: &[WebApplication],
        db: &Database,
        cluster: &ClusterConfig,
        algorithm: CrawlAlgorithm,
        shards: usize,
    ) -> Result<Self> {
        Self::build_with(apps, db, cluster, algorithm, |app, fragments, stats| {
            ShardedEngine::builder(app)
                .shards(shards)
                .stats(stats)
                .source(crate::ingest::IngestSource::Fragments(fragments))
                .build()
        })
    }
}

impl<E: SearchEngine> MultiDash<E> {
    /// The shared build pipeline: crawl each application, compute
    /// content-sharing statistics, and hand the fragments to
    /// `make_engine` for indexing.
    fn build_with(
        apps: &[WebApplication],
        db: &Database,
        cluster: &ClusterConfig,
        algorithm: CrawlAlgorithm,
        make_engine: impl Fn(WebApplication, &[Fragment], dash_mapreduce::WorkflowStats) -> Result<E>,
    ) -> Result<Self> {
        let mut engines = Vec::with_capacity(apps.len());
        let mut signatures = Vec::with_capacity(apps.len());
        let mut content_owners: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut total_fragments = 0usize;

        for (i, app) in apps.iter().enumerate() {
            let crawl = crawl::run(app, db, cluster, algorithm)?;
            let mut sig_map = HashMap::with_capacity(crawl.fragments.len());
            for f in &crawl.fragments {
                let sig = content_signature(f);
                sig_map.insert(f.id.clone(), sig);
                content_owners.entry(sig).or_default().push(i);
            }
            total_fragments += crawl.fragments.len();
            engines.push(make_engine(app.clone(), &crawl.fragments, crawl.stats)?);
            signatures.push(sig_map);
        }

        let distinct_contents = content_owners.len();
        let shared_fragments = content_owners
            .values()
            .filter(|owners| owners.iter().any(|&o| o != owners[0]))
            .map(Vec::len)
            .sum();

        Ok(MultiDash {
            engines,
            signatures,
            stats: SharingStats {
                total_fragments,
                distinct_contents,
                shared_fragments,
            },
        })
    }

    /// The per-application engines.
    pub fn engines(&self) -> &[E] {
        &self.engines
    }

    /// Content-sharing statistics.
    pub fn stats(&self) -> SharingStats {
        self.stats
    }

    /// Federated top-k: searches every application, merges by score, and
    /// drops pages whose fragment-content signature multiset duplicates a
    /// higher-ranked page (the cross-application duplicate elimination
    /// the paper calls for).
    pub fn search(&self, request: &SearchRequest) -> Vec<MultiHit> {
        let per_app: Vec<Vec<SearchHit>> = self.engines.iter().map(|e| e.search(request)).collect();
        self.merge(request, per_app)
    }

    /// Batched federated top-k: answers every request, using each
    /// engine's scratch-pooled [`DashEngine::search_many`] underneath.
    /// Results are position-aligned with `requests`; each equals the
    /// corresponding [`MultiDash::search`] call.
    pub fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<MultiHit>> {
        // The per-application batches are independent — run them on
        // worker threads.
        let mut per_engine: Vec<Vec<Vec<SearchHit>>> =
            crate::par::map(self.engines.iter().collect(), |engine: &E| {
                engine.search_many(requests)
            });
        requests
            .iter()
            .enumerate()
            .map(|(r, request)| {
                let per_app: Vec<Vec<SearchHit>> = per_engine
                    .iter_mut()
                    .map(|engine_hits| std::mem::take(&mut engine_hits[r]))
                    .collect();
                self.merge(request, per_app)
            })
            .collect()
    }

    /// Merges per-application hit lists: sort by score, attribute to
    /// applications, and drop content-signature duplicates.
    fn merge(&self, request: &SearchRequest, per_app: Vec<Vec<SearchHit>>) -> Vec<MultiHit> {
        let mut all: Vec<MultiHit> = Vec::new();
        for (i, (engine, hits)) in self.engines.iter().zip(per_app).enumerate() {
            for hit in hits {
                all.push(MultiHit {
                    app_index: i,
                    app_name: engine.app().name.clone(),
                    hit,
                });
            }
        }
        all.sort_by(|a, b| {
            b.hit
                .score
                .partial_cmp(&a.hit.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.app_index.cmp(&b.app_index))
        });

        let mut seen_contents: Vec<Vec<u64>> = Vec::new();
        let mut out = Vec::new();
        for mh in all {
            let mut sig: Vec<u64> = mh
                .hit
                .fragment_ids
                .iter()
                .filter_map(|id| self.signatures[mh.app_index].get(id).copied())
                .collect();
            sig.sort_unstable();
            if seen_contents.contains(&sig) {
                continue; // duplicate content from another application
            }
            seen_contents.push(sig);
            out.push(mh);
            if out.len() >= request.k {
                break;
            }
        }
        out
    }
}

/// A deterministic signature of a fragment's *content* (keyword multiset),
/// independent of its identifier — two applications exposing the same
/// records produce the same signature.
fn content_signature(f: &Fragment) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (w, n) in &f.keyword_occurrences {
        w.hash(&mut h);
        n.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_webapp::fooddb;

    /// A second application over fooddb with the same query shape but a
    /// different URI/field naming — its db-pages duplicate Search's.
    const MIRROR_SERVLET: &str = r#"
servlet Mirror at "www.mirror.example/Find" {
    String kind = q.getParameter("kind");
    String lo = q.getParameter("lo");
    String hi = q.getParameter("hi");
    Query = "SELECT name, budget, rate, comment, uname, date "
          + "FROM (restaurant LEFT JOIN comment) JOIN customer "
          + "WHERE (cuisine = \"" + kind + "\") "
          + "AND (budget BETWEEN " + lo + " AND " + hi + ")";
    output(execute(Query));
}
"#;

    fn federation() -> MultiDash {
        let db = fooddb::database();
        let search = fooddb::search_application().unwrap();
        let mirror = WebApplication::from_servlet_source(MIRROR_SERVLET, &db).unwrap();
        MultiDash::build(
            &[search, mirror],
            &db,
            &ClusterConfig::default(),
            CrawlAlgorithm::Integrated,
        )
        .unwrap()
    }

    fn sharded_federation(shards: usize) -> MultiDash<ShardedEngine> {
        let db = fooddb::database();
        let search = fooddb::search_application().unwrap();
        let mirror = WebApplication::from_servlet_source(MIRROR_SERVLET, &db).unwrap();
        MultiDash::build_sharded(
            &[search, mirror],
            &db,
            &ClusterConfig::default(),
            CrawlAlgorithm::Integrated,
            shards,
        )
        .unwrap()
    }

    #[test]
    fn sharing_stats_detect_full_overlap() {
        let multi = federation();
        let stats = multi.stats();
        assert_eq!(stats.total_fragments, 10); // 5 per application
        assert_eq!(stats.distinct_contents, 5); // fully shared
        assert_eq!(stats.shared_fragments, 10);
    }

    #[test]
    fn federated_search_deduplicates_content() {
        let multi = federation();
        let hits = multi.search(&SearchRequest::new(&["burger"]).k(4).min_size(20));
        // Without dedup both apps would return the same two pages (four
        // hits); dedup keeps one copy of each content.
        assert_eq!(hits.len(), 2);
        // Both surviving hits come from the first (higher-priority) app.
        assert!(hits.iter().all(|h| h.app_index == 0));
    }

    #[test]
    fn search_many_matches_search() {
        let multi = federation();
        let requests = vec![
            SearchRequest::new(&["burger"]).k(4).min_size(20),
            SearchRequest::new(&["thai"]).k(2).min_size(1),
        ];
        let batch = multi.search_many(&requests);
        assert_eq!(batch.len(), 2);
        for (request, hits) in requests.iter().zip(&batch) {
            assert_eq!(hits, &multi.search(request));
        }
    }

    #[test]
    fn sharded_federation_matches_single_index_federation() {
        // Multi-application scoping composes with sharding: the
        // federated results over ShardedEngines are byte-identical to
        // the single-index federation, for any shard count.
        let single = federation();
        let requests = vec![
            SearchRequest::new(&["burger"]).k(4).min_size(20),
            SearchRequest::new(&["thai"]).k(2).min_size(1),
            SearchRequest::new(&["fries", "burger"]).k(3).min_size(5),
        ];
        for shards in [1usize, 2, 4] {
            let sharded = sharded_federation(shards);
            assert_eq!(sharded.stats(), single.stats());
            assert_eq!(
                sharded.engines().iter().map(|e| e.shard_count()).max(),
                Some(shards)
            );
            for request in &requests {
                assert_eq!(
                    sharded.search(request),
                    single.search(request),
                    "shards={shards} keywords={:?}",
                    request.keywords
                );
            }
            assert_eq!(
                sharded.search_many(&requests),
                single.search_many(&requests)
            );
        }
    }

    #[test]
    fn engines_are_independently_searchable() {
        let multi = federation();
        for engine in multi.engines() {
            let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
            assert_eq!(hits.len(), 2);
        }
        // Mirror's URLs use its own base URI and field names.
        let mirror_hits =
            multi.engines()[1].search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
        assert!(mirror_hits[0]
            .url
            .starts_with("www.mirror.example/Find?kind="));
    }
}
