//! Engine introspection: aggregate statistics of a built fragment index.

use std::fmt;

use crate::engine::DashEngine;
use crate::index::FragmentIndex;

/// A summary of a fragment index — the numbers Table IV reports, plus
/// size estimates useful for capacity planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of db-page fragments.
    pub fragments: usize,
    /// Number of distinct keywords.
    pub keywords: usize,
    /// Total postings across all inverted lists.
    pub postings: usize,
    /// Fragment-graph edges.
    pub edges: usize,
    /// Equality groups (connected components of the fragment graph).
    pub groups: usize,
    /// Average keywords per fragment (Table IV's third column).
    pub avg_keywords: f64,
    /// Longest inverted list (the hottest keyword's fragment frequency).
    pub max_df: usize,
    /// Approximate serialized size of the inverted fragment index, bytes.
    pub inverted_bytes: usize,
}

impl IndexStats {
    /// Computes the summary for one index.
    pub fn of(index: &FragmentIndex) -> Self {
        let ranked = index.inverted.keywords_by_df();
        let postings: usize = ranked.iter().map(|(_, df)| df).sum();
        let max_df = ranked.first().map(|(_, df)| *df).unwrap_or(0);
        // Per posting: 24 B in the TF arena + 16 B in the probe arena.
        let inverted_bytes: usize = ranked.iter().map(|(kw, df)| kw.len() + 4 + df * 40).sum();
        IndexStats {
            fragments: index.graph.node_count(),
            keywords: ranked.len(),
            postings,
            edges: index.graph.edge_count(),
            groups: index.graph.group_count(),
            avg_keywords: index.graph.avg_keywords(),
            max_df,
            inverted_bytes,
        }
    }
}

impl fmt::Display for IndexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fragments ({} groups, {} edges), {} keywords, {} postings \
             (max df {}), avg {:.1} keywords/fragment, ≈{} B inverted index",
            self.fragments,
            self.groups,
            self.edges,
            self.keywords,
            self.postings,
            self.max_df,
            self.avg_keywords,
            self.inverted_bytes,
        )
    }
}

impl DashEngine {
    /// Aggregate statistics of this engine's fragment index.
    pub fn index_stats(&self) -> IndexStats {
        IndexStats::of(self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DashConfig;
    use dash_webapp::fooddb;

    #[test]
    fn fooddb_stats_match_known_structure() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        let stats = engine.index_stats();
        assert_eq!(stats.fragments, 5);
        assert_eq!(stats.groups, 2); // American + Thai
        assert_eq!(stats.edges, 3); // the American chain
                                    // (8+8+17+8+10)/5 = 10.2 keywords on average (Example 6 weights).
        assert!((stats.avg_keywords - 10.2).abs() < 1e-9);
        // "burger" is the hottest keyword (3 fragments).
        assert_eq!(stats.max_df, 3);
        assert!(stats.keywords > 20);
        assert!(stats.postings >= stats.keywords);
        assert!(stats.inverted_bytes > 0);
        let text = stats.to_string();
        assert!(text.contains("5 fragments"));
    }

    #[test]
    fn empty_index_stats() {
        let index = FragmentIndex::build(&[], Some(0)).unwrap();
        let stats = IndexStats::of(&index);
        assert_eq!(stats.fragments, 0);
        assert_eq!(stats.max_df, 0);
        assert_eq!(stats.avg_keywords, 0.0);
    }
}
