//! Algorithm 1: top-k db-page search.
//!
//! Seeds a priority queue with the fragments relevant to the queried
//! keywords (from the inverted fragment index), repeatedly pops the
//! highest-scoring pending db-page and either *outputs* it (when its size
//! reached the threshold `s` or it cannot expand) or *expands* it along a
//! fragment-graph edge and re-queues it. Relevant neighbors are favored
//! during expansion; a queued fragment consumed by an expansion is removed
//! from the queue; db-pages overlapping an already-output page are
//! suppressed (they share fragments, hence share content — the redundancy
//! the paper's Example 1 complains about).
//!
//! The whole heap loop is handle-native: a `Candidate` is six plain
//! integers/floats (`Copy` — pushing, popping and cloning it never
//! allocates), per-candidate keyword occurrences live in one scratch
//! pool indexed by offset, and fragment identifiers are resolved back
//! to values/URLs only when a result is emitted.
//!
//! ## Schedule independence and sharding
//!
//! Seeding is lazy (threshold-algorithm style), but it seeds **through
//! score ties** (`head.score <= bound` keeps drawing): every popped
//! candidate therefore *strictly* dominates every not-yet-seeded
//! fragment, which makes the pop sequence independent of the seeding
//! schedule — lazy and eager seeding produce identical pops. Since
//! expansion, absorption and overlap suppression are all confined to
//! one equality group, the pop sequence restricted to any set of groups
//! equals the pop sequence of searching those groups alone. That is the
//! theorem the sharded engine ([`crate::sharded`]) rests on: it records
//! each shard's pop sequence as a `PopTrace` and replays the global
//! heap order by greedily merging trace heads under the exact
//! `Candidate` ordering (with shard-local group ids offset back to
//! global ranks), yielding byte-identical results for any shard count.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use dash_webapp::{ParamValues, SelectionBinding, WebApplication};

use crate::index::catalog::{Frag, Kw};
use crate::index::graph::GroupId;
use crate::index::inverted::Posting;
use crate::index::FragmentIndex;
use crate::search::{SearchHit, SearchRequest};

/// One pop of the top-k priority queue, keyed exactly like
/// [`Candidate`] but with the group id translated to its *global* rank.
/// A shard's sequence of pops is everything the merge stage needs to
/// interleave shards in single-heap order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PopEvent {
    /// Candidate score at pop time.
    pub score: f64,
    /// Interval width (`hi - lo`).
    pub width: u32,
    /// Global group rank (shard-local rank + shard offset).
    pub group: u32,
    /// Interval start within the group.
    pub lo: u32,
    /// Whether this pop appended a hit to the output.
    pub emitted: bool,
}

impl PopEvent {
    /// The heap-priority ordering of two pops. `Greater` means `self`
    /// pops first.
    pub(crate) fn heap_cmp(&self, other: &PopEvent) -> Ordering {
        heap_order(
            (self.score, self.width, self.group, self.lo),
            (other.score, other.width, other.group, other.lo),
        )
    }
}

/// THE candidate priority order, shared by the in-heap [`Candidate`]
/// comparison and the cross-shard [`PopEvent`] merge (one definition —
/// the sharded merge is exact only while both agree bit for bit):
/// higher score first; ties broken by narrower interval, then lower
/// group rank, then lower interval start. `Greater` means `a` pops
/// first.
fn heap_order(a: (f64, u32, u32, u32), b: (f64, u32, u32, u32)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .unwrap_or(Ordering::Equal)
        .then_with(|| b.1.cmp(&a.1))
        .then_with(|| b.2.cmp(&a.2))
        .then_with(|| b.3.cmp(&a.3))
}

/// The recorded pop sequence of one search run.
pub(crate) type PopTrace = Vec<PopEvent>;

/// Reusable per-search allocations. One search clears and refills them;
/// pooling a scratch across requests (as the sharded engine's
/// `search_many` does) skips the pool/bitset/trace reallocation cost on
/// every query after the first.
#[derive(Debug, Default)]
pub(crate) struct SearchScratch {
    /// Per-candidate keyword-occurrence rows, addressed by offset.
    occ_pool: Vec<u64>,
    /// Seen-bits over the fragment handle space (seed dedup).
    seeded_bits: Vec<u64>,
    /// The pop trace of the last run (empty unless recording).
    pub(crate) trace: PopTrace,
    /// Whether the last run stopped at its `k` limit (true) or drained
    /// its queue (false). A truncated trace ends exactly at its last
    /// emission — the pop that tripped the limit is never processed, so
    /// it is not recorded; the sharded merge uses this to decide when a
    /// shard must be re-run with a higher limit.
    pub(crate) truncated: bool,
}

impl SearchScratch {
    /// A fresh, empty scratch.
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// A pending db-page: a contiguous run `[lo..=hi]` of fragments within
/// one equality group. Per-keyword occurrences of the assembled page
/// live in the search's scratch pool at `occ_offset`.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    score: f64,
    group: GroupId,
    lo: u32,
    hi: u32,
    occ_offset: u32,
    total_keywords: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score; ties resolved arbitrarily but
        // deterministically (by interval width, then group rank — group
        // ids rank equality keys, so this matches ordering by key).
        heap_order(
            (self.score, self.hi - self.lo, self.group.0, self.lo),
            (other.score, other.hi - other.lo, other.group.0, other.lo),
        )
    }
}

/// Runs Algorithm 1. Always returns at most `request.k` hits, sorted in
/// output order (descending relevance, up to the paper's monotonicity
/// argument).
pub fn top_k(
    app: &WebApplication,
    index: &FragmentIndex,
    request: &SearchRequest,
) -> Vec<SearchHit> {
    let idf = request_idf(index, request);
    top_k_in(
        app,
        index,
        request,
        &idf,
        request.k,
        0,
        false,
        &mut SearchScratch::new(),
    )
}

/// Per-request-keyword `IDF_w = 1 / |L_w|`, read from one index (the
/// single-engine IDF source; the sharded engine supplies global IDF
/// computed across shards instead).
pub(crate) fn request_idf(index: &FragmentIndex, request: &SearchRequest) -> Vec<f64> {
    request
        .keywords
        .iter()
        .map(|w| {
            index
                .inverted
                .kw(w)
                .map_or(0.0, |kw| index.inverted.idf_kw(kw))
        })
        .collect()
}

/// The full heap loop, parameterized for sharded execution: `idf` is
/// supplied by the caller (a shard must score with *global* IDF, not
/// its local fragment frequencies), `k_limit` caps emissions
/// independently of `request.k` (shards first run with an optimistic
/// share of the global `k`), `group_offset` translates this index's
/// group ranks to global ranks in the recorded trace, and `record`
/// controls whether `scratch.trace` captures the pop sequence. With
/// `idf` computed from `index` itself, `k_limit = request.k`, offset 0
/// and recording off, this is exactly [`top_k`].
///
/// Because `k_limit` only appears in the stop condition, a limited
/// run's pop trace is a *prefix* of the unlimited run's — the property
/// the sharded engine's adaptive re-run logic relies on.
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_in(
    app: &WebApplication,
    index: &FragmentIndex,
    request: &SearchRequest,
    idf: &[f64],
    k_limit: usize,
    group_offset: u32,
    record: bool,
    scratch: &mut SearchScratch,
) -> Vec<SearchHit> {
    scratch.trace.clear();
    scratch.truncated = false;
    if k_limit == 0 || request.keywords.is_empty() {
        return Vec::new();
    }

    // Resolve request keywords to interned handles once.
    let kws: Vec<Option<Kw>> = request
        .keywords
        .iter()
        .map(|w| index.inverted.kw(w))
        .collect();
    let width = kws.len();

    // Lines 1–2: the relevant fragments F, seeded into the priority
    // queue *lazily*. The inverted lists are TF-sorted exactly so that
    // "web pages with higher TF values on w can be retrieved from an
    // initial part of L_w" (Section II): instead of materializing every
    // relevant fragment up front, a cursor walks each list and a seed is
    // drawn only while an unseen posting could still outscore the queue
    // head (threshold-algorithm style). Hot keywords with huge inverted
    // lists then touch only a prefix, which is what keeps Figure 11's
    // hot-term searches sub-millisecond.
    let postings: Vec<&[Posting]> = kws
        .iter()
        .map(|kw| kw.map_or(&[][..], |kw| index.inverted.postings_kw(kw)))
        .collect();
    let mut cursors: Vec<usize> = vec![0; width];
    let mut seeded = SeededSet::reuse(&mut scratch.seeded_bits, index.catalog.len());
    let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
    // Per-candidate keyword-occurrence rows, appended as candidates are
    // created and addressed by offset — candidates stay `Copy` and
    // expansion never clones a vector. The pool's allocation lives in
    // the (possibly pooled) scratch.
    let occ_pool: &mut Vec<u64> = &mut scratch.occ_pool;
    occ_pool.clear();

    // Occurrences of one queried keyword in an arbitrary fragment (an
    // expansion neighbor): a binary-search probe of the
    // fragment-sorted arena.
    let probe = |w: usize, frag: Frag| -> u64 {
        kws[w].map_or(0, |kw| index.inverted.occurrences(kw, frag))
    };

    // Upper bound on the initial score of any not-yet-seeded fragment:
    // per keyword, its TF is at most the TF at the list cursor.
    let frontier_bound = |cursors: &[usize]| -> f64 {
        postings
            .iter()
            .zip(cursors)
            .zip(idf)
            .map(|((list, &cur), &idf_w)| list.get(cur).map_or(0.0, |p| p.tf * idf_w))
            .sum()
    };
    // Draws the next seed from the list whose head posting scores
    // highest. Returns false when every list is exhausted.
    let seed_one = |cursors: &mut Vec<usize>,
                    seeded: &mut SeededSet,
                    queue: &mut BinaryHeap<Candidate>,
                    occ_pool: &mut Vec<u64>|
     -> bool {
        loop {
            // First strict maximum: deterministic under score ties.
            let mut best: Option<(usize, f64)> = None;
            for (w, (list, &cur)) in postings.iter().zip(cursors.iter()).enumerate() {
                if let Some(p) = list.get(cur) {
                    let bound = p.tf * idf[w];
                    if best.is_none_or(|(_, b)| bound > b) {
                        best = Some((w, bound));
                    }
                }
            }
            let Some((w, _)) = best else {
                return false;
            };
            let posting = postings[w][cursors[w]];
            cursors[w] += 1;
            if !seeded.insert(posting.frag) {
                continue; // already seeded via another keyword's list
            }
            let Some(node) = index.graph.locate(posting.frag) else {
                continue;
            };
            let occ_offset = (occ_pool.len() / width) as u32;
            for w in 0..width {
                occ_pool.push(probe(w, posting.frag));
            }
            let total_keywords = index.catalog.total_keywords(posting.frag);
            let row = &occ_pool[occ_offset as usize * width..];
            let score = score_of(&row[..width], total_keywords, idf);
            queue.push(Candidate {
                score,
                group: node.group,
                lo: node.position,
                hi: node.position,
                occ_offset,
                total_keywords,
            });
            return true;
        }
    };

    // Fragments absorbed into an expansion: their queued singleton entry
    // is dead (paper: "it is removed from Q").
    let mut absorbed: HashSet<(GroupId, u32)> = HashSet::new();
    // Output intervals per group, for overlap suppression.
    let mut output_intervals: HashMap<GroupId, Vec<(u32, u32)>> = HashMap::new();
    let mut output: Vec<SearchHit> = Vec::new();

    // Lines 4–9.
    loop {
        // Top up the queue until its head *strictly* dominates every
        // unseeded fragment. Seeding through score ties (`<=`, not `<`)
        // is what makes the pop sequence independent of the seeding
        // schedule — the property the sharded trace merge relies on.
        while queue
            .peek()
            .is_none_or(|head| head.score <= frontier_bound(&cursors))
        {
            if !seed_one(&mut cursors, &mut seeded, &mut queue, &mut *occ_pool) {
                break;
            }
        }
        let Some(candidate) = queue.pop() else {
            break;
        };
        if output.len() >= k_limit {
            // This pop is never processed — not recorded either.
            scratch.truncated = true;
            break;
        }
        if record {
            scratch.trace.push(PopEvent {
                score: candidate.score,
                width: candidate.hi - candidate.lo,
                group: group_offset + candidate.group.0,
                lo: candidate.lo,
                emitted: false,
            });
        }
        // Dead singleton (absorbed by an earlier expansion)?
        if candidate.lo == candidate.hi && absorbed.contains(&(candidate.group, candidate.lo)) {
            continue;
        }
        // Content overlap with an already-returned page?
        if let Some(intervals) = output_intervals.get(&candidate.group) {
            if intervals
                .iter()
                .any(|&(lo, hi)| candidate.lo <= hi && lo <= candidate.hi)
            {
                continue;
            }
        }

        let group_nodes = index.graph.group_nodes(candidate.group);
        let can_grow_left = candidate.lo > 0;
        let can_grow_right = ((candidate.hi + 1) as usize) < group_nodes.len();
        let expandable =
            candidate.total_keywords < request.min_size && (can_grow_left || can_grow_right);

        if !expandable {
            // Line 6–7: emit.
            if let Some(hit) = to_hit(app, index, &candidate, group_nodes) {
                output_intervals
                    .entry(candidate.group)
                    .or_default()
                    .push((candidate.lo, candidate.hi));
                output.push(hit);
                if record {
                    scratch.trace.last_mut().expect("pop recorded").emitted = true;
                }
            }
            continue;
        }

        // Line 8: expand toward the more relevant neighbor.
        let neighbor_relevance = |pos: u32| -> u64 {
            let frag = group_nodes[pos as usize];
            (0..width).map(|w| probe(w, frag)).sum()
        };
        let go_left = match (can_grow_left, can_grow_right) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                neighbor_relevance(candidate.lo - 1) > neighbor_relevance(candidate.hi + 1)
            }
            (false, false) => unreachable!("expandable implies a neighbor"),
        };
        let new_pos = if go_left {
            candidate.lo - 1
        } else {
            candidate.hi + 1
        };
        let neighbor = group_nodes[new_pos as usize];
        let mut expanded = candidate;
        if go_left {
            expanded.lo = new_pos;
        } else {
            expanded.hi = new_pos;
        }
        // New occurrence row = parent row + the neighbor's counts,
        // appended to the pool (the parent row stays valid for its own
        // still-queued copy).
        let parent = candidate.occ_offset as usize * width;
        expanded.occ_offset = (occ_pool.len() / width) as u32;
        for w in 0..width {
            let occ = occ_pool[parent + w] + probe(w, neighbor);
            occ_pool.push(occ);
        }
        expanded.total_keywords += index.catalog.total_keywords(neighbor);
        let row = expanded.occ_offset as usize * width;
        expanded.score = score_of(&occ_pool[row..row + width], expanded.total_keywords, idf);
        absorbed.insert((candidate.group, new_pos));
        queue.push(expanded);
    }

    output
}

/// A dense seen-set over fragment handles (one bit per interned
/// fragment — no hashing on the seeding path). Backed by a borrowed,
/// pooled bit vector.
struct SeededSet<'a> {
    bits: &'a mut Vec<u64>,
}

impl<'a> SeededSet<'a> {
    /// Clears and resizes a pooled bit vector for `fragments` handles.
    fn reuse(bits: &'a mut Vec<u64>, fragments: usize) -> Self {
        bits.clear();
        bits.resize(fragments.div_ceil(64), 0);
        SeededSet { bits }
    }

    /// Marks `frag`; returns whether it was newly marked.
    fn insert(&mut self, frag: Frag) -> bool {
        let (word, bit) = (frag.index() / 64, frag.index() % 64);
        let mask = 1u64 << bit;
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        fresh
    }
}

/// TF·IDF score of an assembled page: per queried keyword,
/// `(occurrences / page size) × IDF_w`, summed.
fn score_of(occurrences: &[u64], total_keywords: u64, idf: &[f64]) -> f64 {
    if total_keywords == 0 {
        return 0.0;
    }
    occurrences
        .iter()
        .zip(idf)
        .map(|(&occ, &idf_w)| (occ as f64 / total_keywords as f64) * idf_w)
        .sum()
}

/// Reverse-engineers a candidate into a [`SearchHit`]: parameter values →
/// query string → URL (Line 10 of Algorithm 1 / Example 7). This is the
/// output boundary — the only place handles resolve back to identifiers.
fn to_hit(
    app: &WebApplication,
    index: &FragmentIndex,
    candidate: &Candidate,
    group_nodes: &[Frag],
) -> Option<SearchHit> {
    let range_pos = index.graph.range_position();
    let mut params = ParamValues::new();
    // Equality selections read from the group key (which is the fragment
    // identifier minus the range position); the range selection reads its
    // bounds from the interval's end fragments.
    let group_key = index.graph.group_key(candidate.group);
    let mut group_iter = group_key.iter();
    for (i, sel) in app.query.selections.iter().enumerate() {
        match (&sel.binding, range_pos) {
            (SelectionBinding::RangeParams { low, high }, Some(pos)) if pos == i => {
                let lo_id = index.catalog.id(group_nodes[candidate.lo as usize]);
                let hi_id = index.catalog.id(group_nodes[candidate.hi as usize]);
                params.insert(low.clone(), lo_id.values()[pos].clone());
                params.insert(high.clone(), hi_id.values()[pos].clone());
            }
            (SelectionBinding::EqParam(p), _) => {
                let value = group_iter.next()?.clone();
                params.insert(p.clone(), value);
            }
            (SelectionBinding::EqConst(_), _) => {
                // Baked-in constant: part of the group key but not of the
                // query string.
                let _ = group_iter.next()?;
            }
            (SelectionBinding::RangeParams { .. }, _) => return None,
        }
    }
    let query_string = app.reverse_query_string(&params).ok()?;
    let url = app.render_suggestion(&query_string.to_string());
    Some(SearchHit {
        url,
        query_string: query_string.to_string(),
        score: candidate.score,
        size: candidate.total_keywords,
        fragment_ids: group_nodes[candidate.lo as usize..=candidate.hi as usize]
            .iter()
            .map(|&frag| index.catalog.id(frag).clone())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::reference;
    use crate::fragment::FragmentId;
    use crate::index::FragmentIndex;
    use dash_webapp::fooddb;

    fn engine_parts() -> (WebApplication, FragmentIndex) {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let fragments = reference::fragments(&app, &db).unwrap();
        let index = FragmentIndex::build(&fragments, app.query.range_selection_index()).unwrap();
        (app, index)
    }

    #[test]
    fn example_7_top_2_for_burger() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger"]).k(2).min_size(20),
        );
        assert_eq!(hits.len(), 2);
        let urls: Vec<&str> = hits.iter().map(|h| h.url.as_str()).collect();
        // The paper's Example 7 returns exactly these two URLs.
        assert!(urls.contains(&"www.example.com/Search?c=American&l=10&u=12"));
        assert!(urls.contains(&"www.example.com/Search?c=Thai&l=10&u=10"));
    }

    #[test]
    fn expansion_absorbs_the_relevant_neighbor() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger"]).k(2).min_size(20),
        );
        let american = hits
            .iter()
            .find(|h| h.url.contains("American"))
            .expect("American page");
        // (American,10) merged with (American,12): 8 + 17 = 25 keywords.
        assert_eq!(american.size, 25);
        assert_eq!(american.fragment_ids.len(), 2);
        // Score = TF × IDF = (3/25) × (1/3).
        assert!((american.score - 3.0 / 25.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn small_threshold_returns_single_fragments() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger"]).k(3).min_size(1),
        );
        // With s = 1 nothing expands; three relevant fragments, three hits.
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.fragment_ids.len() == 1));
        // Sorted by score: (American,10) TF 2/8 first.
        assert!(hits[0].url.contains("l=10&u=10"));
        assert!(hits[0].url.contains("American"));
    }

    #[test]
    fn huge_threshold_expands_to_whole_group() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger"]).k(1).min_size(10_000),
        );
        assert_eq!(hits.len(), 1);
        // The American chain exhausts at 4 fragments (9,10,12,18).
        let h = &hits[0];
        if h.url.contains("American") {
            assert_eq!(h.fragment_ids.len(), 4);
            assert!(h.url.contains("l=9&u=18"));
        }
    }

    #[test]
    fn no_overlapping_outputs() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["american"]).k(10).min_size(1),
        );
        // Pages must be pairwise fragment-disjoint.
        let mut seen: std::collections::HashSet<FragmentId> = std::collections::HashSet::new();
        for h in &hits {
            for id in &h.fragment_ids {
                assert!(seen.insert(id.clone()), "fragment {id} appears twice");
            }
        }
    }

    #[test]
    fn unknown_keyword_returns_empty() {
        let (app, index) = engine_parts();
        assert!(top_k(&app, &index, &SearchRequest::new(&["zzzqqq"]).k(5)).is_empty());
        assert!(top_k(&app, &index, &SearchRequest::new(&[]).k(5)).is_empty());
        assert!(top_k(&app, &index, &SearchRequest::new(&["burger"]).k(0)).is_empty());
    }

    #[test]
    fn k_caps_results() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger"]).k(1).min_size(20),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn multi_keyword_scores_sum() {
        let (app, index) = engine_parts();
        let hits = top_k(
            &app,
            &index,
            &SearchRequest::new(&["burger", "fries"]).k(2).min_size(1),
        );
        assert_eq!(hits.len(), 2);
        // With s = 1 fragments stand alone. (American,10) scores
        // (2/8)(1/3) ≈ 0.0833 on "burger" alone; (American,12) scores
        // (1/17)(1/3) + (1/17)(1/1) ≈ 0.0784 holding both keywords.
        assert!(hits[0].url.contains("l=10&u=10"), "got {}", hits[0].url);
        assert!((hits[0].score - (2.0 / 8.0) * (1.0 / 3.0)).abs() < 1e-9);
        assert!(hits[1].url.contains("l=12&u=12"), "got {}", hits[1].url);
        let expected = (1.0 / 17.0) * (1.0 / 3.0) + (1.0 / 17.0) * 1.0;
        assert!((hits[1].score - expected).abs() < 1e-9);
    }
}
