//! Top-k db-page search (Section VI-B of the paper).

pub mod topk;

pub use topk::top_k;
pub(crate) use topk::{PopEvent, PopTrace, SearchScratch};

use crate::fragment::FragmentId;

/// A keyword search request: the queried keywords `W`, the number of
/// result URLs `k`, and the db-page size threshold `s` (in keywords).
///
/// `s` steers assembly: pages smaller than `s` keep absorbing neighboring
/// fragments while any are available, so results are substantial pages
/// rather than keyword-dense slivers; pages never grow past the first
/// size ≥ `s`, avoiding hugely diluted pages (Section VI-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest {
    /// Queried keywords (normalized to lowercase at construction).
    pub keywords: Vec<String>,
    /// Number of db-page URLs requested.
    pub k: usize,
    /// Minimum page size threshold `s`, in keywords.
    pub min_size: u64,
}

impl SearchRequest {
    /// Creates a request with the paper's default-ish settings
    /// (`k = 10`, `s = 100`).
    pub fn new(keywords: &[&str]) -> Self {
        SearchRequest {
            keywords: keywords.iter().map(|w| w.to_lowercase()).collect(),
            k: 10,
            min_size: 100,
        }
    }

    /// Sets `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the size threshold `s`.
    pub fn min_size(mut self, s: u64) -> Self {
        self.min_size = s;
        self
    }
}

/// One search result: a reconstructed db-page, addressed by the URL Dash
/// suggests (the web application + the reverse-parsed query string).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Suggested URL (`base_uri?field=value&…`).
    pub url: String,
    /// The query string alone.
    pub query_string: String,
    /// TF/IDF relevance score of the assembled page.
    pub score: f64,
    /// Total keywords in the page (its size).
    pub size: u64,
    /// The fragments assembled into the page, in range order.
    pub fragment_ids: Vec<FragmentId>,
}
