//! A conventional inverted file (Section II).
//!
//! For each keyword `w` an inverted list `L_w` holds the documents
//! containing `w`, sorted by descending term frequency so high-TF
//! documents come first and `IDF_w` is just `1 / |L_w|`. Generic over a
//! `Copy` document identifier — postings are plain values that never
//! allocate or clone, so the same structure indexes db-pages by ordinal
//! (the baseline) or any other dense handle. Dash's own inverted
//! fragment index (`dash-core`) is a specialized arena-backed variant
//! over interned fragment handles.

use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// One entry of an inverted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting<D> {
    /// The document (or fragment) identifier.
    pub doc: D,
    /// Raw occurrence count of the keyword in the document.
    pub occurrences: u64,
    /// Total keywords in the document (denominator of TF).
    pub doc_len: u64,
}

impl<D> Posting<D> {
    /// Term frequency: occurrences normalized by document length.
    pub fn tf(&self) -> f64 {
        if self.doc_len == 0 {
            0.0
        } else {
            self.occurrences as f64 / self.doc_len as f64
        }
    }
}

/// An inverted file over documents with identifiers of type `D`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedFile<D = u64> {
    lists: HashMap<String, Vec<Posting<D>>>,
    documents: u64,
}

impl<D> Default for InvertedFile<D> {
    fn default() -> Self {
        InvertedFile {
            lists: HashMap::new(),
            documents: 0,
        }
    }
}

impl<D: Copy + Eq + Ord + Hash> InvertedFile<D> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one document given its token stream. Postings are re-sorted
    /// lazily on [`InvertedFile::finalize`] or eagerly on lookup if needed;
    /// for simplicity this implementation keeps lists sorted on every add.
    pub fn add_document(&mut self, doc: D, tokens: &[String]) {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for t in tokens {
            *counts.entry(t.as_str()).or_insert(0) += 1;
        }
        let doc_len = tokens.len() as u64;
        for (word, occurrences) in counts {
            let list = self.lists.entry(word.to_string()).or_default();
            list.push(Posting {
                doc,
                occurrences,
                doc_len,
            });
        }
        self.documents += 1;
    }

    /// Inserts a pre-counted posting (used by the MapReduce indexing jobs,
    /// whose reducers already hold `(keyword, (doc, occurrences))` pairs).
    pub fn add_posting(&mut self, word: impl Into<String>, posting: Posting<D>) {
        self.lists.entry(word.into()).or_default().push(posting);
    }

    /// Declares the total document count (needed when postings were bulk-
    /// inserted rather than added per document).
    pub fn set_document_count(&mut self, documents: u64) {
        self.documents = documents;
    }

    /// Sorts every inverted list by descending TF, ties broken by
    /// ascending document id — a total order, so the index layout is
    /// independent of insertion order (bulk build and incremental
    /// maintenance converge to identical lists).
    pub fn finalize(&mut self) {
        for list in self.lists.values_mut() {
            list.sort_by(|a, b| {
                b.tf()
                    .partial_cmp(&a.tf())
                    .expect("finite TF")
                    .then_with(|| a.doc.cmp(&b.doc))
            });
        }
    }

    /// The inverted list for `word`, if any document contains it.
    pub fn postings(&self, word: &str) -> Option<&[Posting<D>]> {
        self.lists.get(word).map(Vec::as_slice)
    }

    /// Document frequency of `word`: `|L_w|`.
    pub fn df(&self, word: &str) -> usize {
        self.lists.get(word).map_or(0, Vec::len)
    }

    /// Inverse document frequency: `1 / |L_w|` (the approximation Dash
    /// uses, with fragments as documents). Zero when no document has the
    /// word.
    pub fn idf(&self, word: &str) -> f64 {
        match self.df(word) {
            0 => 0.0,
            n => 1.0 / n as f64,
        }
    }

    /// Number of indexed documents.
    pub fn document_count(&self) -> u64 {
        self.documents
    }

    /// Number of distinct keywords.
    pub fn keyword_count(&self) -> usize {
        self.lists.len()
    }

    /// Iterates over `(keyword, inverted list)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Posting<D>])> {
        self.lists.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// All keywords sorted by descending document frequency — the basis of
    /// the paper's hot/warm/cold keyword selection (top/middle/bottom 10%).
    pub fn keywords_by_df(&self) -> Vec<(&str, usize)> {
        let mut out: Vec<(&str, usize)> = self
            .lists
            .iter()
            .map(|(k, v)| (k.as_str(), v.len()))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// Removes all postings of `doc` (support for incremental updates —
    /// the paper's first future-work item). Returns how many lists were
    /// touched. Lists left empty are dropped.
    pub fn remove_document(&mut self, doc: &D) -> usize {
        let mut touched = 0;
        self.lists.retain(|_, list| {
            let before = list.len();
            list.retain(|p| p.doc != *doc);
            if list.len() != before {
                touched += 1;
            }
            !list.is_empty()
        });
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn sample() -> InvertedFile<u64> {
        let mut idx = InvertedFile::new();
        idx.add_document(1, &tokenize("burger burger fries"));
        idx.add_document(2, &tokenize("burger coffee"));
        idx.add_document(3, &tokenize("coffee coffee coffee"));
        idx.finalize();
        idx
    }

    #[test]
    fn postings_sorted_by_tf_desc() {
        let idx = sample();
        let burger = idx.postings("burger").unwrap();
        assert_eq!(burger.len(), 2);
        // doc 1 has TF 2/3, doc 2 has TF 1/2.
        assert_eq!(burger[0].doc, 1);
        assert!(burger[0].tf() > burger[1].tf());
    }

    #[test]
    fn df_and_idf() {
        let idx = sample();
        assert_eq!(idx.df("burger"), 2);
        assert!((idx.idf("burger") - 0.5).abs() < 1e-12);
        assert_eq!(idx.df("nothing"), 0);
        assert_eq!(idx.idf("nothing"), 0.0);
    }

    #[test]
    fn keywords_by_df_orders_hot_first() {
        let idx = sample();
        let ranked = idx.keywords_by_df();
        assert_eq!(ranked[0].1, 2); // burger or coffee, both df=2
        assert_eq!(ranked.last().unwrap().1, 1); // fries
    }

    #[test]
    fn counts() {
        let idx = sample();
        assert_eq!(idx.document_count(), 3);
        assert_eq!(idx.keyword_count(), 3);
        assert_eq!(idx.iter().count(), 3);
    }

    #[test]
    fn remove_document_updates_lists() {
        let mut idx = sample();
        let touched = idx.remove_document(&1);
        assert_eq!(touched, 2); // burger and fries lists
        assert_eq!(idx.df("burger"), 1);
        assert!(idx.postings("fries").is_none());
    }

    #[test]
    fn bulk_postings_path() {
        let mut idx: InvertedFile<&'static str> = InvertedFile::new();
        idx.add_posting(
            "burger",
            Posting {
                doc: "f1",
                occurrences: 2,
                doc_len: 8,
            },
        );
        idx.set_document_count(1);
        idx.finalize();
        assert_eq!(idx.postings("burger").unwrap()[0].occurrences, 2);
        assert_eq!(idx.document_count(), 1);
    }

    #[test]
    fn zero_length_doc_tf_is_zero() {
        let p = Posting {
            doc: 1u64,
            occurrences: 0,
            doc_len: 0,
        };
        assert_eq!(p.tf(), 0.0);
    }
}
