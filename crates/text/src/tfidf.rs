//! TF/IDF relevance scoring (Section II of the paper).
//!
//! The relevance of a document `p` to keywords `W` is
//! `Σ_{w∈W} TF_w(p) × IDF_w`, where `TF_w(p)` is the number of occurrences
//! of `w` in `p` normalized by `p`'s length, and `IDF_w` is the inverse of
//! the number of documents containing `w`. Dash reuses this exact form with
//! *fragments* in the role of documents when approximating IDF.

use std::collections::HashMap;

/// Keyword-occurrence statistics for one document (or db-page fragment, or
/// assembled db-page — anything with a bag of keywords).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocStats {
    /// Occurrences per keyword.
    pub occurrences: HashMap<String, u64>,
    /// Total keyword count (the fragment-graph node weight in the paper).
    pub total_keywords: u64,
}

impl DocStats {
    /// Builds stats from a token stream.
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut stats = DocStats::default();
        for t in tokens {
            *stats.occurrences.entry(t.into()).or_insert(0) += 1;
            stats.total_keywords += 1;
        }
        stats
    }

    /// Term frequency of `keyword`: occurrences normalized by document
    /// length. Zero for an empty document.
    pub fn tf(&self, keyword: &str) -> f64 {
        if self.total_keywords == 0 {
            return 0.0;
        }
        *self.occurrences.get(keyword).unwrap_or(&0) as f64 / self.total_keywords as f64
    }

    /// Merges another document's stats into this one (used when db-page
    /// fragments combine into a db-page: occurrences and lengths add).
    pub fn merge(&mut self, other: &DocStats) {
        for (k, n) in &other.occurrences {
            *self.occurrences.entry(k.clone()).or_insert(0) += n;
        }
        self.total_keywords += other.total_keywords;
    }
}

/// The TF/IDF score of a document against queried keywords.
///
/// `idf` maps each queried keyword to its inverse document frequency;
/// keywords missing from the map contribute nothing (they appear in no
/// document, so no document can score on them).
pub fn tf_idf_score(doc: &DocStats, keywords: &[String], idf: &HashMap<String, f64>) -> f64 {
    keywords
        .iter()
        .map(|w| doc.tf(w) * idf.get(w).copied().unwrap_or(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn tf_matches_paper_example_7() {
        // Fragment (American, 10) has 8 keywords, "burger" occurs twice:
        // TF = 2/8.
        let doc = DocStats::from_tokens(tokenize("Burger Queen 10 4.3 Burger experts David 06/10"));
        assert_eq!(doc.total_keywords, 8);
        assert!((doc.tf("burger") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_paper_expansion() {
        // Expanding (American,10) with (American,12): TF becomes 3/25.
        let f10 = DocStats::from_tokens(tokenize("Burger Queen 10 4.3 Burger experts David 06/10"));
        // (American,12) has 17 keywords, one "burger" (Example 6/7).
        let f12 = DocStats::from_tokens(tokenize(
            "Wandy's 12 4.1 Wandy's 12 4.2 Unique burger Bill 05/10 Wandy's 12 4.2 Bad fries Bill 06/10",
        ));
        assert_eq!(f12.total_keywords, 17);
        let mut merged = f10.clone();
        merged.merge(&f12);
        assert_eq!(merged.total_keywords, 25);
        assert!((merged.tf("burger") - 3.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_never_raises_tf_of_absent_words() {
        // Monotonicity basis for Algorithm 1: adding text with no queried
        // keyword strictly lowers TF.
        let mut a = DocStats::from_tokens(vec!["burger", "x"]);
        let b = DocStats::from_tokens(vec!["y", "z"]);
        let before = a.tf("burger");
        a.merge(&b);
        assert!(a.tf("burger") < before);
    }

    #[test]
    fn score_sums_over_keywords() {
        let doc = DocStats::from_tokens(vec!["a", "b", "b", "c"]);
        let mut idf = HashMap::new();
        idf.insert("a".to_string(), 1.0);
        idf.insert("b".to_string(), 0.5);
        let score = tf_idf_score(
            &doc,
            &["a".to_string(), "b".to_string(), "missing".to_string()],
            &idf,
        );
        assert!((score - (0.25 * 1.0 + 0.5 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_doc_scores_zero() {
        let doc = DocStats::default();
        assert_eq!(doc.tf("x"), 0.0);
        assert_eq!(tf_idf_score(&doc, &["x".to_string()], &HashMap::new()), 0.0);
    }
}
