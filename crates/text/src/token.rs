//! Keyword tokenization.
//!
//! The paper counts *every* rendered token of a projected attribute as a
//! keyword — Example 6 counts `Bond's`, `Cafe`, `9`, `4.3`, `Nice`,
//! `Coffee`, `James` and `01/11` as the eight keywords of a fragment. The
//! tokenizer therefore splits on whitespace, keeps digits and in-word
//! punctuation (`'`, `.`, `/`, `-`), lowercases for matching, and strips
//! leading/trailing punctuation.

/// Splits `text` into normalized keyword tokens.
///
/// ```
/// use dash_text::tokenize;
/// assert_eq!(
///     tokenize("Bond's Cafe 9 4.3 Nice coffee 01/11"),
///     vec!["bond's", "cafe", "9", "4.3", "nice", "coffee", "01/11"],
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// Appends the tokens of `text` to `out` (allocation-friendly form used by
/// the MapReduce keyword-extraction jobs).
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    for raw in text.split_whitespace() {
        let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
        if trimmed.is_empty() {
            continue;
        }
        out.push(trimmed.to_lowercase());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_trims_punctuation() {
        assert_eq!(tokenize("Burger, Queen!"), vec!["burger", "queen"]);
    }

    #[test]
    fn keeps_inner_punctuation() {
        assert_eq!(tokenize("Bond's 4.3 01/11"), vec!["bond's", "4.3", "01/11"]);
    }

    #[test]
    fn numbers_are_keywords() {
        // The paper counts `9` and `4.3` among a fragment's keywords.
        assert_eq!(tokenize("9 4.3"), vec!["9", "4.3"]);
    }

    #[test]
    fn empty_and_punctuation_only_yield_nothing() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ... !!").is_empty());
    }

    #[test]
    fn tokenize_into_appends() {
        let mut buf = vec!["pre".to_string()];
        tokenize_into("a b", &mut buf);
        assert_eq!(buf, vec!["pre", "a", "b"]);
    }
}
