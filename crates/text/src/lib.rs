//! # dash-text
//!
//! The information-retrieval substrate reviewed in Section II of the Dash
//! paper: keyword tokenization, the TF/IDF weighting scheme, and a
//! conventional **inverted file** whose postings are sorted by descending
//! term frequency.
//!
//! Dash itself indexes *db-page fragments* rather than whole pages, but it
//! reuses all three pieces: the tokenizer turns projected attribute values
//! into keywords, the TF/IDF machinery scores assembled pages, and the
//! inverted file both serves as the layout of the inverted *fragment*
//! index and powers the naive all-pages baseline that fragments are
//! compared against.
//!
//! ```
//! use dash_text::{tokenize, InvertedFile};
//!
//! let mut index = InvertedFile::new();
//! index.add_document(1, &tokenize("Burger experts love burger buns"));
//! index.add_document(2, &tokenize("Nice coffee"));
//! let postings = index.postings("burger").unwrap();
//! assert_eq!(postings[0].doc, 1);
//! assert_eq!(postings[0].occurrences, 2);
//! assert!(index.idf("coffee") > index.idf("burger") / 2.0);
//! ```

pub mod inverted;
pub mod tfidf;
pub mod token;

pub use inverted::{InvertedFile, Posting};
pub use tfidf::{tf_idf_score, DocStats};
pub use token::{tokenize, tokenize_into};
